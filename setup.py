"""Setuptools shim so legacy editable installs work in offline environments.

The environment this reproduction targets has no ``wheel`` package and no
network access, so PEP 660 editable installs (which build a wheel) fail.  With
this ``setup.py`` present and no ``[build-system]`` table in ``pyproject.toml``,
``pip install -e .`` falls back to the classic ``setup.py develop`` path, which
needs neither.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
