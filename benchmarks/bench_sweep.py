"""Sweep-throughput benchmark: trials/minute through the job executor.

PR 1 made a *single* trial fast; the job pipeline makes the *sweep* fast by
running its independent (protocol, pause, trial) cells across a process pool.
This benchmark tracks that layer directly: one small paper-shape sweep, run
through the serial backend and through the pool backend, reporting trials per
minute and the parallel speedup so executor regressions (pickling overhead,
scheduling bugs, lost parallelism) show up in the perf trajectory next to the
events/sec numbers of ``bench_scaling.py``.

Runable two ways:

* under pytest-benchmark with the rest of the suite, or
* as a plain script — ``python benchmarks/bench_sweep.py --workers 4``
  (the CI smoke invocation uses ``--duration 6`` to finish in seconds).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import pytest

from repro.experiments import execute_jobs, plan_sweep
from repro.workloads.scenario import scaled_scenario

#: A miniature paper-shape sweep: all five protocols, a few pause times.
SWEEP_PROTOCOLS = ("SRP", "LDR", "AODV", "DSR", "OLSR")
SWEEP_PAUSE_TIMES = (0.0, 10.0, 20.0)


def sweep_jobs(*, duration: float = 20.0, trials: int = 1, seed: int = 47):
    """The benchmark's job list (5 protocols x 3 pauses x ``trials``)."""
    scenario = scaled_scenario(
        node_count=20,
        flow_count=5,
        duration=duration,
        terrain_width=1000.0,
        terrain_height=350.0,
        seed=seed,
    )
    return plan_sweep(
        scenario, SWEEP_PROTOCOLS, pause_times=SWEEP_PAUSE_TIMES, trials=trials
    )


def run_sweep_point(workers: int, *, duration: float = 20.0, trials: int = 1):
    """Run the sweep through one backend; returns (wall seconds, outcomes)."""
    jobs = sweep_jobs(duration=duration, trials=trials)
    start = time.perf_counter()
    outcomes = execute_jobs(jobs, workers=workers)
    return time.perf_counter() - start, outcomes


@pytest.mark.parametrize(
    "workers", (1, max(2, min(4, os.cpu_count() or 1))), ids=lambda w: f"{w}w"
)
def bench_sweep_throughput(benchmark, workers):
    """Trials/minute through the serial (1w) and pool (Nw) backends."""
    elapsed, outcomes = benchmark.pedantic(
        run_sweep_point, args=(workers,), rounds=1, iterations=1
    )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["trials"] = len(outcomes)
    benchmark.extra_info["trials_per_minute"] = round(60.0 * len(outcomes) / elapsed, 1)
    assert all(summary.data_sent > 0 for summary in outcomes.values())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        action="append",
        help="worker count to run (repeatable; default: 1 and cpu count)",
    )
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--trials", type=int, default=1)
    args = parser.parse_args(argv)
    worker_counts = tuple(args.workers) if args.workers else (1, os.cpu_count() or 1)

    baseline = None
    print(
        f"{'workers':>8} {'wall s':>8} {'trials':>7} {'trials/min':>11} {'speedup':>8}"
    )
    for workers in worker_counts:
        elapsed, outcomes = run_sweep_point(
            workers, duration=args.duration, trials=args.trials
        )
        if not all(s.data_sent > 0 for s in outcomes.values()):
            print("error: a trial originated no data packets", file=sys.stderr)
            return 1
        baseline = baseline if baseline is not None else elapsed
        print(
            f"{workers:>8} {elapsed:>8.2f} {len(outcomes):>7} "
            f"{60.0 * len(outcomes) / elapsed:>11.1f} {baseline / elapsed:>8.2f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
