"""Store-query benchmark: key lookups on a 1k-cell results store.

``ResultsStore.completed_keys()``/``missing()`` used to re-scan (or re-stat)
the cell directory on every call; at paper scale that scan is the hot path of
every resume, every status poll and every distributed steal cycle.  The store
now caches the key set per instance (kept current by ``put``/``merge_from``,
dropped explicitly via ``invalidate_key_cache()`` when other processes write
cells), so this benchmark tracks both sides:

* **cold** — the cache is invalidated before every query, i.e. the old
  per-call rescan behaviour;
* **warm** — the cached key set answers the query (the common case: one
  process polling its own store).

Runable two ways:

* under pytest-benchmark with the rest of the suite, or
* as a plain script — ``python benchmarks/bench_store.py --cells 1000``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.experiments import ResultsStore, plan_sweep
from repro.sim.stats import TrialSummary
from repro.workloads.scenario import scaled_scenario

#: 5 protocols x 8 pause times x 25 trials = 1000 cells (the paper-tier+
#: regime the distributed backend polls against).
STORE_PROTOCOLS = ("SRP", "LDR", "AODV", "DSR", "OLSR")
STORE_PAUSE_TIMES = (0.0, 30.0, 60.0, 120.0, 300.0, 600.0, 700.0, 900.0)
STORE_TRIALS = 25

#: One synthetic summary serves every cell: the benchmark measures store
#: queries, not simulations.
DUMMY_SUMMARY = TrialSummary(
    data_sent=100,
    data_delivered=97,
    control_transmissions=40,
    mean_latency=0.05,
    mac_drops_per_node=0.2,
    average_sequence_number=0.0,
    duplicate_deliveries=0,
)


def build_store(root: Path, cells: int):
    """A store holding the first ``cells`` cells of a 1000-job sweep; returns
    (store, planned jobs)."""
    scenario = scaled_scenario(
        node_count=50, flow_count=15, duration=180.0, seed=7
    )
    jobs = plan_sweep(
        scenario,
        STORE_PROTOCOLS,
        pause_times=STORE_PAUSE_TIMES,
        trials=STORE_TRIALS,
    )
    store = ResultsStore(root)
    store.write_meta(
        scale="bench-store",
        scenario=scenario,
        protocols=STORE_PROTOCOLS,
        pause_times=STORE_PAUSE_TIMES,
        trials=STORE_TRIALS,
    )
    for job in jobs[:cells]:
        store.put(job, DUMMY_SUMMARY)
    return store, jobs


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench-store") / "store"
    return build_store(root, cells=1000)


def bench_missing_cold(benchmark, populated_store):
    """missing() with the key cache invalidated per call (the old behaviour)."""
    store, jobs = populated_store

    def query():
        store.invalidate_key_cache()
        return store.missing(jobs)

    result = benchmark(query)
    assert result == []


def bench_missing_warm(benchmark, populated_store):
    """missing() answered from the cached key set (the new common case)."""
    store, jobs = populated_store
    store.invalidate_key_cache()
    store.completed_keys()  # prime once
    result = benchmark(lambda: store.missing(jobs))
    assert result == []


def bench_completed_keys_warm(benchmark, populated_store):
    store, jobs = populated_store
    store.invalidate_key_cache()
    store.completed_keys()
    keys = benchmark(store.completed_keys)
    assert len(keys) == len(jobs)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=1000)
    parser.add_argument("--repeat", type=int, default=50, metavar="N",
                        help="queries per timing loop (default: 50)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        store, jobs = build_store(Path(tmp) / "store", args.cells)

        def timed(label, fn):
            start = time.perf_counter()
            for _ in range(args.repeat):
                fn()
            per_call = (time.perf_counter() - start) / args.repeat
            print(f"{label:<26} {per_call * 1e3:>9.3f} ms/call")
            return per_call

        print(f"{args.cells} cells, {len(jobs)} planned jobs, "
              f"{args.repeat} calls per point")

        def cold():
            store.invalidate_key_cache()
            store.missing(jobs)

        cold_t = timed("missing() cold (rescan)", cold)
        store.invalidate_key_cache()
        store.completed_keys()
        warm_t = timed("missing() warm (cached)", lambda: store.missing(jobs))
        timed("completed_keys() warm", store.completed_keys)
        if warm_t > 0:
            print(f"{'speedup':<26} {cold_t / warm_t:>9.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
