"""Science-gate smoke: the invariants must hold — and evaluate instantly.

The gate is pure post-processing over a completed sweep, so two things are
worth tracking here: that the registered paper invariants actually hold on the
shared benchmark sweep (a protocol regression fails this benchmark before the
nightly paper-tier gate ever runs), and that evaluating the full registry
costs microseconds relative to the sweep it polices (the gate must stay cheap
enough to run after every sweep unconditionally).

Runable two ways:

* under pytest-benchmark with the rest of the suite (uses the shared
  ``evaluation_results`` fixture, so the sweep cost is paid once), or
* as a plain script — ``python benchmarks/bench_gate.py`` runs a smoke-scale
  sweep, evaluates the gate and exits with the gate's code, which is how CI
  smoke-checks the gate end to end without a stored sweep.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    EvaluationScale,
    evaluate_gate,
    paper_invariants,
    run_evaluation,
)


def bench_science_gate(benchmark, evaluation_results):
    """Full-registry gate evaluation over the shared sweep; must not fail."""
    report = benchmark(evaluate_gate, evaluation_results)
    benchmark.extra_info["invariants"] = len(report.outcomes)
    benchmark.extra_info["passed"] = len(report.passed)
    assert not report.failed, report.to_text()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=("smoke", "benchmark"),
        help="sweep scale to gate (default: smoke)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="sweep worker processes"
    )
    args = parser.parse_args(argv)

    scale = getattr(EvaluationScale, args.scale)()
    start = time.perf_counter()
    results = run_evaluation(scale, workers=args.jobs)
    sweep_seconds = time.perf_counter() - start
    start = time.perf_counter()
    report = evaluate_gate(results, scale=scale.name)
    gate_seconds = time.perf_counter() - start
    print(report.to_text())
    print(
        f"sweep {sweep_seconds:.1f} s, gate {gate_seconds * 1000:.1f} ms "
        f"({len(paper_invariants())} invariants)"
    )
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
