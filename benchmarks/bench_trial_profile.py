"""End-to-end single-trial wall-clock benchmark and the perf trajectory.

This is the *un-instrumented* companion of ``python -m repro.experiments
profile``: one trial per protocol, measured with ``time.perf_counter`` and
nothing else, so the seconds are honest.  It writes/updates the repo's
committed performance trajectory record (``BENCH_5.json``: commit, scale,
per-protocol seconds + events/s, and — with ``--with-off`` — the reference
slow-path seconds and the resulting fast-path speedup), and it *checks* a
committed record so CI fails loudly when a change regresses the trial hot
path.

Runable three ways:

* under pytest-benchmark with the rest of the suite,
* ``python benchmarks/bench_trial_profile.py --scale paper-tier --with-off
  --json BENCH_5.json`` to (re)generate the trajectory record, or
* ``python benchmarks/bench_trial_profile.py --scale smoke --check
  BENCH_5.json --tolerance 1.5`` — the CI perf-smoke gate.  The tolerance is
  generous because CI hardware differs from the hardware that produced the
  committed record; it catches step-change regressions (an accidentally
  disabled fast path, a new quadratic loop), not single-digit drift.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro.experiments.paper import SCALE_NAMES, resolve_scale
from repro.experiments.profile import reference_protocol_factory
from repro.protocols import protocol_factory
from repro.sim.network import build_network
from repro.sim.tuning import EngineTuning, FastPaths

#: The two acceptance protocols: the costliest trial (OLSR, proactive
#: flooding) and the paper's own protocol (SRP).
DEFAULT_PROTOCOLS = ("OLSR", "SRP")

RECORD_VERSION = 1


def _git_commit() -> Optional[str]:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or None
        )
    except OSError:
        return None


def run_point(
    scenario,
    protocol: str,
    *,
    fast_paths: Optional[FastPaths] = None,
    tuning: Optional[EngineTuning] = None,
    repeat: int = 1,
) -> Dict[str, float]:
    """One un-instrumented trial; seconds, events and events/s.

    ``repeat`` takes the best of N identical runs — the right estimator for
    wall-clock on a shared/noisy box, since every run computes the same
    deterministic trial and only the interference differs.  ``tuning``
    selects the engine configuration (event queue, MAC model) to measure.
    """
    factory = (
        reference_protocol_factory(protocol)
        if fast_paths == FastPaths.none()
        else protocol_factory(protocol)
    )
    seconds = float("inf")
    for _ in range(max(repeat, 1)):
        network = build_network(
            scenario, factory, fast_paths=fast_paths, tuning=tuning
        )
        started = time.perf_counter()
        summary = network.run()
        seconds = min(seconds, time.perf_counter() - started)
        events = network.simulator.events_processed
    return {
        "seconds": round(seconds, 3),
        "events": events,
        "events_per_second": round(events / seconds, 1) if seconds > 0 else 0.0,
        "delivery_ratio": round(summary.delivery_ratio, 4),
    }


def build_record(
    scale_name: str,
    protocols: List[str],
    *,
    pause: Optional[float] = None,
    with_off: bool = False,
    repeat: int = 1,
    event_queue: str = "calendar",
    mac_model: str = "poll",
    engine_backend: str = "serial",
    shard_count: int = 0,
) -> Dict:
    """Measure every protocol point and assemble one configuration's record."""
    scale = resolve_scale(scale_name)
    pause_time = pause if pause is not None else scale.pause_times[0]
    scenario = scale.scenario.with_pause_time(pause_time)
    tuning = EngineTuning(
        event_queue=event_queue,
        mac_model=mac_model,
        engine_backend=engine_backend,
        shard_count=shard_count,
    )
    record: Dict = {
        "scale": scale.name,
        "pause_time": pause_time,
        "node_count": scenario.node_count,
        "duration": scenario.duration,
        "event_queue": event_queue,
        "mac_model": mac_model,
        "engine_backend": engine_backend,
        "shard_count": tuning.resolved_shard_count() if engine_backend != "serial" else 0,
        "commit": _git_commit(),
        "protocols": {},
    }
    for protocol in protocols:
        point = run_point(scenario, protocol, tuning=tuning, repeat=repeat)
        if with_off:
            off = run_point(
                scenario,
                protocol,
                fast_paths=FastPaths.none(),
                tuning=tuning,
                repeat=repeat,
            )
            point["off_seconds"] = off["seconds"]
            if point["seconds"] > 0:
                point["speedup"] = round(off["seconds"] / point["seconds"], 2)
        record["protocols"][protocol] = point
    return record


def record_key(record: Dict) -> str:
    """The trajectory-document key for one record.

    The engine's default configuration (calendar queue, poll MAC) keeps the
    bare scale name — so the committed baseline history stays comparable —
    and non-default axes are appended: ``paper-tier+frozen``,
    ``smoke+heap``, ``smoke+heap+frozen``, ``smoke+sharded2``.
    """
    key = record["scale"]
    if record.get("event_queue", "calendar") != "calendar":
        key += f"+{record['event_queue']}"
    if record.get("mac_model", "poll") != "poll":
        key += f"+{record['mac_model']}"
    if record.get("engine_backend", "serial") != "serial":
        key += f"+{record['engine_backend']}{record.get('shard_count', 0)}"
    return key


def merge_into_document(document: Optional[Dict], record: Dict) -> Dict:
    """Fold one record into the trajectory document.

    ``BENCH_5.json`` keeps one record per :func:`record_key` — scale plus
    any non-default engine configuration (the paper-tier numbers are the
    headline trajectory; the smoke records are the CI gate's baselines) —
    so regenerating one configuration leaves the others untouched.
    """
    if not document or "records" not in document:
        document = {"version": RECORD_VERSION, "records": {}}
    document["version"] = RECORD_VERSION
    document["commit"] = record["commit"]
    document["python"] = platform.python_version()
    document["records"][record_key(record)] = record
    return document


def check_against_baseline(
    record: Dict, baseline_document: Dict, tolerance: float
) -> List[str]:
    """Regression messages (empty = pass) comparing seconds per protocol."""
    key = record_key(record)
    baseline = baseline_document.get("records", {}).get(key)
    if baseline is None:
        return [
            f"baseline document holds no record for configuration "
            f"{key!r}; regenerate it with --json"
        ]
    problems: List[str] = []
    for protocol, point in record["protocols"].items():
        base = baseline.get("protocols", {}).get(protocol)
        if base is None:
            continue
        limit = base["seconds"] * tolerance
        if point["seconds"] > limit:
            problems.append(
                f"{protocol}: {point['seconds']:.2f}s exceeds "
                f"{tolerance:g}x the recorded baseline "
                f"({base['seconds']:.2f}s -> limit {limit:.2f}s)"
            )
    return problems


def _print_record(record: Dict) -> None:
    print(
        f"scale={record['scale']} pause={record['pause_time']:g} "
        f"queue={record.get('event_queue', 'calendar')} "
        f"mac={record.get('mac_model', 'poll')} "
        + (
            f"backend={record['engine_backend']}x{record.get('shard_count', 0)} "
            if record.get("engine_backend", "serial") != "serial"
            else ""
        )
        + f"({record['node_count']} nodes, {record['duration']:g}s simulated, "
        f"commit {record['commit'] or '?'})"
    )
    header = (
        f"{'protocol':<8} {'wall s':>8} {'events':>10} "
        f"{'events/s':>10} {'delivery':>9}"
    )
    if any("off_seconds" in p for p in record["protocols"].values()):
        header += f" {'off s':>8} {'speedup':>8}"
    print(header)
    for protocol, point in record["protocols"].items():
        line = (
            f"{protocol:<8} {point['seconds']:>8.2f} {point['events']:>10} "
            f"{point['events_per_second']:>10,.0f} {point['delivery_ratio']:>9.3f}"
        )
        if "off_seconds" in point:
            line += f" {point['off_seconds']:>8.2f} {point.get('speedup', 0):>7.2f}x"
        print(line)


# -- pytest-benchmark integration -------------------------------------------------


@pytest.mark.parametrize("protocol", DEFAULT_PROTOCOLS)
def bench_trial_wall_clock(benchmark, protocol):
    """One smoke-scale trial per protocol with events/s in the report."""
    scale = resolve_scale("smoke")
    scenario = scale.scenario.with_pause_time(scale.pause_times[0])
    result = benchmark.pedantic(
        run_point, args=(scenario, protocol), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["events"] > 0


# -- CLI ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=tuple(SCALE_NAMES),
        default="paper-tier",
        help="scenario size to measure (default: paper-tier)",
    )
    parser.add_argument(
        "--protocol",
        nargs="+",
        metavar="PROTO",
        default=list(DEFAULT_PROTOCOLS),
        help=f"protocols to measure (default: {' '.join(DEFAULT_PROTOCOLS)})",
    )
    parser.add_argument(
        "--pause",
        type=float,
        default=None,
        metavar="S",
        help="mobility pause time (default: the scale's first pause time)",
    )
    parser.add_argument(
        "--with-off",
        action="store_true",
        help="also measure the reference slow path (fast paths disabled) "
        "and record the speedup",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the trajectory record to PATH (e.g. BENCH_5.json)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare against a committed trajectory record; exit 1 on "
        "regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="allowed wall-clock ratio vs the baseline (default: 1.5)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="take the best of N runs per point (for noisy/shared hosts)",
    )
    parser.add_argument(
        "--queue",
        choices=("heap", "calendar"),
        default="calendar",
        help="event-queue implementation to measure (default: calendar)",
    )
    parser.add_argument(
        "--mac",
        choices=("poll", "frozen"),
        default="poll",
        help="MAC backoff model to measure (default: poll); non-default "
        "axes get their own trajectory record (e.g. 'paper-tier+frozen')",
    )
    parser.add_argument(
        "--engine-backend",
        choices=("serial", "sharded"),
        default="serial",
        help="engine backend to measure (default: serial); the sharded "
        "backend gets its own record (e.g. 'smoke+sharded2')",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="K",
        help="shard count for the sharded backend (0 = auto from cores)",
    )
    args = parser.parse_args(argv)

    record = build_record(
        args.scale,
        args.protocol,
        pause=args.pause,
        with_off=args.with_off,
        repeat=args.repeat,
        event_queue=args.queue,
        mac_model=args.mac,
        engine_backend=args.engine_backend,
        shard_count=args.shards,
    )
    _print_record(record)

    if args.json is not None:
        path = Path(args.json)
        document = None
        if path.exists():
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except ValueError as exc:
                # A corrupt trajectory file must fail loudly: silently
                # resetting it would wipe every other record on disk.
                print(
                    f"error: {path} is not valid JSON ({exc}); fix or "
                    "remove it before merging new records",
                    file=sys.stderr,
                )
                return 2
        document = merge_into_document(document, record)
        path.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
        print(f"(trajectory record for scale '{record['scale']}' written to {path})")

    if args.check is not None:
        baseline_path = Path(args.check)
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        problems = check_against_baseline(record, baseline, args.tolerance)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(
            f"perf check OK: every protocol within {args.tolerance:g}x of "
            f"the committed baseline (commit {baseline.get('commit') or '?'})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
