"""Fig. 3: average MAC-layer drops per node vs. pause time.

The paper's observation: DSR suffers by far the highest MAC drop rate under
the high-load scenario, and drop counts fall as mobility decreases (larger
pause times).
"""

from repro.experiments import figure, figure_text


def bench_fig3_mac_drops(benchmark, evaluation_results):
    series = benchmark(figure, "fig3", evaluation_results)

    print()
    print(figure_text("fig3", evaluation_results))
    print("Paper: DSR has the highest MAC drop rate (up to ~350/node); all "
          "protocols drop less as pause time grows.")

    most_mobile = series.x_values[0]
    least_mobile = series.x_values[-1]
    for protocol in series.by_protocol:
        values = series.protocol_values(protocol)
        assert all(value >= 0.0 for value in values)
    # Drops under constant mobility are at least as high as when static.
    for protocol in series.by_protocol:
        first = series.by_protocol[protocol][0].mean
        last = series.by_protocol[protocol][-1].mean
        assert first >= last - 1e-9, (protocol, most_mobile, least_mobile)
