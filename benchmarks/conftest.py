"""Shared fixtures for the benchmark harness.

Every table/figure benchmark derives its rows from one shared protocol x
pause-time sweep, run once per benchmark session through the job pipeline
(:func:`repro.experiments.run_evaluation`).  Two tiers are available:

* the default laptop-friendly ``BENCH_SCALE`` (structure of the paper's
  evaluation — five protocols, several pause times, shared per-trial
  scenarios — at reduced node count and duration), and
* the opt-in **paper tier**: the paper's full 5-protocol x 8-pause-time shape
  via ``EvaluationScale.paper_tier()``.  Enable it with the ``--paper-tier``
  pytest option or ``REPRO_PAPER_TIER=1`` in the environment; set
  ``REPRO_SWEEP_JOBS=N`` to fan the sweep out over N worker processes
  (results are bit-identical either way).

The full paper-scale sweep is driven by the CLI instead:
``python -m repro.experiments run --scale paper --jobs N --out DIR``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import EvaluationScale, run_evaluation
from repro.workloads.scenario import scaled_scenario

#: The scale used by the benchmark harness; chosen so the whole suite runs in
#: a few minutes while keeping every protocol and pause-time mechanism active.
BENCH_SCALE = EvaluationScale(
    "bench",
    scaled_scenario(
        node_count=24,
        flow_count=6,
        duration=40.0,
        terrain_width=1100.0,
        terrain_height=350.0,
        seed=11,
    ),
    pause_times=(0.0, 20.0, 40.0),
    trials=1,
)


def pytest_addoption(parser):
    parser.addoption(
        "--paper-tier",
        action="store_true",
        default=False,
        help="run the shared sweep at the paper-shape tier "
        "(5 protocols x 8 pause times; also REPRO_PAPER_TIER=1)",
    )


def _paper_tier_enabled(config) -> bool:
    if config.getoption("--paper-tier", default=False):
        return True
    return os.environ.get("REPRO_PAPER_TIER", "").strip() not in ("", "0")


def _sweep_workers() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_SWEEP_JOBS", "1")))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def evaluation_scale(request) -> EvaluationScale:
    """The tier the shared sweep runs at (bench by default, paper on opt-in)."""
    if _paper_tier_enabled(request.config):
        return EvaluationScale.paper_tier()
    return BENCH_SCALE


@pytest.fixture(scope="session")
def evaluation_results(evaluation_scale):
    """The shared sweep behind Table I and Figures 3–7."""
    return run_evaluation(evaluation_scale, workers=_sweep_workers())
