"""Shared fixtures for the benchmark harness.

Every table/figure benchmark derives its rows from one shared protocol x
pause-time sweep, run once per benchmark session at a laptop-friendly scale
(the structure of the paper's evaluation — five protocols, several pause
times, shared per-trial scenarios — at reduced node count and duration).  The
full paper-scale sweep is available through
``examples/paper_evaluation.py --scale paper``.
"""

from __future__ import annotations

import pytest

from repro.experiments import EvaluationScale, run_evaluation
from repro.workloads.scenario import scaled_scenario

#: The scale used by the benchmark harness; chosen so the whole suite runs in
#: a few minutes while keeping every protocol and pause-time mechanism active.
BENCH_SCALE = EvaluationScale(
    "bench",
    scaled_scenario(
        node_count=24,
        flow_count=6,
        duration=40.0,
        terrain_width=1100.0,
        terrain_height=350.0,
        seed=11,
    ),
    pause_times=(0.0, 20.0, 40.0),
    trials=1,
)


@pytest.fixture(scope="session")
def evaluation_results():
    """The shared sweep behind Table I and Figures 3–7."""
    return run_evaluation(BENCH_SCALE)
