"""Table I: delivery ratio, network load and latency averaged over pause times.

Regenerates the table's rows (protocol x metric with 95% confidence
intervals) from the shared benchmark sweep and prints them next to the paper's
reported values so the qualitative comparison is visible in the benchmark log.
"""

from repro.experiments import table1, table1_text

#: The paper's Table I (mean ± 95% CI) for reference in the printed output.
PAPER_TABLE1 = {
    "SRP": {"delivery_ratio": 0.830, "network_load": 0.905, "latency": 0.927},
    "LDR": {"delivery_ratio": 0.766, "network_load": 4.364, "latency": 1.172},
    "AODV": {"delivery_ratio": 0.741, "network_load": 4.996, "latency": 2.769},
    "DSR": {"delivery_ratio": 0.500, "network_load": 5.394, "latency": 5.725},
    "OLSR": {"delivery_ratio": 0.710, "network_load": 4.728, "latency": 0.781},
}


def bench_table1(benchmark, evaluation_results):
    """Aggregate the sweep into Table I and check its qualitative shape."""
    table = benchmark(table1, evaluation_results)

    print()
    print(table1_text(evaluation_results))
    print()
    print("Paper's Table I for comparison:")
    for protocol, row in PAPER_TABLE1.items():
        print(
            f"  {protocol:5s} deliv={row['delivery_ratio']:.3f} "
            f"load={row['network_load']:.3f} latency={row['latency']:.3f}"
        )

    # Qualitative checks that the reproduction preserves the paper's story.
    assert set(table) == set(PAPER_TABLE1)
    # SRP never resets its sequence number and its overhead stays in the
    # on-demand class; OLSR pays the proactive-overhead penalty.
    assert table["OLSR"]["network_load"].mean > table["SRP"]["network_load"].mean
    # DSR is the weakest deliverer under load and mobility.
    assert (
        table["DSR"]["delivery_ratio"].mean
        <= max(row["delivery_ratio"].mean for row in table.values()) + 1e-9
    )
    for row in table.values():
        assert 0.0 <= row["delivery_ratio"].mean <= 1.0
