"""Fig. 4: delivery ratio vs. pause time.

The paper's observation: SRP has the highest delivery ratio at almost all
pause times (~0.83 on average), AODV/OLSR sit near 0.73, LDR near 0.77 and
DSR collapses under mobility at this load.
"""

from repro.experiments import figure, figure_text


def bench_fig4_delivery_ratio(benchmark, evaluation_results):
    series = benchmark(figure, "fig4", evaluation_results)

    print()
    print(figure_text("fig4", evaluation_results))
    print("Paper: SRP highest (~0.83 avg); LDR ~0.77; AODV/OLSR ~0.71-0.74; "
          "DSR lowest (~0.50) and falling sharply with mobility.")

    for protocol, intervals in series.by_protocol.items():
        for interval in intervals:
            assert 0.0 <= interval.mean <= 1.0, protocol
    # Delivery does not get worse as the network becomes static.
    for protocol in series.by_protocol:
        first = series.by_protocol[protocol][0].mean
        last = series.by_protocol[protocol][-1].mean
        assert last >= first - 0.05, protocol
    # DSR is never the best deliverer under constant mobility.
    mobile_ratios = {
        protocol: intervals[0].mean
        for protocol, intervals in series.by_protocol.items()
    }
    assert mobile_ratios["DSR"] <= max(mobile_ratios.values())
