"""Fig. 6: mean end-to-end data latency vs. pause time.

The paper's observation: OLSR (proactive, no discovery delay) and SRP have the
lowest latencies and are statistically close; AODV and LDR are worse; DSR is
the worst under load.
"""

from repro.experiments import figure, figure_text


def bench_fig6_latency(benchmark, evaluation_results):
    series = benchmark(figure, "fig6", evaluation_results)

    print()
    print(figure_text("fig6", evaluation_results))
    print("Paper: OLSR and SRP lowest (~0.8-0.9 s average over pause times), "
          "LDR ~1.2 s, AODV ~2.8 s, DSR ~5.7 s.")

    for protocol, intervals in series.by_protocol.items():
        for interval in intervals:
            assert interval.mean >= 0.0, protocol
    # Latency under constant mobility is at least that of the static case for
    # the on-demand protocols (repairs and re-discoveries add delay).
    for protocol in ("SRP", "AODV", "LDR"):
        values = series.protocol_values(protocol)
        assert values[0] >= values[-1] - 0.05, protocol
