"""Micro- and macro-benchmarks of the core machinery and the simulator.

These complement the per-figure benchmarks: they measure the cost of the
label-set primitives the protocol executes on every routing event (mediant
splits, Algorithm 1) and the wall-clock cost of a complete SRP trial, which is
the quantity that bounds how large an evaluation sweep a laptop can run.
"""

from repro.core.fractions import ProperFraction
from repro.core.neworder import new_order
from repro.core.ordering import UNASSIGNED, Ordering
from repro.protocols import protocol_factory
from repro.sim.network import run_trial
from repro.workloads.scenario import scaled_scenario


def bench_mediant_split_chain(benchmark):
    """Cost of 40 consecutive mediant splits (the paper's 32-bit budget is 45)."""

    def split_chain():
        low = ProperFraction.zero()
        high = ProperFraction.one()
        for _ in range(40):
            high = low.mediant_with(high, limit=None)
        return high

    result = benchmark(split_chain)
    assert result.denominator == 41


def bench_algorithm1_new_order(benchmark):
    """Cost of one Algorithm 1 invocation with a populated successor set."""
    current = Ordering(3, ProperFraction(5, 9))
    cached = Ordering(3, ProperFraction(7, 9))
    advertised = Ordering(3, ProperFraction(2, 9))
    successors = {i: Ordering(3, ProperFraction(1, 10 + i)) for i in range(8)}

    result = benchmark(new_order, current, cached, advertised, successors)
    assert result.is_finite


def bench_algorithm1_unassigned_node(benchmark):
    """Algorithm 1 for a node joining a DAG for the first time."""
    advertised = Ordering.destination(1)
    result = benchmark(new_order, UNASSIGNED, UNASSIGNED, advertised, {})
    assert result.ordering == Ordering(1, ProperFraction(1, 2))


def bench_srp_trial(benchmark):
    """A complete small SRP trial (mobility, MAC, discovery, forwarding)."""
    scenario = scaled_scenario(
        node_count=16,
        flow_count=3,
        duration=15.0,
        terrain_width=900.0,
        terrain_height=300.0,
        seed=21,
    )
    summary = benchmark.pedantic(
        run_trial, args=(scenario, protocol_factory("SRP")), rounds=1, iterations=1
    )
    assert summary.data_sent > 0


def bench_aodv_trial(benchmark):
    """The same trial under AODV, for a like-for-like simulator cost comparison."""
    scenario = scaled_scenario(
        node_count=16,
        flow_count=3,
        duration=15.0,
        terrain_width=900.0,
        terrain_height=300.0,
        seed=21,
    )
    summary = benchmark.pedantic(
        run_trial, args=(scenario, protocol_factory("AODV")), rounds=1, iterations=1
    )
    assert summary.data_sent > 0
