"""Node-count scaling benchmark: events/sec as trials grow past paper size.

The spatial-index + hot-path work (uniform-grid neighbour queries, the
per-timestamp position cache and the tuple-entry event heap) exists so that
sweeps *larger* than the paper's 50–100 nodes stay tractable.  This benchmark
tracks that directly: one SRP trial per node count on a terrain scaled to the
paper's node density, recording simulator events per wall-clock second so the
trajectory catches regressions in the channel or engine hot paths.

Runable two ways:

* under pytest-benchmark with the rest of the suite, or
* as a plain script — ``python benchmarks/bench_scaling.py --nodes 24``
  (the CI smoke invocation) or with several ``--nodes`` values for the
  full sweep table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.protocols import protocol_factory
from repro.sim.network import build_network
from repro.sim.tuning import EngineTuning
from repro.workloads.scenario import scaled_scenario

#: The sweep: laptop scale, the paper's two evaluation sizes, and 2x paper.
NODE_COUNTS = (24, 50, 100, 200)

#: Paper node density: 100 nodes on 2200 m x 600 m.
_PAPER_DENSITY_AREA_PER_NODE = 2200.0 * 600.0 / 100.0


def scaling_scenario(node_count: int, *, duration: float = 25.0, seed: int = 31):
    """A scenario with the paper's node density and traffic mix at ``node_count``.

    The terrain keeps the paper's 600 m height and grows in width, so the
    network stays a multi-hop strip and per-node contention is comparable
    across sweep points.
    """
    height = 600.0
    width = max(node_count * _PAPER_DENSITY_AREA_PER_NODE / height, 600.0)
    return scaled_scenario(
        node_count=node_count,
        flow_count=max(4, (30 * node_count) // 100),
        duration=duration,
        terrain_width=width,
        terrain_height=height,
        seed=seed,
    )


def run_point(
    node_count: int,
    *,
    duration: float = 25.0,
    protocol: str = "SRP",
    shards: int = 0,
    processes: bool = False,
):
    """Run one sweep point; returns (wall_seconds, events, summary).

    ``shards > 0`` runs the point on the sharded PDES backend with that
    shard count (the trial is bit-identical; only the wall clock differs),
    adding a shard-count axis to the scaling table.  ``processes`` runs it
    in the windowed cross-process mode instead — one worker per shard
    under the speed-of-light propagation-delay channel (the model the
    science gate validates), which is where multi-core hosts see actual
    wall-clock speedup.
    """
    if processes:
        from repro.sim.pdes import run_trial_sharded_processes
        from repro.sim.phy import SPEED_OF_LIGHT_DELAY_S_PER_M

        scenario = scaling_scenario(node_count, duration=duration)
        scenario = scenario.with_propagation_delay(SPEED_OF_LIGHT_DELAY_S_PER_M)
        start = time.perf_counter()
        report = run_trial_sharded_processes(
            scenario,
            protocol,
            static_positions=False,
            max_workers=max(shards, 2),
        )
        elapsed = time.perf_counter() - start
        return elapsed, report.events_processed, report.summary
    tuning = (
        EngineTuning(engine_backend="sharded", shard_count=shards)
        if shards > 0
        else None
    )
    network = build_network(
        scaling_scenario(node_count, duration=duration),
        protocol_factory(protocol),
        tuning=tuning,
    )
    start = time.perf_counter()
    summary = network.run()
    elapsed = time.perf_counter() - start
    return elapsed, network.simulator.events_processed, summary


@pytest.mark.parametrize("node_count", NODE_COUNTS)
def bench_scaling_srp(benchmark, node_count):
    """One SRP trial per sweep point, reported with its events/sec rate."""
    result = benchmark.pedantic(
        run_point, args=(node_count,), rounds=1, iterations=1
    )
    elapsed, events, summary = result
    benchmark.extra_info["node_count"] = node_count
    benchmark.extra_info["events_processed"] = events
    benchmark.extra_info["events_per_second"] = round(events / elapsed, 1)
    assert summary.data_sent > 0


def _scaling_record(
    node_count,
    duration,
    protocol,
    shards,
    elapsed,
    events,
    summary,
    processes=False,
):
    """One trajectory record for a scaling point, bench_trial_profile-shaped.

    The record keys read ``scaling200`` (serial) / ``scaling200+sharded4`` /
    ``scaling200+proc2`` (windowed process mode), so the node-count x
    shard-count grid lives in BENCH_5.json beside the per-scale records and
    the same ``--check`` machinery gates both.  Process-mode records carry
    the host's core count so a single-vCPU runner's honest overhead number
    is never mistaken for a multi-core speedup measurement.
    """
    import os

    from bench_trial_profile import _git_commit

    if processes:
        backend = "proc"
    elif shards > 0:
        backend = "sharded"
    else:
        backend = "serial"
    record = {
        "scale": f"scaling{node_count}",
        "pause_time": 0.0,
        "node_count": node_count,
        "duration": duration,
        "event_queue": "calendar",
        "mac_model": "poll",
        "engine_backend": backend,
        "shard_count": shards,
        "commit": _git_commit(),
        "protocols": {
            protocol: {
                "seconds": round(elapsed, 3),
                "events": events,
                "events_per_second": round(events / elapsed, 1) if elapsed else 0.0,
                "delivery_ratio": round(summary.delivery_ratio, 4),
            }
        },
    }
    if processes:
        record["host_cpus"] = os.cpu_count() or 1
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--nodes",
        type=int,
        action="append",
        help="node count to run (repeatable; default: the full sweep)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        action="append",
        metavar="K",
        help="also run each point on the sharded PDES backend with K shards "
        "(repeatable; 0 = the serial engine, the default single axis)",
    )
    parser.add_argument("--duration", type=float, default=25.0)
    parser.add_argument("--protocol", default="SRP")
    parser.add_argument(
        "--processes",
        action="store_true",
        help="run the nonzero --shards points in the windowed cross-process "
        "mode (speed-of-light propagation-delay channel, one worker per "
        "shard); records key as e.g. scaling200+proc2 and carry host_cpus "
        "so single-core overhead is never read as speedup",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="merge per-point trajectory records into PATH (e.g. BENCH_5.json)",
    )
    args = parser.parse_args(argv)
    counts = tuple(args.nodes) if args.nodes else NODE_COUNTS
    shard_axis = tuple(args.shards) if args.shards else (0,)

    # bench_trial_profile owns the trajectory-record machinery; the
    # benchmarks directory is only on sys.path when run under pytest.
    sys.path.insert(0, str(Path(__file__).resolve().parent))

    records = []
    print(
        f"{'nodes':>6} {'shards':>6} {'wall s':>8} {'events':>10} "
        f"{'events/s':>10} {'delivery':>9}"
    )
    for node_count in counts:
        for shards in shard_axis:
            processes = bool(args.processes and shards > 0)
            try:
                elapsed, events, summary = run_point(
                    node_count,
                    duration=args.duration,
                    protocol=args.protocol,
                    shards=shards,
                    processes=processes,
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            backend_tag = "proc" if processes else (shards or "-")
            print(
                f"{node_count:>6} {backend_tag:>6} {elapsed:>8.2f} {events:>10} "
                f"{events / elapsed:>10.0f} {summary.delivery_ratio:>9.3f}"
            )
            if summary.data_sent <= 0:
                print("error: trial originated no data packets", file=sys.stderr)
                return 1
            records.append(
                _scaling_record(
                    node_count,
                    args.duration,
                    args.protocol,
                    shards,
                    elapsed,
                    events,
                    summary,
                    processes=processes,
                )
            )

    if args.json is not None:
        from bench_trial_profile import merge_into_document

        path = Path(args.json)
        document = None
        if path.exists():
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except ValueError as exc:
                # A corrupt trajectory file must fail loudly: silently
                # resetting it would wipe every other record on disk.
                print(
                    f"error: {path} is not valid JSON ({exc}); fix or "
                    "remove it before merging new records",
                    file=sys.stderr,
                )
                return 2
        for record in records:
            document = merge_into_document(document, record)
        path.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
        print(f"({len(records)} scaling record(s) merged into {path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
