"""Fig. 5: network load (control packets per delivered data packet) vs. pause time.

The paper's observation (semi-log plot): SRP's load is roughly 5x lower than
LDR/AODV/OLSR; overhead shrinks as the network becomes static for the
on-demand protocols while OLSR's stays constant.
"""

from repro.experiments import figure, figure_text


def bench_fig5_network_load(benchmark, evaluation_results):
    series = benchmark(figure, "fig5", evaluation_results)

    print()
    print(figure_text("fig5", evaluation_results))
    print("Paper: SRP ~0.2x the load of LDR/AODV/OLSR; OLSR overhead is "
          "constant with pause time, on-demand overhead falls.")

    # OLSR (proactive) pays more overhead than SRP at every pause time.
    olsr = series.protocol_values("OLSR")
    srp = series.protocol_values("SRP")
    assert all(o > s for o, s in zip(olsr, srp))
    # On-demand overhead decreases as mobility stops; OLSR's stays flat-ish.
    for protocol in ("SRP", "AODV", "LDR"):
        values = series.protocol_values(protocol)
        assert values[-1] <= values[0] + 1e-9, protocol
    olsr_change = abs(olsr[-1] - olsr[0]) / max(olsr[0], 1e-9)
    assert olsr_change < 0.5
