"""Fig. 7: average node sequence number vs. pause time (SRP, LDR, AODV).

The paper's headline result for this figure: across 80 simulations SRP never
needed to increment a sequence number to repair a path — its curve is exactly
zero — while AODV's sequence numbers grow fastest (they are its only
loop-prevention mechanism) and LDR's grow slowly (most repairs succeed with
feasible-distance ordering alone).
"""

from repro.experiments import figure, figure_text


def bench_fig7_sequence_numbers(benchmark, evaluation_results):
    series = benchmark(figure, "fig7", evaluation_results)

    print()
    print(figure_text("fig7", evaluation_results))
    print("Paper: SRP is exactly 0 at every pause time; AODV highest "
          "(up to ~140 at pause 0); LDR in between but much lower than AODV.")

    srp = series.protocol_values("SRP")
    ldr = series.protocol_values("LDR")
    aodv = series.protocol_values("AODV")
    # SRP never increments a sequence number.
    assert all(value == 0.0 for value in srp)
    # AODV grows at least as fast as LDR, and strictly dominates SRP overall.
    assert all(a >= b for a, b in zip(aodv, ldr))
    assert sum(aodv) > 0.0
    assert sum(aodv) >= sum(ldr) >= sum(srp)
