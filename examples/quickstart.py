#!/usr/bin/env python3
"""Quickstart: Split Label Routing in a few dozen lines.

This example walks the two halves of the library:

1. The *abstract* SLR machinery of Section II — a dense label set, a request /
   reply route computation, and the topological-order invariant — reproducing
   the paper's Example 1 and Example 2 exactly.
2. The *full protocol* (SRP) running inside the discrete-event wireless
   simulator: a small static network, one CBR flow, and the resulting
   delivery / overhead / sequence-number metrics.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import networkx as nx

from repro.core import SlrNetwork, UnboundedFractionLabelSet
from repro.protocols import protocol_factory
from repro.sim import run_trial
from repro.workloads import scaled_scenario


def example_1_and_2() -> None:
    """The paper's Fig. 1 and Fig. 2 label assignments."""
    print("=" * 66)
    print("Section II, Example 1: initial graph labelling (Fig. 1)")
    print("=" * 66)
    label_set = UnboundedFractionLabelSet()
    network = SlrNetwork(label_set, "T")

    chain = nx.path_graph(["E", "D", "C", "B", "A", "T"])
    result = network.compute_route(
        "E", chain, request_path=["E", "D", "C", "B", "A", "T"]
    )
    print(f"request by E succeeded: {result.succeeded}, replier: {result.replier}")
    for node in ["E", "D", "C", "B", "A", "T"]:
        print(f"  label({node}) = {network.label(node)}")
    print(f"loop-free: {network.is_loop_free()}, "
          f"topologically ordered: {network.is_topologically_ordered()}")

    print()
    print("=" * 66)
    print("Section II, Example 2: nodes F, G, H join the DAG (Fig. 2)")
    print("=" * 66)
    # F, G and H once had routes to T, so they carry labels but no successors.
    from fractions import Fraction

    network.state("F").label = Fraction(2, 3)
    network.state("G").label = Fraction(2, 3)
    network.state("H").label = Fraction(3, 4)
    joined = nx.path_graph(["H", "G", "F", "B", "A", "T"])
    result = network.compute_route("H", joined, request_path=["H", "G", "F", "B", "A"])
    print(
        f"request by H answered by {result.replier}; "
        f"relabelled: {sorted(result.relabelled)}"
    )
    for node in ["H", "G", "F", "B", "A", "T"]:
        print(f"  label({node}) = {network.label(node)}")
    print(f"loop-free: {network.is_loop_free()}, "
          f"topologically ordered: {network.is_topologically_ordered()}")


def srp_in_the_simulator() -> None:
    """One small SRP trial in the wireless discrete-event simulator."""
    print()
    print("=" * 66)
    print("SRP inside the wireless simulator (small static-ish scenario)")
    print("=" * 66)
    scenario = scaled_scenario(
        node_count=20,
        flow_count=4,
        duration=30.0,
        pause_time=30.0,  # effectively static
        seed=7,
    )
    summary = run_trial(scenario, protocol_factory("SRP"))
    print(f"data packets sent       : {summary.data_sent}")
    print(f"data packets delivered  : {summary.data_delivered}")
    print(f"delivery ratio          : {summary.delivery_ratio:.3f}")
    print(
        f"network load            : {summary.network_load:.3f} "
        "control tx per delivered packet"
    )
    print(f"mean latency            : {summary.mean_latency * 1000:.1f} ms")
    print(
        f"avg sequence number     : {summary.average_sequence_number:.1f} "
        "(SRP's destination-controlled reset was never needed)"
    )


if __name__ == "__main__":
    example_1_and_2()
    srp_in_the_simulator()
