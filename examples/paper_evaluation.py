#!/usr/bin/env python3
"""Regenerate the paper's evaluation: Table I and Figures 3–7.

This is the driver behind deliverable (d): for every table and figure in the
paper's Section V it runs the protocol x pause-time x trial sweep, aggregates
the metrics with 95% confidence intervals and prints the rows / series the
paper reports.  It rides on the job pipeline in :mod:`repro.experiments`:
``--jobs N`` fans the sweep's independent trial cells over N worker processes,
and ``--out DIR`` persists each completed cell so an interrupted run resumes
instead of restarting (results are bit-identical whatever the backend).

Scales
------
* ``--scale smoke``       a seconds-long sanity run (default for CI)
* ``--scale benchmark``   the laptop-sized sweep used by ``pytest benchmarks/``
* ``--scale paper-tier``  the paper's full 5 x 8 shape at nightly-CI cost
* ``--scale paper``       the full 100-node, 8-pause-time, 10-trial setup of
                          Section V (hours of CPU serially; use ``--jobs``)

Examples
--------
    python examples/paper_evaluation.py --scale smoke
    python examples/paper_evaluation.py --scale benchmark --experiment fig7
    python examples/paper_evaluation.py --scale paper --jobs 8 --out sweep-paper

The sweep engine CLI (``python -m repro.experiments``) is the first-class way
to drive long runs — it adds ``resume`` (continue an interrupted sweep from
its store directory) and ``report`` (re-render tables/figures from disk
without simulating)::

    python -m repro.experiments run --scale paper --jobs 8 --out sweep-paper
    python -m repro.experiments resume --out sweep-paper --jobs 8
    python -m repro.experiments report --out sweep-paper

This script is the thin, keep-it-on-one-screen version of the same flow.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    EXPERIMENTS,
    SCALE_NAMES,
    ResultsStore,
    figure_text,
    resolve_scale,
    run_evaluation,
    table1_text,
)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=tuple(SCALE_NAMES),
        default="smoke",
        help="how large a sweep to run (default: smoke)",
    )
    parser.add_argument(
        "--experiment",
        choices=("all",) + tuple(EXPERIMENTS),
        default="all",
        help="regenerate one table/figure only (default: all)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the number of trials per data point",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep (default: 1 = serial)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="persist completed cells in DIR so the sweep is resumable",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    scale = resolve_scale(args.scale, trials=args.trials)
    print(
        f"Running the '{scale.name}' sweep: {scale.scenario.node_count} nodes, "
        f"{len(scale.pause_times)} pause times x {scale.trials} trials "
        f"({scale.job_count} simulations, {args.jobs} worker"
        f"{'s' if args.jobs != 1 else ''})..."
    )
    store = None
    if args.out is not None:
        store = ResultsStore(args.out)
        try:
            store.ensure_meta(
                scale=scale.name,
                scenario=scale.scenario,
                protocols=EXPERIMENTS["table1"].protocols,
                pause_times=scale.pause_times,
                trials=scale.trials,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    started = time.time()

    def progress(event):
        job = event.job
        state = "cached" if event.cached else f"{event.elapsed:7.1f}s"
        print(
            f"  [{event.completed:>3}/{event.total}] {job.protocol:5s} "
            f"pause={job.pause_time:g}s trial={job.trial} ({state})",
            flush=True,
        )

    results = run_evaluation(
        scale, workers=args.jobs, store=store, progress=progress
    )
    elapsed = time.time() - started
    print(f"\nSweep finished in {elapsed:.1f} s.\n")
    if store is not None:
        store.write_results(results)

    wanted = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in wanted:
        print("=" * 72)
        if experiment_id == "table1":
            print(table1_text(results))
        else:
            print(figure_text(experiment_id, results))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
