#!/usr/bin/env python3
"""Regenerate the paper's evaluation: Table I and Figures 3–7.

This is the driver behind deliverable (d): for every table and figure in the
paper's Section V it runs the protocol x pause-time x trial sweep, aggregates
the metrics with 95% confidence intervals and prints the rows / series the
paper reports.

Scales
------
* ``--scale smoke``      a seconds-long sanity run (default for CI)
* ``--scale benchmark``  the laptop-sized sweep used by ``pytest benchmarks/``
* ``--scale paper``      the full 100-node, 8-pause-time, 10-trial setup of
                         Section V (hours of CPU time in pure Python)

Examples
--------
    python examples/paper_evaluation.py --scale smoke
    python examples/paper_evaluation.py --scale benchmark --experiment fig7
    python examples/paper_evaluation.py --scale paper --trials 3
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    EXPERIMENTS,
    EvaluationScale,
    figure_text,
    run_evaluation,
    table1_text,
)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("smoke", "benchmark", "paper"),
        default="smoke",
        help="how large a sweep to run (default: smoke)",
    )
    parser.add_argument(
        "--experiment",
        choices=("all",) + tuple(EXPERIMENTS),
        default="all",
        help="regenerate one table/figure only (default: all)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the number of trials per data point",
    )
    return parser.parse_args(argv)


def resolve_scale(name: str, trials_override=None) -> EvaluationScale:
    scale = {
        "smoke": EvaluationScale.smoke,
        "benchmark": EvaluationScale.benchmark,
        "paper": EvaluationScale.paper,
    }[name]()
    if trials_override is not None:
        scale = EvaluationScale(
            scale.name, scale.scenario, scale.pause_times, trials_override
        )
    return scale


def main(argv=None) -> int:
    args = parse_args(argv)
    scale = resolve_scale(args.scale, args.trials)
    total_trials = (
        len(scale.pause_times) * scale.trials * 5  # five protocols
    )
    print(
        f"Running the '{scale.name}' sweep: {scale.scenario.node_count} nodes, "
        f"{len(scale.pause_times)} pause times x {scale.trials} trials "
        f"({total_trials} simulations)..."
    )
    started = time.time()

    def progress(protocol, pause_time, trial):
        print(f"  [{time.time() - started:7.1f}s] {protocol:5s} "
              f"pause={pause_time:g}s trial={trial}", flush=True)

    results = run_evaluation(scale, progress=progress)
    elapsed = time.time() - started
    print(f"\nSweep finished in {elapsed:.1f} s.\n")

    wanted = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in wanted:
        print("=" * 72)
        if experiment_id == "table1":
            print(table1_text(results))
        else:
            print(figure_text(experiment_id, results))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
