#!/usr/bin/env python3
"""Route repair without sequence-number resets — SRP's dense-label insertion.

The scenario the paper motivates (Example 2, and the reason SRP's Fig. 7 curve
is exactly zero): a wireless network where links keep breaking and new nodes
keep appearing.  A protocol whose loop prevention relies on sequence numbers
(AODV) must keep inflating them; SRP instead *splits* the dense label space
locally, so the destination never has to issue a reset.

This example runs the same failure-heavy static scenario under SRP, LDR and
AODV:

* a 5x4 grid of nodes carrying three CBR flows,
* every 10 simulated seconds a relay node "crashes" (its radio goes silent),

and then reports delivery, overhead and — the point of the exercise — how far
each protocol's sequence numbers had to grow to survive the churn.

Run with:  python examples/route_repair_after_failures.py
"""

from __future__ import annotations

import random

from repro.protocols import protocol_factory
from repro.sim import build_network
from repro.sim.mobility import StaticMobility
from repro.sim.space import Position
from repro.workloads import scaled_scenario

PROTOCOLS = ("SRP", "LDR", "AODV")
CRASH_INTERVAL = 10.0
DURATION = 60.0


def run_with_crashes(protocol_name: str, seed: int = 13):
    """One static trial where a random relay crashes every CRASH_INTERVAL s."""
    scenario = scaled_scenario(
        node_count=20,
        flow_count=3,
        duration=DURATION,
        pause_time=DURATION,  # static placement; failures drive the churn
        terrain_width=1000.0,
        terrain_height=400.0,
        seed=seed,
    )
    network = build_network(scenario, protocol_factory(protocol_name))
    rng = random.Random(seed)
    crash_candidates = [nid for nid in network.nodes][4:16]
    rng.shuffle(crash_candidates)

    def crash_one(index=[0]):  # noqa: B006 - tiny stateful closure on purpose
        if index[0] < len(crash_candidates):
            victim = crash_candidates[index[0]]
            index[0] += 1
            network.nodes[victim].mobility = StaticMobility(
                Position(100_000.0, 100_000.0)
            )
            print(f"    t={network.simulator.now:5.1f}s  {protocol_name}: "
                  f"node {victim} crashed")
        if network.simulator.now + CRASH_INTERVAL < DURATION:
            network.simulator.schedule_in(CRASH_INTERVAL, crash_one)

    network.simulator.schedule_in(CRASH_INTERVAL, crash_one)
    summary = network.run()
    return summary


def main() -> None:
    print("Failure-injection comparison: SRP vs LDR vs AODV")
    print("(a relay node crashes every 10 s; same placement and traffic for all)")
    print()
    results = {}
    for protocol in PROTOCOLS:
        print(f"  running {protocol} ...")
        results[protocol] = run_with_crashes(protocol)
    print()
    header = (
        f"{'protocol':8s} {'delivery':>9s} {'net load':>9s} "
        f"{'latency':>9s} {'avg seqno':>10s}"
    )
    print(header)
    print("-" * len(header))
    for protocol, summary in results.items():
        print(
            f"{protocol:8s} {summary.delivery_ratio:9.3f} "
            f"{summary.network_load:9.3f} {summary.mean_latency:9.3f} "
            f"{summary.average_sequence_number:10.2f}"
        )
    print()
    print("SRP repairs every break by splitting labels locally, so its average")
    print("sequence number stays at zero (Fig. 7); AODV must inflate sequence")
    print("numbers on every discovery and route loss.")


if __name__ == "__main__":
    main()
