"""Tests for the experiment runner and the paper's table/figure definitions."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    PAPER_PROTOCOLS,
    SEQUENCE_NUMBER_PROTOCOLS,
    EvaluationScale,
    figure,
    figure_text,
    run_evaluation,
    run_sweep,
    table1,
    table1_text,
)
from repro.workloads.scenario import PAPER_PAUSE_TIMES, scaled_scenario


@pytest.fixture(scope="module")
def tiny_results():
    """One very small sweep shared by every test in this module."""
    scenario = scaled_scenario(
        node_count=12,
        flow_count=2,
        duration=15.0,
        terrain_width=800,
        terrain_height=300,
    )
    return run_sweep(
        scenario,
        ["SRP", "AODV", "LDR"],
        pause_times=(0.0, 15.0),
        trials=1,
    )


class TestExperimentDefinitions:
    def test_every_table_and_figure_is_defined(self):
        assert set(EXPERIMENTS) == {"table1", "fig3", "fig4", "fig5", "fig6", "fig7"}

    def test_figures_cover_the_paper_metrics(self):
        assert EXPERIMENTS["fig3"].metric == "mac_drops"
        assert EXPERIMENTS["fig4"].metric == "delivery_ratio"
        assert EXPERIMENTS["fig5"].metric == "network_load"
        assert EXPERIMENTS["fig6"].metric == "latency"
        assert EXPERIMENTS["fig7"].metric == "sequence_number"

    def test_fig7_limits_protocols_to_sequence_number_users(self):
        assert tuple(EXPERIMENTS["fig7"].protocols) == tuple(SEQUENCE_NUMBER_PROTOCOLS)

    def test_paper_protocol_list(self):
        assert tuple(PAPER_PROTOCOLS) == ("SRP", "LDR", "AODV", "DSR", "OLSR")


class TestEvaluationScales:
    def test_paper_scale_matches_paper(self):
        scale = EvaluationScale.paper()
        assert scale.scenario.node_count == 100
        assert scale.trials == 10
        assert tuple(scale.pause_times) == PAPER_PAUSE_TIMES

    def test_benchmark_and_smoke_scales_are_smaller(self):
        benchmark = EvaluationScale.benchmark()
        smoke = EvaluationScale.smoke()
        assert benchmark.scenario.node_count < 100
        assert smoke.scenario.node_count <= benchmark.scenario.node_count
        assert smoke.trials <= benchmark.trials


class TestSweep:
    def test_all_cells_present(self, tiny_results):
        assert len(tiny_results.summaries) == 3 * 2 * 1  # protocols x pauses x trials

    def test_metric_values_per_pause(self, tiny_results):
        values = tiny_results.metric_values("SRP", "delivery_ratio", 0.0)
        assert len(values) == 1
        assert 0.0 <= values[0] <= 1.0

    def test_metric_over_all_pauses(self, tiny_results):
        values = tiny_results.metric_over_all_pauses("AODV", "network_load")
        assert len(values) == 2

    def test_offered_load_identical_across_protocols(self, tiny_results):
        """Per-trial mobility/traffic scripts are shared by all protocols."""
        for pause in (0.0, 15.0):
            sent = {
                protocol: tiny_results.summaries[(protocol, pause, 0)].data_sent
                for protocol in ("SRP", "AODV", "LDR")
            }
            assert len(set(sent.values())) == 1

    def test_series_shape(self, tiny_results):
        series = tiny_results.series("delivery_ratio")
        assert set(series) == {"SRP", "AODV", "LDR"}
        assert set(series["SRP"]) == {0.0, 15.0}


class TestTableAndFigures:
    def test_table1_has_all_protocols_and_metrics(self, tiny_results):
        table = table1(tiny_results)
        assert set(table) == {"SRP", "AODV", "LDR"}
        for row in table.values():
            assert set(row) == {"delivery_ratio", "network_load", "latency"}

    def test_table1_text_renders(self, tiny_results):
        text = table1_text(tiny_results)
        assert "Table I" in text
        assert "SRP" in text and "AODV" in text

    @pytest.mark.parametrize("figure_id", ["fig3", "fig4", "fig5", "fig6", "fig7"])
    def test_each_figure_renders(self, tiny_results, figure_id):
        series = figure(figure_id, tiny_results)
        assert list(series.x_values) == [0.0, 15.0]
        text = figure_text(figure_id, tiny_results)
        assert "pause time" in text

    def test_figure_rejects_table_id(self, tiny_results):
        with pytest.raises(ValueError):
            figure("table1", tiny_results)

    def test_srp_sequence_number_is_zero_in_fig7(self, tiny_results):
        series = figure("fig7", tiny_results)
        assert all(value == 0.0 for value in series.protocol_values("SRP"))


class TestRunEvaluation:
    def test_run_evaluation_smoke_scale(self):
        results = run_evaluation(
            EvaluationScale(
                "tiny",
                scaled_scenario(
                    node_count=10,
                    flow_count=2,
                    duration=10.0,
                    terrain_width=700,
                    terrain_height=300,
                ),
                pause_times=(0.0,),
                trials=1,
            ),
            protocols=("SRP", "AODV"),
        )
        assert ("SRP", 0.0, 0) in results.summaries
        assert ("AODV", 0.0, 0) in results.summaries
