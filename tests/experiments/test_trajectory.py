"""Tests for store merging/compaction and cross-run metric trajectories.

Stores are built synthetically — planned jobs get hand-made summaries via
``ResultsStore.put`` — so the round-trip properties (union is lossless,
idempotent and orphan-dropping; trajectories preserve store order and render
gaps) are pinned down without running simulations.
"""

import json

import pytest

from repro.experiments import (
    ResultsStore,
    merge_stores,
    metric_trajectories,
    sparkline,
)
from repro.experiments.trajectory import (
    SPARK_GAP,
    trajectories_to_dict,
    trajectories_to_text,
)
from repro.sim.stats import TrialSummary
from repro.workloads.scenario import scaled_scenario

PROTOCOLS = ("SRP", "AODV")
PAUSE_TIMES = (0.0, 20.0)
TRIALS = 2


def make_summary(seqno: float = 0.0) -> TrialSummary:
    return TrialSummary(
        data_sent=100,
        data_delivered=90,
        control_transmissions=50,
        mean_latency=0.01,
        mac_drops_per_node=0.0,
        average_sequence_number=seqno,
        duplicate_deliveries=0,
    )


def make_store(path, *, seed: int = 7, seqno: float = 0.0, keep=None) -> ResultsStore:
    """A store whose planned cells all hold ``make_summary(seqno)``.

    ``keep`` optionally filters which job indices get a stored cell, so tests
    can build partial stores.
    """
    store = ResultsStore(path)
    store.write_meta(
        scale="unit",
        scenario=scaled_scenario(node_count=10, flow_count=2, seed=seed),
        protocols=PROTOCOLS,
        pause_times=PAUSE_TIMES,
        trials=TRIALS,
    )
    for index, job in enumerate(store.planned_jobs()):
        if keep is not None and index not in keep:
            continue
        store.put(job, make_summary(seqno))
    return store


class TestMergeStores:
    def test_two_partial_stores_union_to_a_complete_one(self, tmp_path):
        jobs = 2 * 2 * 2  # protocols x pauses x trials
        half_a = make_store(tmp_path / "a", keep=set(range(0, jobs, 2)))
        half_b = make_store(tmp_path / "b", keep=set(range(1, jobs, 2)))
        dest = ResultsStore(tmp_path / "merged")

        report = merge_stores(dest, [half_a, half_b])

        assert report.complete
        assert report.completed_cells == report.planned_cells == jobs
        assert sum(report.copied.values()) == jobs
        assert dest.results_path.exists()
        # The merged store round-trips: every planned cell is readable.
        results = dest.load_results(require_complete=True)
        assert len(results.summaries) == jobs

    def test_merge_is_idempotent(self, tmp_path):
        source = make_store(tmp_path / "src")
        dest = ResultsStore(tmp_path / "merged")
        first = merge_stores(dest, [source])
        second = merge_stores(dest, [source])
        assert sum(first.copied.values()) == 8
        assert sum(second.copied.values()) == 0
        assert second.complete

    def test_orphan_cells_are_compacted_away(self, tmp_path):
        source = make_store(tmp_path / "src")
        orphan = source.jobs_dir / "deadbeef00deadbeef00.json"
        orphan.write_text(json.dumps({"version": 1, "summary": {}}))
        dest = ResultsStore(tmp_path / "merged")
        report = merge_stores(dest, [source])
        assert report.complete
        assert "deadbeef00deadbeef00" not in dest.completed_keys()

    def test_mismatched_sweeps_are_rejected_before_copying(self, tmp_path):
        source = make_store(tmp_path / "src")
        other = make_store(tmp_path / "other", seed=99)
        dest = ResultsStore(tmp_path / "merged")
        with pytest.raises(ValueError, match="different sweeps"):
            merge_stores(dest, [source, other])
        # Validation happens before any write: a fresh destination is left
        # completely untouched (no adopted metadata a retry would conflict
        # with, no cells).
        assert dest.read_meta() is None
        assert dest.completed_keys() == []

    def test_merge_into_existing_destination_validates_identity(self, tmp_path):
        dest = make_store(tmp_path / "dest", keep=set())
        other = make_store(tmp_path / "other", seed=99)
        with pytest.raises(ValueError, match="different sweeps"):
            merge_stores(dest, [other])

    def test_merge_needs_sources(self, tmp_path):
        with pytest.raises(ValueError, match="at least one source"):
            merge_stores(ResultsStore(tmp_path / "dest"), [])


class TestTrajectories:
    def test_points_follow_store_order(self, tmp_path):
        runs = [
            make_store(tmp_path / "run-1", seqno=0.0),
            make_store(tmp_path / "run-2", seqno=1.0),
            make_store(tmp_path / "run-3", seqno=2.0),
        ]
        trajectories = metric_trajectories(runs, ["fig7"])
        points = trajectories["fig7"]["SRP"]
        assert [point.label for point in points] == ["run-1", "run-2", "run-3"]
        assert [point.mean for point in points] == [0.0, 1.0, 2.0]
        assert all(point.samples == 4 for point in points)

    def test_missing_protocol_renders_as_gap(self, tmp_path):
        store = make_store(tmp_path / "run-1")
        trajectories = metric_trajectories([store], ["fig5"])
        # fig5 plots all five paper protocols; this store only ran two.
        olsr = trajectories["fig5"]["OLSR"]
        assert olsr[0].samples == 0
        assert trajectories_to_dict(trajectories)["fig5"]["protocols"]["OLSR"][
            0
        ]["mean"] is None

    def test_text_rendering_includes_sparklines(self, tmp_path):
        runs = [
            make_store(tmp_path / "run-1", seqno=0.0),
            make_store(tmp_path / "run-2", seqno=4.0),
        ]
        text = trajectories_to_text(metric_trajectories(runs, ["fig7"]))
        assert "Fig. 7" in text
        assert "▁" in text and "█" in text  # low then high

    def test_dict_rendering_is_json_safe(self, tmp_path):
        runs = [make_store(tmp_path / "run-1")]
        data = trajectories_to_dict(metric_trajectories(runs, ["fig4"]))
        json.dumps(data)  # must not raise
        assert data["fig4"]["metric"] == "delivery_ratio"


class TestSparkline:
    def test_monotonic_values_rise(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_flat_series_is_low(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_nan_renders_as_gap(self):
        line = sparkline([0.0, float("nan"), 2.0])
        assert line[1] == SPARK_GAP

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3 ) == SPARK_GAP * 3
