"""Results-store semantics: persistence, resume and reconstruction.

A killed paper-scale sweep must resume from its completed cells: the store
keys cells by job content hash, so a re-planned identical sweep finds them
again, only the missing cells run, and the reassembled ``SweepResults`` is
identical to an uninterrupted run's.
"""

import pytest

from repro.experiments import (
    ResultsStore,
    SweepResults,
    collect_sweep,
    execute_jobs,
    plan_sweep,
)
from repro.workloads.scenario import scaled_scenario

PROTOCOLS = ["SRP", "AODV"]
PAUSE_TIMES = (0.0, 8.0)
TRIALS = 1


@pytest.fixture(scope="module")
def scenario():
    return scaled_scenario(
        node_count=10,
        flow_count=2,
        duration=8.0,
        terrain_width=700,
        terrain_height=300,
    )


@pytest.fixture(scope="module")
def jobs(scenario):
    return plan_sweep(scenario, PROTOCOLS, pause_times=PAUSE_TIMES, trials=TRIALS)


@pytest.fixture(scope="module")
def full_outcomes(jobs):
    return execute_jobs(jobs, workers=1)


def make_store(tmp_path, scenario) -> ResultsStore:
    store = ResultsStore(tmp_path / "sweep")
    store.write_meta(
        scale="tiny",
        scenario=scenario,
        protocols=PROTOCOLS,
        pause_times=PAUSE_TIMES,
        trials=TRIALS,
    )
    return store


class TestCellPersistence:
    def test_put_get_round_trip(self, tmp_path, scenario, jobs, full_outcomes):
        store = make_store(tmp_path, scenario)
        job = jobs[0]
        store.put(job, full_outcomes[job])
        assert store.get(job) == full_outcomes[job]
        assert job in store

    def test_missing_cell_is_none(self, tmp_path, scenario, jobs):
        store = make_store(tmp_path, scenario)
        assert store.get(jobs[0]) is None
        assert jobs[0] not in store
        assert store.missing(jobs) == list(jobs)


class TestResume:
    def test_rerun_fills_only_the_missing_cells(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        store = make_store(tmp_path, scenario)
        # Simulate an interrupted sweep: half the cells completed.
        done, pending = jobs[: len(jobs) // 2], jobs[len(jobs) // 2 :]
        for job in done:
            store.put(job, full_outcomes[job])

        events = []
        outcomes = execute_jobs(jobs, workers=1, store=store, progress=events.append)

        fresh = [e.job for e in events if not e.cached]
        cached = [e.job for e in events if e.cached]
        assert fresh == pending  # no recomputation of completed cells
        assert set(cached) == set(done)
        assert outcomes == full_outcomes

    def test_resumed_sweep_results_match_uninterrupted(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        store = make_store(tmp_path, scenario)
        for job in jobs[:1]:
            store.put(job, full_outcomes[job])
        outcomes = execute_jobs(jobs, workers=1, store=store)
        resumed = collect_sweep(
            outcomes, pause_times=PAUSE_TIMES, trials=TRIALS, protocols=PROTOCOLS
        )
        direct = collect_sweep(
            full_outcomes,
            pause_times=PAUSE_TIMES,
            trials=TRIALS,
            protocols=PROTOCOLS,
        )
        assert resumed.summaries == direct.summaries

    def test_fully_cached_run_executes_nothing(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        store = make_store(tmp_path, scenario)
        for job in jobs:
            store.put(job, full_outcomes[job])
        events = []
        outcomes = execute_jobs(jobs, workers=1, store=store, progress=events.append)
        assert all(e.cached for e in events)
        assert outcomes == full_outcomes


class TestReconstruction:
    def test_planned_jobs_match_original_plan(self, tmp_path, scenario, jobs):
        store = make_store(tmp_path, scenario)
        assert store.planned_jobs() == list(jobs)

    def test_load_results_reassembles_the_sweep(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        store = make_store(tmp_path, scenario)
        execute_jobs(jobs, workers=1, store=store)
        loaded = store.load_results()
        direct = collect_sweep(
            full_outcomes,
            pause_times=PAUSE_TIMES,
            trials=TRIALS,
            protocols=PROTOCOLS,
        )
        assert loaded.summaries == direct.summaries

    def test_load_results_tolerates_partial_store(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        store = make_store(tmp_path, scenario)
        store.put(jobs[0], full_outcomes[jobs[0]])
        partial = store.load_results()
        assert len(partial.summaries) == 1
        with pytest.raises(ValueError, match="incomplete"):
            store.load_results(require_complete=True)

    def test_write_results_round_trips(self, tmp_path, scenario, jobs, full_outcomes):
        store = make_store(tmp_path, scenario)
        execute_jobs(jobs, workers=1, store=store)
        results = store.load_results()
        store.write_results(results)
        restored = SweepResults.from_json(
            store.results_path.read_text(encoding="utf-8")
        )
        assert restored.summaries == results.summaries

    def test_foreign_directory_raises(self, tmp_path):
        store = ResultsStore(tmp_path / "empty")
        with pytest.raises(FileNotFoundError):
            store.require_meta()
        assert store.read_meta() is None
        assert not (tmp_path / "empty").exists()  # reads never mkdir


class TestTornCells:
    """Truncated/invalid cell files count as missing (and are reported)."""

    def _tear(self, store, job, content='{"version": 1, "job": {}, "sum'):
        path = store.jobs_dir / f"{job.content_key}.json"
        path.write_text(content, encoding="utf-8")
        return path

    def test_torn_cell_reads_as_missing(self, tmp_path, scenario, jobs, full_outcomes):
        from repro.experiments import TornCellWarning

        store = make_store(tmp_path, scenario)
        job = jobs[0]
        store.put(job, full_outcomes[job])
        self._tear(store, job)
        with pytest.warns(TornCellWarning, match="torn"):
            assert store.get(job) is None
        assert store.torn_keys() == [job.content_key]
        assert job in store.missing(jobs)

    def test_torn_cell_with_missing_summary_field(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        store = make_store(tmp_path, scenario)
        job = jobs[0]
        store.put(job, full_outcomes[job])
        self._tear(store, job, '{"version": 1, "job": {}}')
        with pytest.warns(Warning, match="torn"):
            assert store.get(job) is None

    def test_load_results_skips_torn_cells(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        store = make_store(tmp_path, scenario)
        for job in jobs:
            store.put(job, full_outcomes[job])
        self._tear(store, jobs[0])
        with pytest.warns(Warning, match="torn"):
            results = store.load_results()
        assert len(results.summaries) == len(jobs) - 1
        # The torn cell is only reported once; it still counts as missing.
        with pytest.raises(ValueError, match="incomplete"):
            store.load_results(require_complete=True)

    def test_rewriting_a_torn_cell_heals_it(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        store = make_store(tmp_path, scenario)
        job = jobs[0]
        store.put(job, full_outcomes[job])
        self._tear(store, job)
        with pytest.warns(Warning, match="torn"):
            assert store.get(job) is None
        store.put(job, full_outcomes[job])  # the re-run overwrites atomically
        assert store.get(job) == full_outcomes[job]
        assert store.torn_keys() == []


class TestKeyCache:
    """completed_keys()/missing() scan the cell directory once per instance."""

    def test_put_keeps_the_cache_current(self, tmp_path, scenario, jobs, full_outcomes):
        store = make_store(tmp_path, scenario)
        assert store.completed_keys() == []  # primes the cache
        store.put(jobs[0], full_outcomes[jobs[0]])
        assert store.completed_keys() == [jobs[0].content_key]
        assert store.missing(jobs) == list(jobs[1:])

    def test_foreign_writes_need_invalidation(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        ours = make_store(tmp_path, scenario)
        theirs = ResultsStore(ours.root)  # another process, in effect
        assert ours.completed_keys() == []
        theirs.put(jobs[0], full_outcomes[jobs[0]])
        assert ours.completed_keys() == []  # cached: foreign write invisible
        ours.invalidate_key_cache()
        assert ours.completed_keys() == [jobs[0].content_key]

    def test_get_repopulates_after_invalidation(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        store = make_store(tmp_path, scenario)
        store.put(jobs[0], full_outcomes[jobs[0]])
        store.invalidate_key_cache()
        assert store.get(jobs[0]) == full_outcomes[jobs[0]]
        assert jobs[0] in store


class TestMetaGuards:
    def test_ensure_meta_accepts_identical_parameters(self, tmp_path, scenario):
        store = make_store(tmp_path, scenario)
        store.ensure_meta(
            scale="renamed-is-fine",
            scenario=scenario,
            protocols=PROTOCOLS,
            pause_times=PAUSE_TIMES,
            trials=TRIALS,
        )
        assert store.require_meta()["scale"] == "tiny"  # original kept

    def test_racing_init_with_different_parameters_is_caught(
        self, tmp_path, scenario
    ):
        # Two workers initialising one fresh shared store with *different*
        # sweeps both see an empty directory; the post-write re-read must
        # hand the race's loser the same error a late arrival would get.
        import types

        store = ResultsStore(tmp_path / "fresh")
        rival = ResultsStore(store.root)
        original = ResultsStore.write_meta

        def write_then_lose_the_race(self, **kwargs):
            original(self, **kwargs)
            original(
                rival,
                scale="rival",
                scenario=scenario,
                protocols=["SRP"],
                pause_times=(0.0,),
                trials=9,
            )

        store.write_meta = types.MethodType(write_then_lose_the_race, store)
        with pytest.raises(ValueError, match="different sweep"):
            store.ensure_meta(
                scale="tiny",
                scenario=scenario,
                protocols=PROTOCOLS,
                pause_times=PAUSE_TIMES,
                trials=TRIALS,
            )

    def test_ensure_meta_rejects_a_different_sweep(self, tmp_path, scenario):
        store = make_store(tmp_path, scenario)
        with pytest.raises(ValueError, match="different sweep"):
            store.ensure_meta(
                scale="tiny",
                scenario=scenario,
                protocols=PROTOCOLS,
                pause_times=PAUSE_TIMES,
                trials=TRIALS + 1,
            )

    def test_incompatible_cell_version_is_rejected(
        self, tmp_path, scenario, jobs, full_outcomes
    ):
        import json

        store = make_store(tmp_path, scenario)
        job = jobs[0]
        store.put(job, full_outcomes[job])
        path = store.jobs_dir / f"{job.content_key}.json"
        cell = json.loads(path.read_text(encoding="utf-8"))
        cell["version"] = 999
        path.write_text(json.dumps(cell), encoding="utf-8")
        with pytest.raises(ValueError, match="incompatible store version"):
            store.get(job)
