"""The distributed backend: leases, stealing, crash recovery, equivalence.

The work-stealing backend's whole promise is that N workers sharing a store
directory behave like one serial run: every cell runs exactly once (lease
races aside), a worker killed mid-trial leaves no partial cell and its stale
lease is reclaimed, and the converged store is cell-for-cell identical to the
serial backend's.  Lease arithmetic runs on an injected deterministic clock;
the kill test uses a real subprocess and SIGKILL.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments import (
    DistributedBackend,
    ResultsStore,
    execute_jobs,
    plan_sweep,
    store_status,
)
from repro.sim.stats import TrialSummary
from repro.workloads.scenario import scaled_scenario

PROTOCOLS = ["SRP", "AODV"]
PAUSE_TIMES = (0.0, 8.0)
TRIALS = 2
TTL = 30.0


class FakeClock:
    """A deterministic time source: advances only when told to."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def fake_summary(seed: int = 0) -> TrialSummary:
    return TrialSummary(
        data_sent=10 + seed,
        data_delivered=9,
        control_transmissions=3,
        mean_latency=0.05,
        mac_drops_per_node=0.0,
        average_sequence_number=0.0,
        duplicate_deliveries=0,
    )


@pytest.fixture(scope="module")
def scenario():
    return scaled_scenario(
        node_count=10,
        flow_count=2,
        duration=8.0,
        terrain_width=700,
        terrain_height=300,
    )


@pytest.fixture(scope="module")
def jobs(scenario):
    return plan_sweep(scenario, PROTOCOLS, pause_times=PAUSE_TIMES, trials=TRIALS)


@pytest.fixture(scope="module")
def serial_outcomes(jobs):
    return execute_jobs(jobs, workers=1)


def make_store(root, scenario) -> ResultsStore:
    store = ResultsStore(root)
    store.write_meta(
        scale="tiny",
        scenario=scenario,
        protocols=PROTOCOLS,
        pause_times=PAUSE_TIMES,
        trials=TRIALS,
    )
    return store


class TestLeases:
    """The store's claim primitives under a deterministic clock."""

    def test_exactly_one_claimant_wins(self, tmp_path, scenario):
        store = make_store(tmp_path / "s", scenario)
        clock = FakeClock()
        assert store.try_claim("k1", "w1", now=clock()) is not None
        assert store.try_claim("k1", "w2", now=clock()) is None
        assert store.read_claim("k1")["worker"] == "w1"

    def test_refresh_is_owner_only(self, tmp_path, scenario):
        store = make_store(tmp_path / "s", scenario)
        clock = FakeClock()
        store.try_claim("k1", "w1", now=clock())
        clock.advance(5)
        assert store.refresh_claim("k1", "w2", now=clock()) is None
        refreshed = store.refresh_claim("k1", "w1", now=clock())
        assert refreshed["heartbeat"] == clock()

    def test_release_is_owner_only(self, tmp_path, scenario):
        store = make_store(tmp_path / "s", scenario)
        clock = FakeClock()
        store.try_claim("k1", "w1", now=clock())
        store.release_claim("k1", "w2")
        assert store.read_claim("k1") is not None  # not ours; kept
        store.release_claim("k1", "w1")
        assert store.read_claim("k1") is None

    def test_heartbeat_keeps_a_lease_live(self, tmp_path, scenario):
        store = make_store(tmp_path / "s", scenario)
        clock = FakeClock()
        store.try_claim("k1", "w1", now=clock())
        clock.advance(TTL * 0.9)
        store.refresh_claim("k1", "w1", now=clock())
        clock.advance(TTL * 0.9)  # past the original claim, within the refresh
        claim = store.read_claim("k1")
        assert not store.claim_is_stale(claim, ttl=TTL, now=clock())
        assert store.reclaim_stale("k1", "w2", ttl=TTL, now=clock()) is None

    def test_stale_lease_is_reclaimed(self, tmp_path, scenario):
        store = make_store(tmp_path / "s", scenario)
        clock = FakeClock()
        store.try_claim("k1", "w1", now=clock())
        clock.advance(TTL + 1)
        claim = store.reclaim_stale("k1", "w2", ttl=TTL, now=clock())
        assert claim is not None and claim["worker"] == "w2"
        # The dead worker's heartbeat no longer succeeds: the lease is w2's.
        assert store.refresh_claim("k1", "w1", now=clock()) is None

    def test_reclaim_race_has_one_winner(self, tmp_path, scenario):
        store = make_store(tmp_path / "s", scenario)
        clock = FakeClock()
        store.try_claim("k1", "w1", now=clock())
        clock.advance(TTL + 1)
        # Both observe the stale lease; the reap (rename) settles the race —
        # whoever loses the rename must not end up owning the cell.
        first = store.reclaim_stale("k1", "w2", ttl=TTL, now=clock())
        second = store.reclaim_stale("k1", "w3", ttl=TTL, now=clock())
        assert first is not None
        assert second is None  # w2's fresh lease is not stale
        assert store.read_claim("k1")["worker"] == "w2"

    def test_dead_reapers_graveyard_litter_is_swept(self, tmp_path, scenario):
        store = make_store(tmp_path / "s", scenario)
        clock = FakeClock()
        # A reaper died between its rename and unlink: the stale document
        # lingers under the graveyard name.
        store.try_claim("k1", "w1", now=clock())
        clock.advance(TTL + 1)
        os.rename(
            store._lease_path("k1"), store.claims_dir / "k1.reaped-by-dead"
        )
        assert store.reap_graveyard(ttl=TTL, now=clock()) == 1
        assert list(store.claims_dir.iterdir()) == []

    def test_live_graveyard_document_is_left_for_restore(
        self, tmp_path, scenario
    ):
        store = make_store(tmp_path / "s", scenario)
        clock = FakeClock()
        store.try_claim("k1", "w1", now=clock())
        os.rename(
            store._lease_path("k1"), store.claims_dir / "k1.reaped-by-w2"
        )
        # The moved document is fresh: w2 is mid-reap and about to restore.
        assert store.reap_graveyard(ttl=TTL, now=clock()) == 0
        assert (store.claims_dir / "k1.reaped-by-w2").exists()

    def test_graveyard_litter_is_not_a_phantom_lease(self, tmp_path, scenario):
        store = make_store(tmp_path / "s", scenario)
        store.claims_dir.mkdir(parents=True)
        # Foreign/legacy litter whose name matches both schemes at once must
        # never surface as a claim for the nonexistent key "k1.reaped-by-w9".
        (store.claims_dir / "k1.reaped-by-w9.lease").write_text(
            "{}", encoding="utf-8"
        )
        assert store.claims() == {}

    def test_torn_lease_counts_as_stale(self, tmp_path, scenario):
        store = make_store(tmp_path / "s", scenario)
        clock = FakeClock()
        store.claims_dir.mkdir(parents=True)
        (store.claims_dir / "k1.lease").write_text("{trunc", encoding="utf-8")
        assert store.read_claim("k1") == {}
        assert store.claim_is_stale(store.read_claim("k1"), ttl=TTL, now=clock())
        claim = store.reclaim_stale("k1", "w2", ttl=TTL, now=clock())
        assert claim is not None and claim["worker"] == "w2"


class TestWorkStealing:
    """Concurrent backends over one store: exactly-once, identical results."""

    def _run_workers(
        self, store_root, jobs, worker_ids, *, run, clock=None, pool_jobs=1
    ):
        backends, events, errors = {}, {}, []

        def work(worker_id):
            try:
                store = ResultsStore(store_root)
                backend = DistributedBackend(
                    worker_id,
                    lease_ttl=TTL,
                    poll_interval=0.01,
                    clock=clock or time.time,
                    run=run,
                    jobs=pool_jobs,
                )
                backends[worker_id] = backend
                events[worker_id] = []
                execute_jobs(
                    jobs,
                    store=store,
                    backend=backend,
                    progress=events[worker_id].append,
                )
            except Exception as exc:  # pragma: no cover - surfaced by assert
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(w,), daemon=True)
            for w in worker_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        return backends, events

    def test_no_job_runs_twice_under_a_fake_clock(self, tmp_path, scenario, jobs):
        store = make_store(tmp_path / "shared", scenario)
        clock = FakeClock()
        run_log = []

        def fake_run(job):
            run_log.append(job.content_key)
            time.sleep(0.005)  # widen the window in which races could happen
            return fake_summary()

        backends, _ = self._run_workers(
            store.root, jobs, ("w1", "w2"), run=fake_run, clock=clock
        )
        # Every planned cell ran exactly once across both workers, and each
        # worker's own log matches what it recorded in the store.
        assert sorted(run_log) == sorted(job.content_key for job in jobs)
        ran = backends["w1"].ran_keys + backends["w2"].ran_keys
        assert sorted(ran) == sorted(job.content_key for job in jobs)

    def test_three_workers_match_the_serial_store(
        self, tmp_path, scenario, jobs, serial_outcomes
    ):
        serial_store = make_store(tmp_path / "serial", scenario)
        for job, summary in serial_outcomes.items():
            serial_store.put(job, summary)

        shared = make_store(tmp_path / "shared", scenario)
        from repro.experiments.executor import run_job

        backends, events = self._run_workers(
            shared.root, jobs, ("w1", "w2", "w3"), run=run_job
        )
        # Cell-for-cell identical to the serial backend's store.
        assert serial_store.diff_cells(ResultsStore(shared.root)) == []
        # Work was partitioned, not duplicated.
        ran = [k for b in backends.values() for k in b.ran_keys]
        assert sorted(ran) == sorted(job.content_key for job in jobs)
        # Every progress event names its worker; each worker accounted for
        # every job exactly once (own runs + cells adopted from the others).
        for worker_id, worker_events in events.items():
            assert {e.worker for e in worker_events} == {worker_id}
            assert {e.job for e in worker_events} == set(jobs)
        # All leases were released on the way out.
        assert ResultsStore(shared.root).claims() == {}

    def test_hybrid_pool_workers_match_the_serial_store(
        self, tmp_path, scenario, jobs, serial_outcomes
    ):
        """The ROADMAP's worker-pool hybrid: two lease-polling workers, each
        fanning its claimed cells over a 2-process local pool, converge on a
        store cell-for-cell identical to the serial run with no cell run
        twice."""
        serial_store = make_store(tmp_path / "serial", scenario)
        for job, summary in serial_outcomes.items():
            serial_store.put(job, summary)

        shared = make_store(tmp_path / "shared", scenario)
        from repro.experiments.executor import run_job

        backends, events = self._run_workers(
            shared.root, jobs, ("h1", "h2"), run=run_job, pool_jobs=2
        )
        assert serial_store.diff_cells(ResultsStore(shared.root)) == []
        ran = [k for b in backends.values() for k in b.ran_keys]
        assert sorted(ran) == sorted(job.content_key for job in jobs)
        for worker_id, worker_events in events.items():
            assert {e.worker for e in worker_events} == {worker_id}
            assert {e.job for e in worker_events} == set(jobs)
        assert ResultsStore(shared.root).claims() == {}

    def test_hybrid_pool_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            DistributedBackend("w1", jobs=0)

    def test_worker_reruns_a_torn_cell(self, tmp_path, scenario, jobs):
        store = make_store(tmp_path / "shared", scenario)
        victim = jobs[0]
        store.jobs_dir.mkdir(parents=True)
        (store.jobs_dir / f"{victim.content_key}.json").write_text(
            '{"version": 1, "job": {}, "summ', encoding="utf-8"
        )
        backend = DistributedBackend(
            "w1", lease_ttl=TTL, run=lambda job: fake_summary()
        )
        with pytest.warns(Warning, match="torn"):
            outcomes = execute_jobs(jobs, store=store, backend=backend)
        assert victim.content_key in backend.ran_keys
        assert outcomes[victim] == fake_summary()

    def test_backend_requires_a_store(self, jobs):
        backend = DistributedBackend("w1")
        with pytest.raises(ValueError, match="store"):
            execute_jobs(jobs, backend=backend)

    def test_backend_rejects_nonpositive_intervals(self):
        with pytest.raises(ValueError, match="lease_ttl"):
            DistributedBackend("w1", lease_ttl=0)
        with pytest.raises(ValueError, match="poll_interval"):
            DistributedBackend("w1", poll_interval=0)

    def test_backend_rejects_path_unsafe_worker_ids(self):
        # Worker ids become file names (workers/<id>.json, graveyard names);
        # a separator would crash mid-run or escape the store directory, and
        # lease-scheme suffixes would make graves parse as phantom leases.
        # (An empty id falls back to default_worker_id, so it is fine.)
        for bad in ("host/1", "../x", "a b", "..", "n1.lease", "x.reaped-by-y"):
            with pytest.raises(ValueError, match="filesystem-safe"):
                DistributedBackend(bad)
        from repro.experiments.distributed import default_worker_id

        assert DistributedBackend(default_worker_id())  # always valid

    def test_abandoned_lease_on_a_completed_cell_is_reaped(
        self, tmp_path, scenario, jobs
    ):
        # A worker that dies *between* put and release leaves a lease for a
        # cell everyone else adopts from the cache skim — the steal loop
        # must still tidy it (its housekeeping pass, not the claim path).
        store = make_store(tmp_path / "shared", scenario)
        clock = FakeClock()
        dead_cell = jobs[0]
        store.put(dead_cell, fake_summary())
        store.try_claim(
            dead_cell.content_key, "dead", now=clock() - TTL * 2
        )
        backend = DistributedBackend(
            "survivor", lease_ttl=TTL, clock=clock, run=lambda job: fake_summary()
        )
        events = []
        execute_jobs(jobs, store=store, backend=backend, progress=events.append)
        assert store.claims() == {}
        # The skim event for the dead worker's cell names the survivor too.
        assert {e.worker for e in events} == {"survivor"}


class TestStatus:
    def test_status_reports_claims_workers_and_staleness(
        self, tmp_path, scenario, jobs
    ):
        store = make_store(tmp_path / "shared", scenario)
        clock = FakeClock()
        backend = DistributedBackend(
            "w1", lease_ttl=TTL, clock=clock, run=lambda job: fake_summary()
        )
        execute_jobs(jobs[:2], store=store, backend=backend)
        live = jobs[2]
        stale = jobs[3]
        store.try_claim(
            live.content_key, "w2", now=clock(), cell=live.cell_dict()
        )
        store.try_claim(
            stale.content_key, "w3", now=clock() - TTL * 2, cell=stale.cell_dict()
        )

        status = store_status(store, lease_ttl=TTL, now=clock())
        assert status["planned_cells"] == len(jobs)
        assert status["completed_cells"] == 2
        assert status["workers"] == [
            {"worker": "w1", "completed": 2, "updated": clock()}
        ]
        by_key = {claim["key"]: claim for claim in status["claims"]}
        assert not by_key[live.content_key]["stale"]
        assert by_key[stale.content_key]["stale"]
        assert by_key[live.content_key]["cell"]["protocol"] == live.protocol


class TestCrashRecovery:
    """A SIGKILLed worker: no partial cell, stale lease, clean completion."""

    @pytest.fixture()
    def shared_store(self, tmp_path, scenario):
        return make_store(tmp_path / "shared", scenario)

    def _spawn_worker(self, store_root, worker_id):
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "worker",
                "--store",
                str(store_root),
                "--worker-id",
                worker_id,
                "--lease-ttl",
                "1000",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_killed_worker_leaves_a_clean_resumable_store(
        self, shared_store, scenario, jobs, serial_outcomes
    ):
        victim = self._spawn_worker(shared_store.root, "victim")
        try:
            deadline = time.monotonic() + 90
            while time.monotonic() < deadline:
                if list(shared_store.jobs_dir.glob("*.json")):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("worker subprocess produced no cell within 90 s")
        finally:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)

        # No partial cell: every file in the store parses and round-trips.
        for path in shared_store.jobs_dir.glob("*.json"):
            cell = json.loads(path.read_text(encoding="utf-8"))
            assert set(cell) == {"version", "job", "summary"}
        done_before = len(list(shared_store.jobs_dir.glob("*.json")))
        assert done_before < len(jobs)

        # The dead worker's lease (if it died mid-cell) is stale after the
        # TTL; a surviving worker reclaims it and completes the sweep.  The
        # fake clock jumps past the 1000 s TTL instead of waiting it out.
        far_future = time.time() + 5000
        survivor = DistributedBackend(
            "survivor",
            lease_ttl=1000,
            poll_interval=0.01,
            clock=lambda: far_future,
        )
        outcomes = execute_jobs(jobs, store=shared_store, backend=survivor)

        assert outcomes == serial_outcomes  # nothing lost, nothing corrupted
        assert shared_store.claims() == {}  # including the victim's lease
        fresh = ResultsStore(shared_store.root)
        assert fresh.missing(jobs) == []
        # No duplicated work: the survivor ran only what the victim had not
        # already persisted.
        assert len(survivor.ran_keys) == len(jobs) - done_before
