"""The profiling subsystem: layer mapping, trial profiles, CLI, bench record."""

import json

import pytest

from repro.experiments.paper import EvaluationScale
from repro.experiments.profile import (
    KNOWN_LAYERS,
    TrialProfile,
    layer_of,
    profile_trial,
)
from repro.sim.tuning import FastPaths
from repro.workloads.scenario import scaled_scenario


def tiny_scenario():
    return scaled_scenario(
        node_count=10,
        flow_count=2,
        duration=8.0,
        terrain_width=700,
        terrain_height=300,
    )


class TestLayerMapping:
    @pytest.mark.parametrize(
        ("filename", "layer"),
        [
            ("/repo/src/repro/sim/engine.py", "engine"),
            ("/repo/src/repro/sim/channel.py", "channel"),
            ("/repo/src/repro/sim/spatial.py", "channel"),
            ("/repo/src/repro/sim/mac.py", "mac"),
            ("/repo/src/repro/sim/mobility.py", "mobility"),
            ("/repo/src/repro/sim/packet.py", "packet"),
            ("/repo/src/repro/protocols/olsr.py", "protocol"),
            ("/repo/src/repro/core/fractions.py", "protocol"),
            ("/repo/src/repro/workloads/cbr.py", "workload"),
            ("/repo/src/repro/metrics/collectors.py", "metrics"),
            ("/repo/src/repro/sim/stats.py", "metrics"),
            ("/usr/lib/python3.11/random.py", "rng"),
            ("~", "builtins"),
            ("/usr/lib/python3.11/json/encoder.py", "other"),
        ],
    )
    def test_layer_of(self, filename, layer):
        assert layer_of(filename) == layer

    def test_windows_separators_are_normalised(self):
        assert layer_of("C:\\repo\\src\\repro\\sim\\mac.py") == "mac"

    def test_eventq_is_its_own_sublayer(self):
        assert layer_of("/repo/src/repro/sim/eventq.py") == "engine.queue"
        assert layer_of("/repo/src/repro/sim/eventq.py", "push") == "engine.queue"

    @pytest.mark.parametrize(
        "name", ["poll", "fire", "draw", "on_idle", "_frozen_attempt", "_defer"]
    )
    def test_mac_timer_machinery_is_its_own_sublayer(self, name):
        assert layer_of("/repo/src/repro/sim/mac.py", name) == "mac.timers"

    def test_mac_frame_handling_stays_in_mac(self):
        assert layer_of("/repo/src/repro/sim/mac.py", "radio_receive") == "mac"
        # Timer names only split inside the MAC file, nowhere else.
        assert layer_of("/repo/src/repro/sim/channel.py", "poll") == "channel"


class TestProfileTrial:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_trial(tiny_scenario(), "SRP", scale_name="tiny")

    def test_layers_cover_the_trial(self, profile):
        assert isinstance(profile, TrialProfile)
        names = [cost.layer for cost in profile.layers]
        assert sorted(names) == sorted(KNOWN_LAYERS)
        assert profile.profiled_seconds > 0
        # The simulation layers, not the harness, dominate.
        busy = {c.layer for c in profile.layers if c.seconds > 0}
        assert {"engine", "mac", "channel", "protocol"} <= busy

    def test_metadata_and_summary(self, profile):
        assert profile.protocol == "SRP"
        assert profile.scale == "tiny"
        assert profile.events_processed > 0
        assert profile.summary.data_sent > 0

    def test_dict_shape_is_json_safe(self, profile):
        data = profile.to_dict()
        json.dumps(data)  # must not raise
        assert data["protocol"] == "SRP"
        assert {layer["layer"] for layer in data["layers"]} == set(KNOWN_LAYERS)
        assert "summary" in data

    def test_text_rendering(self, profile):
        text = profile.to_text()
        assert "Trial profile: SRP" in text
        assert "events/s" in text

    def test_profiled_trial_matches_unprofiled_summary(self):
        """Instrumentation must not change the science."""
        from repro.protocols import protocol_factory
        from repro.sim.network import run_trial

        scenario = tiny_scenario()
        profile = profile_trial(scenario, "AODV", scale_name="tiny")
        plain = run_trial(scenario, protocol_factory("AODV"))
        assert profile.summary == plain

    def test_fast_paths_off_is_recorded(self):
        profile = profile_trial(
            tiny_scenario(), "SRP", scale_name="tiny", fast_paths=FastPaths.none()
        )
        assert profile.fast_paths is False

    def test_allocation_tracking(self):
        profile = profile_trial(
            tiny_scenario(), "SRP", scale_name="tiny", track_allocations=True
        )
        sampled = [c for c in profile.layers if c.allocated_kb is not None]
        assert sampled, "tracemalloc pass recorded no layer allocations"
        assert any(c.allocated_kb > 0 for c in sampled)


class TestProfileCli:
    def test_profile_smoke_json(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--scale",
                "smoke",
                "--protocol",
                "SRP",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["version"] == 1
        assert document["profiles"][0]["protocol"] == "SRP"
        assert document["profiles"][0]["scale"] == "smoke"
        captured = capsys.readouterr()
        assert "Trial profile: SRP" in captured.out

    def test_profile_fast_paths_off(self, capsys):
        from repro.experiments.__main__ import main

        argv = [
            "profile",
            "--scale",
            "smoke",
            "--protocol",
            "SRP",
            "--fast-paths",
            "off",
        ]
        assert main(argv) == 0
        assert "fast paths off" in capsys.readouterr().out

    def test_profile_faulted_frozen_trial(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out = tmp_path / "profile.json"
        argv = [
            "profile",
            "--scale",
            "smoke",
            "--protocol",
            "SRP",
            "--mac",
            "frozen",
            "--queue",
            "calendar",
            "--faults",
            "churn-partition",
            "--json",
            str(out),
        ]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "mac=frozen" in text and "faults=churn-partition" in text
        recorded = json.loads(out.read_text(encoding="utf-8"))["profiles"][0]
        assert recorded["mac_model"] == "frozen"
        assert recorded["event_queue"] == "calendar"
        assert recorded["faults"] == "churn-partition"
        layers = {layer["layer"] for layer in recorded["layers"]}
        assert {"engine.queue", "mac.timers"} <= layers


class TestBenchTrialRecord:
    """benchmarks/bench_trial_profile.py: record shape and the CI check."""

    @pytest.fixture(scope="class")
    def bench(self):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "bench_trial_profile.py"
        )
        spec = importlib.util.spec_from_file_location("bench_trial_profile", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_build_and_merge_record(self, bench):
        record = bench.build_record("smoke", ["SRP"], with_off=True)
        assert record["scale"] == "smoke"
        assert record["event_queue"] == "calendar"
        assert record["mac_model"] == "poll"
        point = record["protocols"]["SRP"]
        assert point["seconds"] > 0 and point["events"] > 0
        assert "off_seconds" in point and "speedup" in point
        document = bench.merge_into_document(None, record)
        assert document["records"]["smoke"] is record
        # Merging another scale keeps the first.
        other = dict(record, scale="paper-tier")
        document = bench.merge_into_document(document, other)
        assert set(document["records"]) == {"smoke", "paper-tier"}

    def test_record_key_appends_non_default_axes(self, bench):
        base = {"scale": "smoke", "event_queue": "calendar", "mac_model": "poll"}
        assert bench.record_key(base) == "smoke"
        assert bench.record_key(dict(base, mac_model="frozen")) == "smoke+frozen"
        assert bench.record_key(dict(base, event_queue="heap")) == "smoke+heap"
        assert (
            bench.record_key(dict(base, event_queue="heap", mac_model="frozen"))
            == "smoke+heap+frozen"
        )
        # Legacy records without the axis fields key by scale alone.
        assert bench.record_key({"scale": "paper-tier"}) == "paper-tier"

    def test_frozen_record_merges_alongside_the_default(self, bench):
        record = bench.build_record("smoke", ["SRP"], mac_model="frozen")
        assert record["mac_model"] == "frozen"
        document = bench.merge_into_document(None, record)
        assert document["records"]["smoke+frozen"] is record
        # A frozen record never overwrites the default baseline...
        default = {
            "scale": "smoke",
            "event_queue": "calendar",
            "mac_model": "poll",
            "commit": None,
            "protocols": {},
        }
        document = bench.merge_into_document(document, default)
        assert set(document["records"]) == {"smoke", "smoke+frozen"}
        # ...and the regression check compares like with like.
        problems = bench.check_against_baseline(
            record, {"records": {"smoke": default}}, 1.5
        )
        assert problems and "smoke+frozen" in problems[0]

    def test_check_against_baseline(self, bench):
        record = {
            "scale": "smoke",
            "protocols": {"SRP": {"seconds": 1.0}, "OLSR": {"seconds": 4.0}},
        }
        baseline = {
            "records": {
                "smoke": {
                    "protocols": {
                        "SRP": {"seconds": 0.9},
                        "OLSR": {"seconds": 1.0},
                    }
                }
            }
        }
        problems = bench.check_against_baseline(record, baseline, 1.5)
        assert len(problems) == 1 and "OLSR" in problems[0]
        assert bench.check_against_baseline(record, baseline, 10.0) == []

    def test_check_requires_matching_scale(self, bench):
        record = {"scale": "paper-tier", "protocols": {}}
        problems = bench.check_against_baseline(
            record, {"records": {"smoke": {}}}, 1.5
        )
        assert problems and "no record" in problems[0]

    def test_cli_check_flags_regression(self, bench, tmp_path, capsys):
        baseline = {
            "version": 1,
            "records": {
                "smoke": {
                    "scale": "smoke",
                    "protocols": {"SRP": {"seconds": 1e-9}},
                }
            },
        }
        path = tmp_path / "BENCH_5.json"
        path.write_text(json.dumps(baseline), encoding="utf-8")
        code = bench.main(
            ["--scale", "smoke", "--protocol", "SRP", "--check", str(path)]
        )
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_smoke_scale_is_a_known_scale(self):
        # The CI job pins --scale smoke; keep the name resolvable.
        assert EvaluationScale.smoke().name == "smoke"


class TestBenchScalingRecord:
    """benchmarks/bench_scaling.py: record keys, update-in-place, corrupt JSON."""

    @pytest.fixture(scope="class")
    def modules(self):
        import importlib.util
        import sys
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        sys.path.insert(0, str(bench_dir))
        try:
            loaded = {}
            for name in ("bench_trial_profile", "bench_scaling"):
                spec = importlib.util.spec_from_file_location(
                    name, bench_dir / f"{name}.py"
                )
                module = importlib.util.module_from_spec(spec)
                spec.loader.exec_module(module)
                loaded[name] = module
            yield loaded["bench_scaling"], loaded["bench_trial_profile"]
        finally:
            sys.path.remove(str(bench_dir))

    @staticmethod
    def _summary():
        class Summary:
            delivery_ratio = 0.95

        return Summary()

    def test_process_record_key_and_host_cpus(self, modules):
        scaling, profile = modules
        record = scaling._scaling_record(
            200, 25.0, "SRP", 2, 1.5, 3000, self._summary(), processes=True
        )
        assert record["engine_backend"] == "proc"
        assert profile.record_key(record) == "scaling200+proc2"
        assert record["host_cpus"] >= 1

    def test_serial_and_sharded_record_keys(self, modules):
        scaling, profile = modules
        serial = scaling._scaling_record(
            200, 25.0, "SRP", 0, 1.5, 3000, self._summary()
        )
        sharded = scaling._scaling_record(
            200, 25.0, "SRP", 4, 1.5, 3000, self._summary()
        )
        assert profile.record_key(serial) == "scaling200"
        assert profile.record_key(sharded) == "scaling200+sharded4"
        assert "host_cpus" not in serial

    def test_remerging_updates_in_place(self, modules):
        scaling, profile = modules
        first = scaling._scaling_record(
            200, 25.0, "SRP", 2, 2.0, 3000, self._summary(), processes=True
        )
        document = profile.merge_into_document(None, first)
        again = scaling._scaling_record(
            200, 25.0, "SRP", 2, 1.0, 3500, self._summary(), processes=True
        )
        document = profile.merge_into_document(document, again)
        # One record per key — regenerating a point replaces it, never
        # appends a duplicate row to the trajectory.
        assert list(document["records"]) == ["scaling200+proc2"]
        merged = document["records"]["scaling200+proc2"]
        assert merged["protocols"]["SRP"]["events"] == 3500

    def test_corrupt_json_fails_loudly(self, modules, tmp_path, capsys):
        scaling, _ = modules
        path = tmp_path / "BENCH_5.json"
        path.write_text("{not json", encoding="utf-8")
        code = scaling.main(
            ["--nodes", "24", "--duration", "2.0", "--json", str(path)]
        )
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err
        # The corrupt file was left for the operator, not clobbered.
        assert path.read_text(encoding="utf-8") == "{not json"
