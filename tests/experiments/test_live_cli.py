"""The ``live`` subcommand: soak, store integration, and the live gate."""

import json

from repro.experiments.__main__ import main
from repro.experiments.gate import live_invariants
from repro.experiments.store import ResultsStore

FAST = ["--time-scale", "0.02", "--duration", "40", "--warmup", "12"]


class TestLiveCommand:
    def test_loopback_soak_stores_results_and_passes_gate(self, tmp_path):
        out = tmp_path / "live-store"
        report_path = tmp_path / "soak.json"
        code = main(
            ["live", "--protocols", "LSR", "AODV", "--out", str(out),
             "--json", str(report_path)] + FAST
        )
        assert code == 0
        store = ResultsStore(out)
        results = store.load_results()
        assert results.protocols == ["LSR", "AODV"]
        for protocol in ("LSR", "AODV"):
            summary = results.summaries[(protocol, 0.0, 0)]
            assert summary.data_sent > 0
            assert summary.delivery_ratio >= 0.9
        document = json.loads(report_path.read_text())
        assert document["transport"] == "loopback"
        for name, entry in document["reports"].items():
            assert entry["violations"] == 0
        assert all(
            outcome["status"] == "pass"
            for outcome in document["gate"]["invariants"]
        )

    def test_unreachable_delivery_floor_fails(self, tmp_path):
        code = main(
            ["live", "--protocols", "LSR", "--delivery-floor", "2.0"] + FAST
        )
        assert code != 0

    def test_unknown_protocol_is_a_usage_error(self):
        assert main(["live", "--protocols", "RIP"] + FAST) == 2

    def test_store_holding_a_different_sweep_is_refused(self, tmp_path):
        out = tmp_path / "store"
        assert main(["live", "--protocols", "LSR", "--out", str(out)] + FAST) == 0
        # Same store, different soak shape -> the sweep-mismatch exit code.
        code = main(
            ["live", "--protocols", "LSR", "--routers", "7", "--out", str(out)]
            + FAST
        )
        assert code == 3

    def test_gate_registry_live_reads_a_stored_soak(self, tmp_path):
        out = tmp_path / "store"
        assert main(["live", "--protocols", "LSR", "--out", str(out)] + FAST) == 0
        assert main(["gate", "--out", str(out), "--registry", "live",
                     "--strict"]) == 0


class TestLiveInvariants:
    def test_registry_defaults_cover_the_soakable_protocols(self):
        invariants = live_invariants()
        names = {invariant.name for invariant in invariants}
        assert "live-delivery-floor" in names
        floor = next(
            i for i in invariants if i.name == "live-delivery-floor"
        )
        assert "Oracle" not in floor.protocols
        assert "LSR" in floor.protocols

    def test_floor_is_parameterised(self):
        floor = next(
            i
            for i in live_invariants(("LSR",), delivery_floor=0.9)
            if i.name == "live-delivery-floor"
        )
        assert floor.lower == 0.9
        assert floor.protocols == ("LSR",)
