"""Round-trip tests for the sweep engine's serialization layer.

The resumable store and the ``results.json`` archive both depend on three
round-trips being lossless: :class:`TrialSummary` <-> dict,
:class:`Scenario` <-> dict (phy config included, since it determines trial
outcomes) and :class:`SweepResults` <-> JSON.  Content keys additionally must
be stable across processes and sensitive to every result-determining field.
"""

import dataclasses

import pytest

from repro.experiments import SweepResults, TrialJob, plan_sweep
from repro.sim.phy import PhyConfig
from repro.sim.stats import TrialSummary
from repro.workloads.scenario import PAPER_SCENARIO, Scenario, scaled_scenario

SUMMARY = TrialSummary(
    data_sent=120,
    data_delivered=97,
    control_transmissions=431,
    mean_latency=0.0734,
    mac_drops_per_node=2.25,
    average_sequence_number=3.5,
    duplicate_deliveries=4,
)


class TestTrialSummaryRoundTrip:
    def test_round_trip_is_identity(self):
        assert TrialSummary.from_dict(SUMMARY.to_dict()) == SUMMARY

    def test_derived_properties_survive(self):
        restored = TrialSummary.from_dict(SUMMARY.to_dict())
        assert restored.delivery_ratio == SUMMARY.delivery_ratio
        assert restored.network_load == SUMMARY.network_load

    def test_dict_is_json_safe_and_complete(self):
        import json

        data = json.loads(json.dumps(SUMMARY.to_dict()))
        assert TrialSummary.from_dict(data) == SUMMARY

    def test_unknown_keys_are_ignored(self):
        data = SUMMARY.to_dict()
        data["future_field"] = 99
        assert TrialSummary.from_dict(data) == SUMMARY

    def test_missing_field_raises(self):
        data = SUMMARY.to_dict()
        del data["data_sent"]
        with pytest.raises(ValueError, match="data_sent"):
            TrialSummary.from_dict(data)


class TestScenarioRoundTrip:
    def test_paper_scenario_round_trips(self):
        assert Scenario.from_dict(PAPER_SCENARIO.to_dict()) == PAPER_SCENARIO

    def test_custom_phy_round_trips(self):
        scenario = dataclasses.replace(
            scaled_scenario(node_count=12, seed=9),
            phy=PhyConfig(reception_range=180.0, retry_limit=6),
        )
        restored = Scenario.from_dict(scenario.to_dict())
        assert restored == scenario
        assert restored.phy.reception_range == 180.0

    def test_unknown_field_raises(self):
        data = PAPER_SCENARIO.to_dict()
        data["gravity"] = 9.81
        with pytest.raises(ValueError, match="gravity"):
            Scenario.from_dict(data)


class TestTrialJobKeys:
    def _job(self, **overrides) -> TrialJob:
        base = dict(
            protocol="SRP",
            scenario=scaled_scenario(node_count=12, seed=3),
            pause_time=10.0,
            trial=0,
            seed=3,
        )
        base.update(overrides)
        return TrialJob(**base)

    def test_round_trip_is_identity(self):
        job = self._job()
        assert TrialJob.from_dict(job.to_dict()) == job

    def test_content_key_is_deterministic(self):
        assert self._job().content_key == self._job().content_key

    def test_content_key_changes_with_every_determining_field(self):
        base = self._job()
        variants = [
            self._job(protocol="AODV"),
            self._job(pause_time=20.0),
            self._job(trial=1, seed=4),
            self._job(scenario=scaled_scenario(node_count=14, seed=3)),
            self._job(
                scenario=dataclasses.replace(
                    base.scenario, phy=PhyConfig(reception_range=200.0)
                )
            ),
        ]
        keys = {base.content_key} | {v.content_key for v in variants}
        assert len(keys) == len(variants) + 1

    def test_planned_jobs_have_unique_keys(self):
        jobs = plan_sweep(
            scaled_scenario(node_count=12),
            ["SRP", "AODV"],
            pause_times=(0.0, 10.0),
            trials=2,
        )
        assert len({job.content_key for job in jobs}) == len(jobs)


class TestSweepResultsJson:
    def _results(self) -> SweepResults:
        results = SweepResults(
            pause_times=[0.0, 10.0], trials=1, protocols=["SRP", "AODV"]
        )
        for protocol in results.protocols:
            for pause in results.pause_times:
                results.add(
                    protocol,
                    pause,
                    0,
                    dataclasses.replace(
                        SUMMARY, data_sent=SUMMARY.data_sent + int(pause)
                    ),
                )
        return results

    def test_round_trip_is_identity(self):
        results = self._results()
        restored = SweepResults.from_json(results.to_json())
        assert restored.summaries == results.summaries
        assert list(restored.pause_times) == list(results.pause_times)
        assert list(restored.protocols) == list(results.protocols)
        assert restored.trials == results.trials

    def test_metric_queries_survive(self):
        restored = SweepResults.from_json(self._results().to_json())
        values = restored.metric_values("SRP", "delivery_ratio", 0.0)
        assert values == [SUMMARY.delivery_ratio]

    def test_unsupported_version_raises(self):
        import json

        data = json.loads(self._results().to_json())
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            SweepResults.from_json(json.dumps(data))
