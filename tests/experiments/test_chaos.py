"""Crash-safe sweep execution: watchdog, retries, quarantine, recovery.

The harness half of PR 6's chaos layer.  Trial-level faults (exceptions,
hangs) are injected through the ``REPRO_RUN_HOOK`` seam or direct ``run=``
overrides; worker-process deaths through ``chaos_hooks`` SIGKILLing pool
workers.  The properties under test: a failing cell is quarantined with a
structured :class:`FailureRecord` while the rest of the sweep completes
byte-identically, ``run`` exits 4 when quarantined cells remain, ``resume``
retries exactly those cells, and a distributed worker releases — never
orphans — the lease of a cell it quarantines.
"""

import pytest

from repro.experiments.__main__ import main
from repro.experiments.executor import (
    FaultPolicy,
    ProcessPoolBackend,
    SerialBackend,
    TrialHang,
    _pool_run_job,
    execute_jobs,
    resolve_run_hook,
    run_job,
    run_job_guarded,
)
from repro.experiments.distributed import DistributedBackend
from repro.experiments.jobs import plan_sweep
from repro.experiments.store import FailureRecord, ResultsStore
from repro.workloads.scenario import scaled_scenario

HOOKS = "tests.experiments.chaos_hooks"


def tiny_jobs(protocols=("SRP", "AODV")):
    base = scaled_scenario(node_count=4, flow_count=1, duration=2.0, seed=7)
    return plan_sweep(base, protocols, pause_times=[0.0], trials=1)


def _boom(job):
    raise RuntimeError("boom")


def _label_crash(job):
    if job.protocol == "AODV":
        raise RuntimeError("boom")
    return run_job(job)


class TestFaultPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FaultPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff=-0.1)


class TestRunHook:
    def test_default_is_run_job(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_HOOK", raising=False)
        assert resolve_run_hook() is run_job

    def test_env_resolves_module_function(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_HOOK", f"{HOOKS}:chaos_cell")
        hook = resolve_run_hook()
        assert hook.__name__ == "chaos_cell"

    def test_malformed_spec_is_rejected(self):
        with pytest.raises(ValueError, match="module:function"):
            resolve_run_hook("no-colon-here")


class TestRunJobGuarded:
    def test_watchdog_converts_hang_to_failure(self):
        import time as time_module

        job = tiny_jobs()[0]
        summary, failure = run_job_guarded(
            job,
            policy=FaultPolicy(timeout=0.2),
            run=lambda j: time_module.sleep(60.0),
        )
        assert summary is None
        assert failure.error == "TrialHang"
        assert failure.key == job.content_key

    def test_retry_backoff_sequence_then_quarantine(self):
        job = tiny_jobs()[0]
        slept = []
        summary, failure = run_job_guarded(
            job,
            policy=FaultPolicy(retries=2, backoff=0.5),
            run=_boom,
            sleep=slept.append,
            clock=lambda: 123.0,
        )
        assert summary is None
        assert slept == [0.5, 1.0]  # exponential: backoff * 2**(k-1)
        assert failure.attempts == 3
        assert failure.error == "RuntimeError"
        assert failure.recorded_at == 123.0
        assert failure.cell == job.cell_dict()
        assert "boom" in failure.traceback

    def test_transient_failure_recovers_within_retries(self):
        job = tiny_jobs()[0]
        attempts = []

        def flaky(j):
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("transient")
            return run_job(j)

        summary, failure = run_job_guarded(
            job,
            policy=FaultPolicy(retries=2, backoff=0.0),
            run=flaky,
        )
        assert failure is None
        assert summary is not None
        assert len(attempts) == 2

    def test_keyboard_interrupt_propagates(self):
        def interrupt(job):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_job_guarded(
                tiny_jobs()[0], policy=FaultPolicy(retries=5), run=interrupt
            )


class TestPoolWrapperTagsErrors:
    def test_pool_run_job_returns_failure_not_exception(self, monkeypatch):
        """One bad cell must never abort a pool's whole run_pending pass."""
        monkeypatch.setenv("REPRO_CHAOS_CRASH", "SRP:0:0")
        job, summary, failure = _pool_run_job(
            tiny_jobs(("SRP",))[0], FaultPolicy(), f"{HOOKS}:chaos_cell"
        )
        assert summary is None
        assert failure.error == "RuntimeError"
        assert "injected crash" in failure.message


class TestStoreQuarantine:
    def test_failure_record_round_trips(self, tmp_path):
        store = ResultsStore(tmp_path)
        record = FailureRecord(
            key="abc123",
            error="RuntimeError",
            message="boom",
            attempts=2,
            cell={"protocol": "SRP"},
            worker="w1",
            elapsed=1.5,
            recorded_at=10.0,
            traceback="tb",
        )
        store.put_failure(record)
        assert store.failure_keys() == ["abc123"]
        assert store.get_failure("abc123") == record
        assert store.failure_records() == {"abc123": record}
        store.clear_failure("abc123")
        assert store.failure_keys() == []
        assert store.get_failure("abc123") is None

    def test_successful_put_supersedes_quarantine(self, tmp_path):
        store = ResultsStore(tmp_path)
        job = tiny_jobs(("SRP",))[0]
        store.put_failure(
            FailureRecord(
                key=job.content_key, error="X", message="m", attempts=1
            )
        )
        store.put(job, run_job(job))
        assert store.failure_keys() == []

    def test_from_dict_tolerates_missing_optionals(self):
        record = FailureRecord.from_dict(
            {"key": "k", "error": "E", "message": "m", "attempts": 1}
        )
        assert record.worker is None
        assert record.traceback == ""


class TestSerialQuarantine:
    def test_failing_cell_quarantined_others_complete(self, tmp_path):
        store = ResultsStore(tmp_path)
        jobs = tiny_jobs()
        events = []
        outcomes = execute_jobs(
            jobs,
            store=store,
            backend=SerialBackend(policy=FaultPolicy(), run=_label_crash),
            progress=events.append,
        )
        assert sorted(j.protocol for j in outcomes) == ["SRP"]
        assert len(store.failure_keys()) == 1
        failed_events = [e for e in events if e.failed]
        assert len(failed_events) == 1
        assert failed_events[0].job.protocol == "AODV"

    def test_resume_retries_quarantined_cells(self, tmp_path):
        store = ResultsStore(tmp_path)
        jobs = tiny_jobs()
        execute_jobs(
            jobs,
            store=store,
            backend=SerialBackend(policy=FaultPolicy(), run=_label_crash),
        )
        assert store.failure_keys()
        # Second pass without the fault: the quarantined cell re-runs (it is
        # missing from the store) and its failure record is cleared.
        outcomes = execute_jobs(jobs, store=store)
        assert len(outcomes) == len(jobs)
        assert store.failure_keys() == []


class TestProcessPoolChaos:
    def test_worker_killed_once_pool_rebuilds_and_completes(
        self, tmp_path, monkeypatch
    ):
        state = tmp_path / "state"
        state.mkdir()
        monkeypatch.setenv("REPRO_CHAOS_STATE", str(state))
        monkeypatch.setenv("REPRO_CHAOS_KILL", "AODV:0:0")
        store = ResultsStore(tmp_path / "store")
        jobs = tiny_jobs()
        outcomes = execute_jobs(
            jobs,
            store=store,
            backend=ProcessPoolBackend(
                2, run_spec=f"{HOOKS}:kill_worker_once"
            ),
        )
        # The SIGKILL broke the first pool; the rebuilt pool (tombstone set)
        # completed every cell — transient worker death costs no quarantine.
        assert len(outcomes) == len(jobs)
        assert store.failure_keys() == []

    def test_worker_killed_always_quarantines_exactly_that_cell(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS_KILL", "AODV:0:0")
        store = ResultsStore(tmp_path / "store")
        jobs = tiny_jobs()
        outcomes = execute_jobs(
            jobs,
            store=store,
            backend=ProcessPoolBackend(2, run_spec=f"{HOOKS}:chaos_cell"),
        )
        assert sorted(j.protocol for j in outcomes) == ["SRP"]
        records = store.failure_records()
        assert len(records) == 1
        (record,) = records.values()
        assert record.error == "WorkerCrashed"
        assert record.cell["protocol"] == "AODV"


class TestDistributedQuarantine:
    def test_quarantine_releases_lease(self, tmp_path):
        store = ResultsStore(tmp_path)
        jobs = tiny_jobs()
        backend = DistributedBackend(
            "w1", poll_interval=0.01, run=_label_crash, policy=FaultPolicy()
        )
        events = []
        outcomes = execute_jobs(
            jobs, store=store, backend=backend, progress=events.append
        )
        assert sorted(j.protocol for j in outcomes) == ["SRP"]
        assert len(store.failure_keys()) == 1
        # The quarantined cell's lease was released, not left to go stale.
        assert store.claims() == {}
        assert any(e.failed and e.worker == "w1" for e in events)

    def test_peer_adopts_fresh_failure_instead_of_rerunning(self, tmp_path):
        store = ResultsStore(tmp_path)
        jobs = tiny_jobs()
        DistributedBackend(
            "w1", poll_interval=0.01, run=_label_crash, policy=FaultPolicy()
        ).run_pending(jobs, store=store, report=lambda *a, **k: None)

        def must_not_run(job):
            raise AssertionError("peer re-ran a freshly quarantined cell")

        events = []

        def report(job, **kwargs):
            events.append((job.protocol, kwargs))

        w2 = DistributedBackend("w2", poll_interval=0.01, run=must_not_run)
        # w2 sees SRP complete (adopts from store) and AODV freshly
        # quarantined (adopts the failure); it runs nothing itself.
        outcomes = w2.run_pending(jobs, store=store, report=report)
        assert sorted(j.protocol for j in outcomes) == ["SRP"]
        assert ("AODV", {"cached": False, "worker": "w2", "failed": True}) in [
            (p, k) for p, k in events
        ]

    def test_stale_failure_from_previous_run_is_retried(self, tmp_path):
        store = ResultsStore(tmp_path)
        jobs = tiny_jobs(("SRP",))
        job = jobs[0]
        # A quarantine record far in the past (a previous run's).
        store.put_failure(
            FailureRecord(
                key=job.content_key,
                error="RuntimeError",
                message="old",
                attempts=1,
                recorded_at=0.0,
            )
        )
        backend = DistributedBackend(
            "w1",
            poll_interval=0.01,
            lease_ttl=60.0,
            clock=lambda: 10_000.0,
        )
        outcomes = backend.run_pending(
            jobs, store=store, report=lambda *a, **k: None
        )
        assert len(outcomes) == 1
        # Success cleared the stale quarantine.
        assert store.failure_keys() == []


class TestCliChaos:
    """The ISSUE's acceptance run: crash one cell, hang another, exit 4,
    every other cell byte-identical to a clean serial store, resume heals."""

    def test_run_exits_4_with_quarantine_then_resume_heals(
        self, tmp_path, monkeypatch, capsys
    ):
        clean = tmp_path / "clean"
        chaos = tmp_path / "chaos"
        args = ["--scale", "smoke", "--protocols", "SRP", "AODV", "DSR"]
        assert main(["run", *args, "--out", str(clean), "--quiet"]) == 0

        monkeypatch.setenv("REPRO_RUN_HOOK", f"{HOOKS}:chaos_cell")
        monkeypatch.setenv("REPRO_CHAOS_CRASH", "AODV:0:0")
        monkeypatch.setenv("REPRO_CHAOS_HANG", "DSR:0:0")
        rc = main(
            [
                "run",
                *args,
                "--out",
                str(chaos),
                "--quiet",
                "--trial-timeout",
                "1.0",
                "--retries",
                "0",
            ]
        )
        assert rc == 4
        err = capsys.readouterr().err
        assert "quarantined" in err

        store = ResultsStore(chaos)
        records = store.failure_records()
        assert sorted(r.error for r in records.values()) == [
            "RuntimeError",
            "TrialHang",
        ]
        # Byte-identity: every completed chaos cell equals the clean cell.
        clean_cells = {
            p.name: p.read_bytes() for p in (clean / "jobs").glob("*.json")
        }
        chaos_cells = {
            p.name: p.read_bytes() for p in (chaos / "jobs").glob("*.json")
        }
        assert len(chaos_cells) == len(clean_cells) - 2
        assert all(
            chaos_cells[name] == clean_cells[name] for name in chaos_cells
        )

        # `status` surfaces the quarantine.
        assert main(["status", "--out", str(chaos)]) == 0
        assert "quarantined cells: 2" in capsys.readouterr().out

        # Resume without the chaos hook: retries exactly the two cells.
        monkeypatch.delenv("REPRO_RUN_HOOK")
        assert main(["resume", "--out", str(chaos), "--quiet"]) == 0
        assert ResultsStore(chaos).failure_keys() == []
        final = {
            p.name: p.read_bytes() for p in (chaos / "jobs").glob("*.json")
        }
        assert final == clean_cells

    def test_faulted_sweep_never_mixes_with_clean_store(self, tmp_path):
        out = tmp_path / "store"
        args = ["--scale", "smoke", "--protocols", "SRP", "--quiet"]
        assert main(["run", *args, "--out", str(out)]) == 0
        # Same store, now with faults: different content keys -> exit 3.
        rc = main(
            ["run", *args, "--out", str(out), "--faults", "churn-partition"]
        )
        assert rc == 3

    def test_faulted_smoke_sweep_passes_fault_gate(self, tmp_path):
        out = tmp_path / "store"
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "smoke",
                    "--out",
                    str(out),
                    "--quiet",
                    "--faults",
                    "churn-partition",
                ]
            )
            == 0
        )
        assert main(["gate", "--out", str(out), "--registry", "faults"]) == 0

    def test_gate_list_respects_registry(self, capsys):
        assert main(["gate", "--list", "--registry", "faults"]) == 0
        out = capsys.readouterr().out
        assert "post-heal-delivery-recovers" in out
        assert "srp-seqno-zero-under-churn" in out
