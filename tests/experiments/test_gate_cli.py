"""End-to-end tests of the science-gate CLI surface.

One real smoke-scale sweep (all five protocols, seconds of wall clock) backs
the whole module: ``gate`` must pass it, a hand-corrupted copy must fail
naming the violated invariant, ``merge`` must reassemble a split copy, and
``trajectory`` must render sparklines across stores — the acceptance path the
CI jobs exercise nightly.
"""

import json
import shutil

import pytest

from repro.experiments import ResultsStore
from repro.experiments.__main__ import main


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("gate-cli") / "sweep-smoke"
    code = main(
        ["run", "--scale", "smoke", "--jobs", "2", "--out", str(out), "--quiet"]
    )
    assert code == 0
    return out


class TestGateCommand:
    def test_completed_smoke_store_passes(self, store_dir, capsys):
        code = main(["gate", "--out", str(store_dir), "--scale", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert "0 failed" in out

    def test_json_report_is_written(self, store_dir, tmp_path, capsys):
        report_path = tmp_path / "gate.json"
        code = main(
            ["gate", "--out", str(store_dir), "--json", str(report_path)]
        )
        assert code == 0
        data = json.loads(report_path.read_text(encoding="utf-8"))
        assert data["failed"] == 0
        assert data["completed_cells"] == data["planned_cells"]

    def test_corrupted_cell_fails_naming_the_invariant(
        self, store_dir, tmp_path, capsys
    ):
        corrupt_dir = tmp_path / "corrupt"
        shutil.copytree(store_dir, corrupt_dir)
        store = ResultsStore(corrupt_dir)
        victim = next(
            job for job in store.planned_jobs() if job.protocol == "SRP"
        )
        cell_path = store.jobs_dir / f"{victim.content_key}.json"
        cell = json.loads(cell_path.read_text(encoding="utf-8"))
        cell["summary"]["average_sequence_number"] = 7.0
        cell_path.write_text(json.dumps(cell), encoding="utf-8")

        code = main(["gate", "--out", str(corrupt_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "srp-sequence-numbers-zero" in out
        assert "VIOLATED" in out

    def test_partial_store_is_reported_and_strict_fails_it(
        self, store_dir, tmp_path, capsys
    ):
        partial_dir = tmp_path / "partial"
        shutil.copytree(store_dir, partial_dir)
        store = ResultsStore(partial_dir)
        victim = store.planned_jobs()[0]
        (store.jobs_dir / f"{victim.content_key}.json").unlink()

        assert main(["gate", "--out", str(partial_dir)]) == 0
        capsys.readouterr()
        assert main(["gate", "--out", str(partial_dir), "--strict"]) == 1
        assert "INCONCLUSIVE" in capsys.readouterr().out

    def test_scale_mismatch_is_a_usage_error(self, store_dir, capsys):
        code = main(["gate", "--out", str(store_dir), "--scale", "paper"])
        assert code == 2
        assert "holds a 'smoke' sweep" in capsys.readouterr().err

    def test_missing_store_is_a_usage_error(self, tmp_path, capsys):
        code = main(["gate", "--out", str(tmp_path / "nowhere")])
        assert code == 2
        assert "not a sweep results store" in capsys.readouterr().err

    def test_list_needs_no_store(self, capsys):
        code = main(["gate", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "srp-sequence-numbers-zero" in out
        assert "Fig. 7" in out


class TestGateUnion:
    """``gate --union``: assert over several per-worker stores as one sweep."""

    @pytest.fixture()
    def halves(self, store_dir, tmp_path):
        source = ResultsStore(store_dir)
        split = []
        for name in ("worker-a", "worker-b"):
            half = ResultsStore(tmp_path / name)
            half.adopt_meta(source.require_meta())
            split.append(half)
        for index, job in enumerate(source.planned_jobs()):
            split[index % 2].put(job, source.get(job))
        return split

    def test_union_of_partial_stores_passes_strict(self, halves, capsys):
        first, second = halves
        # Alone, each half caps the invariants at inconclusive...
        assert main(["gate", "--out", str(first.root), "--strict"]) == 1
        capsys.readouterr()
        # ...their union is the complete sweep and passes outright, with no
        # merged directory materialised.
        code = main(
            [
                "gate",
                "--out",
                str(first.root),
                "--union",
                str(second.root),
                "--strict",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failed" in out
        assert not (first.root.parent / "merged").exists()

    def test_union_of_a_different_sweep_is_rejected(
        self, store_dir, tmp_path, capsys
    ):
        foreign = tmp_path / "foreign"
        assert (
            main(
                ["run", "--scale", "smoke", "--trials", "2", "--jobs", "2",
                 "--out", str(foreign), "--quiet", "--protocols", "SRP"]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["gate", "--out", str(store_dir), "--union", str(foreign)]
        )
        assert code == 2
        assert "different sweeps" in capsys.readouterr().err


class TestMergeCommand:
    def test_split_store_reassembles(self, store_dir, tmp_path, capsys):
        source = ResultsStore(store_dir)
        halves = []
        for name in ("half-a", "half-b"):
            half = ResultsStore(tmp_path / name)
            half.adopt_meta(source.require_meta())
            halves.append(half)
        for index, job in enumerate(source.planned_jobs()):
            halves[index % 2].put(job, source.get(job))

        merged = tmp_path / "merged"
        code = main(
            ["merge", "--out", str(merged)]
            + [str(half.root) for half in halves]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(complete)" in out
        # The merged store passes the same gate as the original.
        assert main(["gate", "--out", str(merged)]) == 0

    def test_mismatched_source_is_rejected(self, store_dir, tmp_path, capsys):
        foreign = tmp_path / "foreign"
        code = main(
            ["run", "--scale", "smoke", "--trials", "2", "--jobs", "2",
             "--out", str(foreign), "--quiet", "--protocols", "SRP"]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            ["merge", "--out", str(tmp_path / "m"), str(store_dir), str(foreign)]
        )
        assert code == 2
        assert "different sweeps" in capsys.readouterr().err


class TestTrajectoryCommand:
    def test_sparklines_and_json_across_stores(
        self, store_dir, tmp_path, capsys
    ):
        json_path = tmp_path / "trajectory.json"
        code = main(
            [
                "trajectory",
                str(store_dir),
                str(store_dir),
                "--experiment",
                "fig7",
                "--json",
                str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 7" in out
        assert "▁▁" in out  # two identical runs -> flat sparkline
        data = json.loads(json_path.read_text(encoding="utf-8"))
        assert [p["label"] for p in data["fig7"]["protocols"]["SRP"]] == [
            "sweep-smoke",
            "sweep-smoke",
        ]

    def test_missing_store_is_a_usage_error(self, tmp_path, capsys):
        code = main(["trajectory", str(tmp_path / "nowhere")])
        assert code == 2
        assert "not a sweep results store" in capsys.readouterr().err
