"""Unit tests for the science gate's invariant engine.

Every invariant type is driven with hand-built :class:`SweepResults` so each
verdict — pass, fail, and the deliberately distinct *inconclusive* for partial
stores and statistically tied comparisons — is pinned down without running a
single simulation.
"""

from typing import Dict, Tuple

import pytest

from repro.experiments import (
    BoundInvariant,
    ExactInvariant,
    OrderingInvariant,
    SweepResults,
    evaluate_gate,
    paper_invariants,
)
from repro.experiments.gate import FAIL, INCONCLUSIVE, PASS
from repro.sim.stats import TrialSummary


def summary(
    *,
    delivery: float = 1.0,
    load: float = 0.5,
    latency: float = 0.01,
    drops: float = 0.0,
    seqno: float = 0.0,
) -> TrialSummary:
    """A synthetic trial summary with the paper metrics set directly."""
    sent = 1000
    delivered = round(delivery * sent)
    return TrialSummary(
        data_sent=sent,
        data_delivered=delivered,
        control_transmissions=round(load * delivered),
        mean_latency=latency,
        mac_drops_per_node=drops,
        average_sequence_number=seqno,
        duplicate_deliveries=0,
    )


def make_results(
    cells: Dict[Tuple[str, float, int], TrialSummary],
    *,
    pause_times=(0.0, 30.0),
    trials: int = 2,
    protocols=("SRP", "OLSR"),
) -> SweepResults:
    results = SweepResults(
        pause_times=list(pause_times), trials=trials, protocols=list(protocols)
    )
    for (protocol, pause, trial), cell_summary in cells.items():
        results.add(protocol, pause, trial, cell_summary)
    return results


def full_results(per_protocol, **kwargs) -> SweepResults:
    """Complete results: ``per_protocol[name]`` is a summary factory taking
    (pause, trial), applied to every cell of the sweep."""
    pause_times = kwargs.get("pause_times", (0.0, 30.0))
    trials = kwargs.get("trials", 2)
    cells = {
        (protocol, pause, trial): factory(pause, trial)
        for protocol, factory in per_protocol.items()
        for pause in pause_times
        for trial in range(trials)
    }
    return make_results(
        cells, protocols=list(per_protocol), **kwargs
    )


def ordering(**overrides) -> OrderingInvariant:
    defaults = dict(
        name="olsr-above-srp",
        figure="Fig. 5",
        claim="OLSR load above SRP",
        metric="network_load",
        greater="OLSR",
        lesser="SRP",
    )
    defaults.update(overrides)
    return OrderingInvariant(**defaults)


class TestOrderingInvariant:
    def test_clear_separation_passes(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(load=0.5 + 0.01 * t),
                "OLSR": lambda p, t: summary(load=6.0 + 0.01 * t),
            }
        )
        outcome = ordering(require_separation=True).evaluate(results)
        assert outcome.status == PASS

    def test_significant_reversal_fails(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(load=6.0 + 0.01 * t),
                "OLSR": lambda p, t: summary(load=0.5 + 0.01 * t),
            }
        )
        outcome = ordering().evaluate(results)
        assert outcome.status == FAIL
        assert any("ordering reversed" in detail for detail in outcome.details)

    def test_reversal_at_one_pause_is_named(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(
                    load=(9.0 if p == 30.0 else 0.5) + 0.01 * t
                ),
                "OLSR": lambda p, t: summary(load=6.0 + 0.01 * t),
            }
        )
        outcome = ordering().evaluate(results)
        assert outcome.status == FAIL
        assert any(
            "pause 30" in detail and "reversed" in detail
            for detail in outcome.details
        )

    def test_overlap_passes_a_matches_claim(self):
        # Wide within-protocol spread -> overlapping intervals.
        results = full_results(
            {
                "SRP": lambda p, t: summary(load=0.5 + 3.0 * t),
                "OLSR": lambda p, t: summary(load=0.6 + 3.0 * t),
            }
        )
        assert ordering().evaluate(results).status == PASS

    def test_overlap_is_inconclusive_for_a_dominance_claim(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(load=0.5 + 3.0 * t),
                "OLSR": lambda p, t: summary(load=0.6 + 3.0 * t),
            }
        )
        outcome = ordering(require_separation=True).evaluate(results)
        assert outcome.status == INCONCLUSIVE
        assert any("overlap" in detail for detail in outcome.details)

    def test_tolerance_absorbs_a_tiny_reversal(self):
        # Single trial -> zero-width intervals: every difference is
        # "significant", which is exactly what the tolerance is for.
        results = full_results(
            {
                "SRP": lambda p, t: summary(load=0.510),
                "OLSR": lambda p, t: summary(load=0.500),
            },
            trials=1,
        )
        assert ordering().evaluate(results).status == FAIL
        assert ordering(tolerance=0.02).evaluate(results).status == PASS

    def test_rel_tolerance_scales_with_the_metric(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(latency=0.014),
                "OLSR": lambda p, t: summary(latency=0.010),
            },
            trials=1,
        )
        lenient = ordering(metric="latency", rel_tolerance=0.5)
        strict = ordering(metric="latency")
        assert strict.evaluate(results).status == FAIL
        assert lenient.evaluate(results).status == PASS

    def test_partial_store_is_inconclusive_not_pass(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(load=0.5),
                "OLSR": lambda p, t: summary(load=6.0),
            }
        )
        del results.summaries[("OLSR", 30.0, 1)]
        outcome = ordering().evaluate(results)
        assert outcome.status == INCONCLUSIVE

    def test_missing_protocol_is_inconclusive(self):
        results = full_results({"SRP": lambda p, t: summary(load=0.5)})
        outcome = ordering().evaluate(results)
        assert outcome.status == INCONCLUSIVE
        assert any("no stored trials for OLSR" in d for d in outcome.details)

    def test_first_pause_only_ignores_later_pauses(self):
        # Reversed everywhere except pause 0; a first-pause-only claim passes.
        results = full_results(
            {
                "SRP": lambda p, t: summary(load=0.5 if p == 0.0 else 9.0),
                "OLSR": lambda p, t: summary(load=6.0),
            }
        )
        assert ordering(first_pause_only=True).evaluate(results).status == PASS
        assert ordering().evaluate(results).status == FAIL

    def test_pooled_compares_averages_over_all_pauses(self):
        # Per-pause: SRP is tightly above OLSR at pause 0 -> that pause fails.
        # Pooled: the pause-0 spike widens SRP's interval into overlap -> tie.
        results = full_results(
            {
                "SRP": lambda p, t: summary(
                    latency=0.100 if p == 0.0 else 0.010
                ),
                "OLSR": lambda p, t: summary(latency=0.015 + 0.001 * t),
            }
        )
        per_pause = ordering(metric="latency")
        pooled = ordering(metric="latency", pooled=True)
        assert per_pause.evaluate(results).status == FAIL
        assert pooled.evaluate(results).status == PASS
        assert "all pauses" in pooled.evaluate(results).details[0]


class TestBoundInvariant:
    def bound(self, **overrides) -> BoundInvariant:
        defaults = dict(
            name="delivery-bounded",
            figure="Fig. 4",
            claim="ratios are fractions",
            metric="delivery_ratio",
            protocols=("SRP", "OLSR"),
            lower=0.0,
            upper=1.0,
        )
        defaults.update(overrides)
        return BoundInvariant(**defaults)

    def test_in_bounds_passes(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(delivery=0.99),
                "OLSR": lambda p, t: summary(delivery=0.95),
            }
        )
        assert self.bound().evaluate(results).status == PASS

    def test_violation_fails_naming_the_cell(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(delivery=0.99),
                "OLSR": lambda p, t: summary(
                    delivery=1.2 if p == 30.0 else 0.95
                ),
            }
        )
        outcome = self.bound().evaluate(results)
        assert outcome.status == FAIL
        assert any(
            "OLSR" in detail and "pause 30" in detail
            for detail in outcome.details
        )

    def test_partial_store_is_inconclusive_not_pass(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(delivery=0.99),
                "OLSR": lambda p, t: summary(delivery=0.95),
            }
        )
        del results.summaries[("SRP", 0.0, 0)]
        assert self.bound().evaluate(results).status == INCONCLUSIVE

    def test_empty_store_is_inconclusive(self):
        results = make_results({})
        assert self.bound().evaluate(results).status == INCONCLUSIVE

    def test_one_sided_bound(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(seqno=-1.0),
                "OLSR": lambda p, t: summary(seqno=0.0),
            }
        )
        lower_only = self.bound(
            metric="sequence_number", lower=0.0, upper=None
        )
        assert lower_only.evaluate(results).status == FAIL


class TestExactInvariant:
    def exact(self, **overrides) -> ExactInvariant:
        defaults = dict(
            name="srp-seqno-zero",
            figure="Fig. 7",
            claim="SRP never uses a sequence number",
            metric="sequence_number",
            protocol="SRP",
            expected=0.0,
        )
        defaults.update(overrides)
        return ExactInvariant(**defaults)

    def test_all_zero_passes(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(seqno=0.0),
                "OLSR": lambda p, t: summary(seqno=5.0),  # other protocols free
            }
        )
        assert self.exact().evaluate(results).status == PASS

    def test_single_nonzero_cell_fails_naming_pause_and_trial(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(
                    seqno=3.0 if (p, t) == (30.0, 1) else 0.0
                ),
                "OLSR": lambda p, t: summary(seqno=0.0),
            }
        )
        outcome = self.exact().evaluate(results)
        assert outcome.status == FAIL
        assert any(
            "pause 30" in detail and "trial 1" in detail
            for detail in outcome.details
        )

    def test_partial_store_is_inconclusive_not_pass(self):
        results = full_results(
            {
                "SRP": lambda p, t: summary(seqno=0.0),
                "OLSR": lambda p, t: summary(seqno=0.0),
            }
        )
        del results.summaries[("SRP", 30.0, 1)]
        outcome = self.exact().evaluate(results)
        assert outcome.status == INCONCLUSIVE
        assert any("3/4 cells" in detail for detail in outcome.details)


class TestPaperRegistry:
    def test_registry_shape(self):
        registry = paper_invariants()
        names = [invariant.name for invariant in registry]
        assert len(names) == len(set(names)), "invariant names must be unique"
        assert len(registry) >= 10
        for invariant in registry:
            assert invariant.figure
            assert invariant.claim

    def test_flagship_invariants_registered(self):
        names = {invariant.name for invariant in paper_invariants()}
        assert "srp-sequence-numbers-zero" in names
        assert "olsr-load-above-srp" in names
        assert "srp-delivery-no-worse-than-dsr" in names


class TestEvaluateGate:
    def healthy_results(self) -> SweepResults:
        return full_results(
            {
                "SRP": lambda p, t: summary(
                    delivery=0.99, load=0.5, latency=0.010, seqno=0.0
                ),
                "LDR": lambda p, t: summary(
                    delivery=0.99, load=0.6, latency=0.010, seqno=0.1
                ),
                "AODV": lambda p, t: summary(
                    delivery=0.99, load=0.6, latency=0.010, seqno=1.0
                ),
                "DSR": lambda p, t: summary(
                    delivery=0.95, load=0.4, latency=0.010, seqno=0.0
                ),
                "OLSR": lambda p, t: summary(
                    delivery=0.98, load=6.0 + 0.01 * t, latency=0.040, seqno=0.0
                ),
            }
        )

    def test_healthy_sweep_passes_every_invariant(self):
        report = evaluate_gate(self.healthy_results())
        assert not report.failed
        assert report.exit_code() == 0

    def test_corrupted_seqno_fails_and_is_named(self):
        results = self.healthy_results()
        results.add("SRP", 0.0, 0, summary(seqno=2.0, delivery=0.99, load=0.5))
        report = evaluate_gate(results)
        assert report.exit_code() == 1
        assert "srp-sequence-numbers-zero" in [
            outcome.name for outcome in report.failed
        ]
        assert "srp-sequence-numbers-zero" in report.to_text()
        assert "VIOLATED" in report.to_text()

    def test_strict_turns_inconclusive_into_failure(self):
        results = self.healthy_results()
        del results.summaries[("DSR", 0.0, 0)]
        report = evaluate_gate(results)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1
        assert report.inconclusive

    def test_report_dict_is_structured(self):
        report = evaluate_gate(self.healthy_results(), scale="unit")
        data = report.to_dict()
        assert data["scale"] == "unit"
        assert data["failed"] == 0
        assert data["completed_cells"] == data["planned_cells"] == 20
        assert {entry["name"] for entry in data["invariants"]} == {
            invariant.name for invariant in paper_invariants()
        }

    def test_custom_registry(self):
        invariant = ExactInvariant(
            name="custom",
            figure="-",
            claim="-",
            metric="sequence_number",
            protocol="SRP",
        )
        report = evaluate_gate(self.healthy_results(), [invariant])
        assert [outcome.name for outcome in report.outcomes] == ["custom"]


@pytest.mark.parametrize("status", [PASS, FAIL, INCONCLUSIVE])
def test_statuses_are_distinct_strings(status):
    assert status in {"pass", "fail", "inconclusive"}
