"""Executor equivalence: every backend must produce bit-identical sweeps.

The job pipeline's core guarantee is that a sweep's outcome is a pure function
of its planned jobs — so the legacy monolithic ``run_sweep`` loop, the serial
executor and the process-pool executor must agree exactly at fixed seeds, and
progress events must account for every job exactly once.
"""

import pytest

from repro.experiments import (
    collect_sweep,
    execute_jobs,
    plan_sweep,
    run_sweep,
    sweep_shape,
)
from repro.workloads.scenario import scaled_scenario

PROTOCOLS = ["SRP", "AODV"]
PAUSE_TIMES = (0.0, 8.0)
TRIALS = 1


@pytest.fixture(scope="module")
def scenario():
    return scaled_scenario(
        node_count=10,
        flow_count=2,
        duration=8.0,
        terrain_width=700,
        terrain_height=300,
    )


@pytest.fixture(scope="module")
def jobs(scenario):
    return plan_sweep(
        scenario, PROTOCOLS, pause_times=PAUSE_TIMES, trials=TRIALS
    )


@pytest.fixture(scope="module")
def serial_results(jobs):
    outcomes = execute_jobs(jobs, workers=1)
    return collect_sweep(
        outcomes, pause_times=PAUSE_TIMES, trials=TRIALS, protocols=PROTOCOLS
    )


class TestBackendEquivalence:
    def test_legacy_run_sweep_matches_serial_executor(self, scenario, serial_results):
        legacy = run_sweep(
            scenario, PROTOCOLS, pause_times=PAUSE_TIMES, trials=TRIALS
        )
        assert legacy.summaries == serial_results.summaries

    def test_process_pool_matches_serial_executor(self, jobs, serial_results):
        outcomes = execute_jobs(jobs, workers=2)
        pooled = collect_sweep(
            outcomes, pause_times=PAUSE_TIMES, trials=TRIALS, protocols=PROTOCOLS
        )
        assert pooled.summaries == serial_results.summaries

    def test_json_round_trip_of_executed_sweep(self, serial_results):
        from repro.experiments import SweepResults

        restored = SweepResults.from_json(serial_results.to_json())
        assert restored.summaries == serial_results.summaries


class TestProgressEvents:
    def test_serial_progress_counts_every_job(self, jobs):
        events = []
        execute_jobs(jobs, workers=1, progress=events.append)
        assert [e.completed for e in events] == list(range(1, len(jobs) + 1))
        assert all(e.total == len(jobs) for e in events)
        assert not any(e.cached for e in events)
        assert events[-1].fraction == 1.0
        assert {e.job for e in events} == set(jobs)

    def test_pool_progress_counts_every_job(self, jobs):
        events = []
        execute_jobs(jobs, workers=2, progress=events.append)
        assert len(events) == len(jobs)
        assert events[-1].completed == len(jobs)
        assert {e.job for e in events} == set(jobs)

    def test_eta_reaches_zero(self, jobs):
        events = []
        execute_jobs(jobs[:2], workers=1, progress=events.append)
        assert events[-1].eta == 0.0


class TestLegacyProgressCallback:
    def test_run_sweep_announces_cells_in_plan_order(self, scenario, jobs):
        seen = []
        run_sweep(
            scenario,
            PROTOCOLS,
            pause_times=PAUSE_TIMES,
            trials=TRIALS,
            progress=lambda protocol, pause, trial: seen.append(
                (protocol, pause, trial)
            ),
        )
        assert seen == [job.cell for job in jobs]


class TestSweepShape:
    def test_shape_recovers_planner_inputs(self, jobs):
        protocols, pause_times, trials = sweep_shape(jobs)
        assert protocols == PROTOCOLS
        assert pause_times == list(PAUSE_TIMES)
        assert trials == TRIALS
