"""End-to-end tests of the sweep engine CLI (``python -m repro.experiments``).

Run in-process through ``main(argv)`` with a protocol subset of the smoke
scale so each command finishes in seconds: ``run`` populates a store and
writes ``results.json``, a second ``run``/``resume`` reuses every cell, and
``report`` reproduces the Table I / figure text from disk without simulating.
"""

import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments import ResultsStore, SweepResults

PROTOCOL_ARGS = ["--protocols", "SRP", "AODV"]


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "sweep-smoke"
    code = main(
        ["run", "--scale", "smoke", "--jobs", "2", "--out", str(out), "--quiet"]
        + PROTOCOL_ARGS
    )
    assert code == 0
    return out


class TestRun:
    def test_run_populates_the_store(self, store_dir):
        store = ResultsStore(store_dir)
        meta = store.require_meta()
        # smoke scale: 2 pause times x 1 trial x 2 protocols.
        assert meta["scale"] == "smoke"
        assert len(store.completed_keys()) == 4
        assert store.results_path.exists()

    def test_results_json_parses(self, store_dir):
        results = SweepResults.from_json(
            (store_dir / "results.json").read_text(encoding="utf-8")
        )
        assert len(results.summaries) == 4

    def test_second_run_recomputes_nothing(self, store_dir, capsys):
        code = main(
            ["run", "--scale", "smoke", "--jobs", "1", "--out", str(store_dir)]
            + PROTOCOL_ARGS
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 already in store, 0 to run" in out
        assert out.count("cached") == 4

    def test_conflicting_parameters_are_rejected(self, store_dir, capsys):
        code = main(
            ["run", "--scale", "benchmark", "--out", str(store_dir), "--quiet"]
            + PROTOCOL_ARGS
        )
        # 3, not argparse's 2: CI distinguishes "store holds a different
        # sweep" (wipe and restart) from a usage error (fail the job).
        assert code == 3
        assert "different sweep" in capsys.readouterr().err


class TestResume:
    def test_resume_completes_a_partial_store(self, store_dir, capsys):
        store = ResultsStore(store_dir)
        # Knock one cell out, as if the run had been killed mid-sweep.
        victim = store.planned_jobs()[0]
        removed = store.get(victim)
        (store.jobs_dir / f"{victim.content_key}.json").unlink()
        assert len(store.completed_keys()) == 3

        code = main(["resume", "--out", str(store_dir), "--quiet"])
        assert code == 0
        assert "3/4 cells already done" in capsys.readouterr().out
        store.invalidate_key_cache()  # the resume wrote through another instance
        assert len(store.completed_keys()) == 4
        assert store.get(victim) == removed  # deterministic re-run, same cell

    def test_resume_needs_an_existing_store(self, tmp_path, capsys):
        code = main(["resume", "--out", str(tmp_path / "nowhere")])
        assert code == 2
        assert "not a sweep results store" in capsys.readouterr().err


class TestWorkerAndStatus:
    """The distributed subcommands, single-worker end to end (the concurrent
    paths are covered in test_distributed.py)."""

    @pytest.fixture(scope="class")
    def worker_store(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("worker") / "shared"
        code = main(
            ["worker", "--store", str(out), "--scale", "smoke",
             "--worker-id", "solo", "--quiet"] + PROTOCOL_ARGS
        )
        assert code == 0
        return out

    def test_worker_initialises_and_completes_the_store(self, worker_store):
        store = ResultsStore(worker_store)
        assert store.require_meta()["scale"] == "smoke"
        assert len(store.completed_keys()) == 4
        assert store.results_path.exists()
        assert store.claims() == {}  # every lease released
        records = store.worker_records()
        assert list(records) == ["solo"]
        assert len(records["solo"]["completed"]) == 4

    def test_worker_store_matches_run_store(self, worker_store, store_dir):
        worker = ResultsStore(worker_store)
        serial = ResultsStore(store_dir)
        assert serial.diff_cells(worker) == []

    def test_worker_without_meta_or_scale_is_an_error(self, tmp_path, capsys):
        code = main(["worker", "--store", str(tmp_path / "empty")])
        assert code == 2
        assert "no sweep" in capsys.readouterr().err

    def test_worker_rejects_shape_flags_without_scale(
        self, worker_store, capsys
    ):
        # Silently ignoring these would look like sharding while actually
        # running the store's full job list.
        code = main(
            ["worker", "--store", str(worker_store), "--protocols", "SRP"]
        )
        assert code == 2
        assert "--scale" in capsys.readouterr().err

    def test_worker_bad_options_are_usage_errors(
        self, worker_store, tmp_path, capsys
    ):
        code = main(
            ["worker", "--store", str(worker_store), "--worker-id", "a/b"]
        )
        assert code == 2
        assert "filesystem-safe" in capsys.readouterr().err
        # Against a *fresh* store the usage error must also not leave a
        # stamped directory behind (a retry with another --scale would
        # otherwise hit the sweep-mismatch exit 3).
        fresh = tmp_path / "fresh"
        code = main(
            ["worker", "--store", str(fresh), "--scale", "smoke",
             "--lease-ttl", "0"]
        )
        assert code == 2
        assert "lease_ttl" in capsys.readouterr().err
        assert not fresh.exists()

    def test_worker_scale_conflict_exits_3(self, worker_store, capsys):
        code = main(
            ["worker", "--store", str(worker_store), "--scale", "benchmark",
             "--quiet"] + PROTOCOL_ARGS
        )
        assert code == 3
        assert "different sweep" in capsys.readouterr().err

    def test_status_reports_completion_and_workers(
        self, worker_store, tmp_path, capsys
    ):
        json_path = tmp_path / "status.json"
        code = main(
            ["status", "--out", str(worker_store), "--json", str(json_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4/4 cells (complete)" in out
        assert "worker solo: 4 cells completed" in out
        status = json.loads(json_path.read_text(encoding="utf-8"))
        assert status["completed_cells"] == status["planned_cells"] == 4
        assert status["claims"] == []

    def test_status_needs_an_existing_store(self, tmp_path, capsys):
        code = main(["status", "--out", str(tmp_path / "nowhere")])
        assert code == 2
        assert "not a sweep results store" in capsys.readouterr().err


class TestReport:
    def test_report_renders_all_experiments_from_disk(self, store_dir, capsys):
        code = main(["report", "--out", str(store_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        for figure_number in range(3, 8):
            assert f"Fig. {figure_number}" in out

    def test_report_single_experiment(self, store_dir, capsys):
        code = main(["report", "--out", str(store_dir), "--experiment", "fig4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "Table I" not in out

    def test_report_warns_on_partial_store(self, store_dir, tmp_path, capsys):
        store = ResultsStore(store_dir)
        partial = ResultsStore(tmp_path / "partial")
        partial.root.mkdir(parents=True)
        meta = store.require_meta()
        partial.meta_path.write_text(json.dumps(meta), encoding="utf-8")
        jobs = store.planned_jobs()
        partial.put(jobs[0], store.get(jobs[0]))

        code = main(["report", "--out", str(partial.root)])
        assert code == 0
        captured = capsys.readouterr()
        assert "1/4 cells" in captured.err
        assert "Table I" in captured.out

    def test_report_needs_an_existing_store(self, tmp_path, capsys):
        code = main(["report", "--out", str(tmp_path / "nowhere")])
        assert code == 2
        assert "not a sweep results store" in capsys.readouterr().err

    def test_report_on_missing_path_creates_nothing(self, tmp_path):
        target = tmp_path / "typo-dir"
        main(["report", "--out", str(target)])
        assert not target.exists()  # read-only commands must not litter
