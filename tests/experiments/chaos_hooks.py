"""Module-level trial hooks for chaos tests and the CI chaos-smoke job.

The executor resolves ``$REPRO_RUN_HOOK`` (``module:function``) to the trial
function each worker runs, so fault *injection into the harness itself* needs
no monkeypatching: point the env var at one of these and selected cells
crash, hang, fail transiently or take their whole worker process down.
Everything here must stay module-level (process-pool workers pick hooks up by
name) and env-driven (pool workers share no Python state with the parent).

Selection: ``REPRO_CHAOS_CRASH`` / ``REPRO_CHAOS_HANG`` / ``REPRO_CHAOS_KILL``
each hold a comma-separated list of cell labels of the form
``PROTO:pause:trial`` (e.g. ``AODV:0:0``); unlisted cells run normally.
``REPRO_CHAOS_FAIL_N`` makes matching cells fail that many times before
succeeding, with attempt counts persisted as files under
``REPRO_CHAOS_STATE`` so the count survives pool-worker process boundaries.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.experiments.executor import run_job
from repro.experiments.jobs import TrialJob


def _label(job: TrialJob) -> str:
    return f"{job.protocol}:{job.pause_time:g}:{job.trial}"


def _selected(job: TrialJob, env_var: str) -> bool:
    spec = os.environ.get(env_var, "")
    return _label(job) in [token for token in spec.split(",") if token]


def chaos_cell(job: TrialJob):
    """The all-in-one hook: crash, hang, kill or fail-N selected cells."""
    if _selected(job, "REPRO_CHAOS_KILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    if _selected(job, "REPRO_CHAOS_CRASH"):
        raise RuntimeError(f"chaos: injected crash in {_label(job)}")
    if _selected(job, "REPRO_CHAOS_HANG"):
        time.sleep(3600.0)
    if _selected(job, "REPRO_CHAOS_FAIL_N"):
        state_dir = Path(os.environ["REPRO_CHAOS_STATE"])
        budget = int(os.environ.get("REPRO_CHAOS_FAIL_COUNT", "1"))
        marker = state_dir / f"fail-{_label(job).replace(':', '_')}"
        # One file per prior failure: counting files (not bytes) keeps the
        # bookkeeping atomic enough for concurrent pool workers.
        failures = len(list(state_dir.glob(marker.name + ".*")))
        if failures < budget:
            (state_dir / f"{marker.name}.{failures}").touch()
            raise RuntimeError(
                f"chaos: transient failure {failures + 1}/{budget} "
                f"in {_label(job)}"
            )
    return run_job(job)


def kill_worker_once(job: TrialJob):
    """SIGKILL this worker process the first time a selected cell runs.

    The tombstone file under ``REPRO_CHAOS_STATE`` makes the kill one-shot
    across process incarnations, so the rebuilt pool (or the isolated retry)
    completes the cell — the transient-worker-death recovery path.
    """
    if _selected(job, "REPRO_CHAOS_KILL"):
        tombstone = Path(os.environ["REPRO_CHAOS_STATE"]) / (
            "killed-" + _label(job).replace(":", "_")
        )
        if not tombstone.exists():
            tombstone.touch()
            os.kill(os.getpid(), signal.SIGKILL)
    return run_job(job)
