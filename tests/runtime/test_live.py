"""The live runtime: clock scaling, flood control, and full soaks."""

import asyncio

import pytest

from repro.sim.packet import Packet, PacketKind
from repro.runtime.live import (
    ExpiringSet,
    LiveClock,
    LiveCounters,
    LiveNode,
    LiveRunConfig,
    LiveTransportBase,
    adjacency_from_positions,
    plan_flows,
    run_soak,
    topology_positions,
)
from repro.sim.stats import TrialStats


class ManualClock:
    """A clock whose time only moves when the test says so."""

    def __init__(self) -> None:
        self.now = 0.0


class SinkTransport(LiveTransportBase):
    """Records every send instead of delivering it."""

    def __init__(self) -> None:
        self.sent = []

    def send(self, origin, packet, receiver) -> None:
        self.sent.append((origin, packet, receiver))


class RecorderProtocol:
    """A stand-in protocol that records what the runtime hands it."""

    def __init__(self) -> None:
        self.packets = []

    def attach(self, node) -> None:
        self.node = node

    def start(self) -> None:
        pass

    def handle_packet(self, packet, from_node) -> None:
        self.packets.append((packet, from_node))

    def finalize(self) -> None:
        pass

    def sequence_number_metric(self) -> int:
        return 0


def data_packet(source=0, destination=1, hops=0) -> Packet:
    packet = Packet(
        kind=PacketKind.DATA,
        source=source,
        destination=destination,
        size_bytes=64,
        created_at=0.0,
    )
    packet.hops = hops
    return packet


def make_node(clock=None, **kwargs) -> LiveNode:
    clock = clock or ManualClock()
    node = LiveNode(0, clock, SinkTransport(), TrialStats(), **kwargs)
    node.attach_protocol(RecorderProtocol())
    return node


class TestLiveClock:
    def test_time_scale_maps_wall_to_protocol_seconds(self):
        async def go():
            clock = LiveClock(asyncio.get_running_loop(), time_scale=0.01)
            start = clock.now
            await asyncio.sleep(0.05)  # 5 protocol seconds of wall time
            return clock.now - start

        elapsed = asyncio.run(go())
        # Loop overhead only ever makes more protocol time pass, not less.
        assert elapsed >= 4.0

    def test_schedule_in_fires_in_protocol_time(self):
        async def go():
            clock = LiveClock(asyncio.get_running_loop(), time_scale=0.01)
            fired = []
            clock.schedule_in(2.0, lambda: fired.append(clock.now))
            await asyncio.sleep(0.2)  # 20 protocol seconds
            return fired

        fired = asyncio.run(go())
        assert len(fired) == 1
        assert fired[0] >= 2.0

    def test_schedule_at_in_the_past_still_fires(self):
        async def go():
            clock = LiveClock(asyncio.get_running_loop(), time_scale=0.01)
            fired = []
            clock.schedule_at(-5.0, lambda: fired.append(True))
            await asyncio.sleep(0.02)
            return fired

        assert asyncio.run(go()) == [True]

    def test_cancel_prevents_firing(self):
        async def go():
            clock = LiveClock(asyncio.get_running_loop(), time_scale=0.01)
            fired = []
            handle = clock.schedule_in(1.0, lambda: fired.append(True))
            handle.cancel()
            await asyncio.sleep(0.05)
            return fired

        assert asyncio.run(go()) == []

    def test_rejects_nonpositive_scale(self):
        async def go():
            with pytest.raises(ValueError):
                LiveClock(asyncio.get_running_loop(), time_scale=0.0)

        asyncio.run(go())


class TestExpiringSet:
    def test_first_add_accepts_duplicate_rejects(self):
        clock = ManualClock()
        seen = ExpiringSet(clock, window=10.0)
        assert seen.add(("a", 1)) is True
        assert seen.add(("a", 1)) is False
        assert ("a", 1) in seen

    def test_entries_expire_after_the_window(self):
        clock = ManualClock()
        seen = ExpiringSet(clock, window=10.0)
        seen.add("key")
        clock.now = 10.5
        assert "key" not in seen
        assert seen.add("key") is True  # re-admitted after expiry

    def test_len_reflects_eviction(self):
        clock = ManualClock()
        seen = ExpiringSet(clock, window=5.0)
        for i in range(4):
            seen.add(i)
            clock.now += 2.0
        # now = 8.0: entries added at t=0 and t=2 have expired.
        assert len(seen) == 2

    def test_readded_key_keeps_fresh_expiry(self):
        clock = ManualClock()
        seen = ExpiringSet(clock, window=5.0)
        seen.add("key")
        clock.now = 6.0
        seen.add("key")  # fresh entry; the stale order pair must not evict it
        clock.now = 7.0
        assert "key" in seen


class TestFloodControl:
    def test_send_increments_hops_and_enforces_ttl(self):
        node = make_node(max_ttl=4)
        packet = data_packet(hops=3)
        node.send_unicast(packet, 1)
        assert packet.hops == 4
        assert len(node.transport.sent) == 1
        over = data_packet(hops=4)
        node.send_unicast(over, 1)
        assert node.counters.ttl_drops == 1
        assert len(node.transport.sent) == 1  # not transmitted

    def test_receiving_over_ttl_is_a_violation(self):
        node = make_node(max_ttl=4)
        node.receive(data_packet(hops=5), from_node=1, was_broadcast=False)
        assert node.counters.ttl_violations == 1
        assert node.protocol.packets == []

    def test_broadcast_duplicates_are_dropped(self):
        node = make_node()
        packet = data_packet(source=2)
        node.receive(packet, from_node=1, was_broadcast=True)
        node.receive(packet.copy_for_forwarding(), from_node=3, was_broadcast=True)
        assert len(node.protocol.packets) == 1
        assert node.counters.dedup_drops == 1
        assert node.counters.dedup_violations == 0

    def test_unicast_is_never_deduplicated(self):
        node = make_node()
        packet = data_packet(source=2)
        node.receive(packet, from_node=1, was_broadcast=False)
        node.receive(packet.copy_for_forwarding(), from_node=1, was_broadcast=False)
        assert len(node.protocol.packets) == 2
        assert node.counters.dedup_drops == 0

    def test_duplicate_outliving_the_window_is_a_violation(self):
        clock = ManualClock()
        node = make_node(clock=clock, dedup_window=1.0)
        packet = data_packet(source=2)
        node.receive(packet, from_node=1, was_broadcast=True)
        clock.now = 5.0  # the dedup entry has expired
        node.receive(packet.copy_for_forwarding(), from_node=3, was_broadcast=True)
        assert node.counters.dedup_violations == 1
        assert node.counters.dedup_drops == 1
        assert len(node.protocol.packets) == 1  # still not re-delivered

    def test_closed_node_neither_sends_nor_receives(self):
        node = make_node()
        node.close()
        node.send_broadcast(data_packet())
        node.receive(data_packet(), from_node=1, was_broadcast=False)
        assert node.transport.sent == []
        assert node.protocol.packets == []

    def test_delivery_dedup_keys_on_source_and_uid(self):
        # Two routers in different processes can mint the same uid; the
        # delivery key must still tell their packets apart.
        node = make_node()
        a = data_packet(source=1)
        b = data_packet(source=2)
        b.uid = a.uid
        node.deliver_data(a)
        node.deliver_data(b)
        assert node.stats.data_delivered == 2
        assert node.stats.duplicate_deliveries == 0
        node.deliver_data(a.copy_for_forwarding())
        assert node.stats.duplicate_deliveries == 1


class TestTopology:
    def test_line_is_a_chain(self):
        positions = topology_positions("line", 4)
        adjacency = adjacency_from_positions(positions, 1.25)
        assert adjacency[0] == (1,)
        assert adjacency[1] == (0, 2)
        assert adjacency[3] == (2,)

    def test_grid_is_four_connected(self):
        positions = topology_positions("grid", 9)
        adjacency = adjacency_from_positions(positions, 1.25)
        assert set(adjacency[4]) == {1, 3, 5, 7}  # centre of the 3x3
        assert set(adjacency[0]) == {1, 3}  # corner

    def test_random_topology_is_connected_and_deterministic(self):
        a = topology_positions("random", 8, seed=7, radio_range=2.0)
        b = topology_positions("random", 8, seed=7, radio_range=2.0)
        assert a == b
        adjacency = adjacency_from_positions(a, 2.0)
        seen = {0}
        frontier = [0]
        while frontier:
            for neighbor in adjacency[frontier.pop()]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert seen == set(range(8))

    def test_unknown_topology_is_rejected(self):
        with pytest.raises(ValueError):
            topology_positions("torus", 4)


class TestFlowPlan:
    def test_plan_is_deterministic_and_inside_the_window(self):
        plan_a = plan_flows(
            range(5), flows=4, seed=3, warmup=10.0, duration=40.0, drain=4.0
        )
        plan_b = plan_flows(
            range(5), flows=4, seed=3, warmup=10.0, duration=40.0, drain=4.0
        )
        assert plan_a == plan_b
        for flow in plan_a:
            assert flow.source != flow.destination
            assert 10.0 <= flow.start < flow.end <= 36.0

    def test_no_traffic_window_is_rejected(self):
        with pytest.raises(ValueError):
            plan_flows(range(5), flows=1, seed=1, warmup=20.0, duration=22.0, drain=4.0)


class TestCounters:
    def test_merge_and_round_trip(self):
        a = LiveCounters(unicast_sent=3, ttl_drops=1, dedup_violations=2)
        b = LiveCounters(unicast_sent=4, received=9)
        a.merge(b)
        assert a.unicast_sent == 7
        assert a.received == 9
        assert a.violations == 2
        assert LiveCounters.from_dict(a.to_dict()) == a


def soak_config(**overrides) -> LiveRunConfig:
    defaults = dict(
        transport="loopback",
        routers=5,
        topology="line",
        duration=40.0,
        warmup=12.0,
        time_scale=0.02,
        flows=3,
        rate=4.0,
        seed=1,
    )
    defaults.update(overrides)
    return LiveRunConfig(**defaults)


class TestLoopbackSoak:
    def test_lsr_daemons_deliver_on_a_line(self):
        report = run_soak(soak_config(protocol="LSR"))
        assert report.summary.data_sent > 0
        assert report.summary.delivery_ratio >= 0.9
        assert report.summary.mean_latency >= 0.0
        assert report.violations == 0

    def test_reactive_aodv_daemons_deliver_unchanged(self):
        report = run_soak(soak_config(protocol="AODV"))
        assert report.summary.delivery_ratio >= 0.9
        assert report.violations == 0
        # Reactive discovery on a warm static topology costs less control
        # traffic than LSR's periodic flooding.
        assert report.summary.control_transmissions > 0

    def test_grid_topology_soak(self):
        report = run_soak(
            soak_config(protocol="LSR", topology="grid", routers=9, seed=5)
        )
        assert report.summary.delivery_ratio >= 0.9
        assert report.violations == 0

    def test_soak_is_deterministic_in_counts(self):
        # Wall-clock jitter moves latencies, but the offered load is a pure
        # function of the seed.
        first = run_soak(soak_config(protocol="LSR", seed=9))
        second = run_soak(soak_config(protocol="LSR", seed=9))
        assert first.summary.data_sent == second.summary.data_sent
        assert first.flows == second.flows

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LiveRunConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            LiveRunConfig(routers=1)
        with pytest.raises(ValueError):
            LiveRunConfig(time_scale=0.0)

    def test_config_round_trip(self):
        config = soak_config(protocol="OLSR", routers=7)
        assert LiveRunConfig.from_dict(config.to_dict()) == config


class TestUdpSoak:
    def test_router_processes_exchange_real_datagrams(self):
        report = run_soak(
            LiveRunConfig(
                protocol="LSR",
                transport="udp",
                routers=3,
                topology="line",
                duration=24.0,
                warmup=10.0,
                time_scale=0.05,
                flows=2,
                rate=4.0,
                seed=3,
            )
        )
        assert report.summary.data_sent > 0
        assert report.summary.delivery_ratio >= 0.9
        assert report.summary.mean_latency >= 0.0
        assert report.violations == 0
