"""Sim-vs-live parity: one protocol, two runtimes, the same routing tables.

The runtime seam's core promise is that a protocol cannot tell whether it is
running inside the discrete-event simulator or as a live asyncio daemon.
These tests make the promise falsifiable: run LSR on the same static
topology under both runtimes and require *identical* converged routing
tables.  LSR is the right probe because its SPF is a deterministic function
of the topology graph alone (sorted BFS, two-way check), so any table
difference is a seam leak — a protocol reading sim state directly — rather
than tie-breaking noise.
"""

import asyncio

from repro.protocols.lsr import LsrConfig, LsrProtocol
from repro.runtime.live import LiveRunConfig, LoopbackNetwork

from ..protocols.helpers import StaticNetwork, chain_positions, grid_positions

CONVERGE_AT = 20.0


def sim_tables(positions):
    net = StaticNetwork(positions, lambda node_id: LsrProtocol(LsrConfig()))
    net.start()
    net.run(until=CONVERGE_AT)
    return {
        node_id: dict(net.protocol(node_id).routing_table)
        for node_id in positions
    }


def live_tables(topology: str, routers: int):
    async def go():
        network = LoopbackNetwork(
            LiveRunConfig(
                protocol="LSR",
                transport="loopback",
                topology=topology,
                routers=routers,
                duration=CONVERGE_AT + 10.0,
                warmup=CONVERGE_AT,
                time_scale=0.05,
                flows=1,
                seed=1,
            )
        )
        network.start()
        await network.run_for(CONVERGE_AT)
        tables = network.routing_tables()
        network.finish()
        return tables

    return asyncio.run(go())


class TestRoutingTableParity:
    def test_chain_converges_to_identical_tables(self):
        # 5 nodes in a line: one shortest path per pair, no tie-breaking.
        sim = sim_tables(chain_positions(5))
        live = live_tables("line", 5)
        assert sim == live
        # And the tables are complete: every node routes to every other.
        for node_id, table in sim.items():
            assert set(table) == {n for n in range(5) if n != node_id}

    def test_grid_converges_to_identical_tables(self):
        # 3x3 grid: equal-cost paths exist, so parity additionally proves
        # both runtimes present neighbours to SPF in the same order.
        sim = sim_tables(grid_positions(3, 3))
        live = live_tables("grid", 9)
        assert sim == live

    def test_parity_runs_share_no_clock(self):
        # Guard against accidental coupling: the live tables must come from
        # protocol-time convergence, not from the sim having run first.
        live_first = live_tables("line", 4)
        sim_after = sim_tables(chain_positions(4))
        assert live_first == sim_after
