"""Import hygiene of the runtime seam.

``repro.protocols`` and ``repro.runtime`` are the runtime-agnostic side of
the seam: the same code runs under the discrete-event simulator and as live
asyncio daemons, so it must not import simulator machinery.  Three
``repro.sim`` modules are explicitly *allowed* because they are pure data
models shared by both runtimes:

* ``repro.sim.packet`` — the Packet/Frame wire model,
* ``repro.sim.stats``  — trial statistics and summaries,
* ``repro.sim.rng``    — deterministic seed-derived RNG streams.

Everything else under ``repro.sim`` (engine, node, mac, channel, network,
mobility, spatial index, event queues, faults, tuning, ...) is sim-only: an
import of it from the runtime-agnostic side is a seam leak, caught here by
walking the AST of every module rather than by convention.  This is the
enforcement half of the rule that node/protocol statistics paths read time
only through the runtime ``clock`` accessor.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages whose modules must stay runnable under any Runtime.
RUNTIME_AGNOSTIC_PACKAGES = ("protocols", "runtime")

#: repro.sim submodules that are runtime-agnostic data models.
ALLOWED_SIM_MODULES = {"packet", "stats", "rng"}


def _absolute_module(node: ast.ImportFrom, package_parts) -> str:
    """Resolve a possibly-relative ``from X import Y`` to an absolute module."""
    if node.level == 0:
        return node.module or ""
    base = package_parts[: len(package_parts) - (node.level - 1)]
    if node.module:
        return ".".join(list(base) + [node.module])
    return ".".join(base)


def _sim_imports(path: Path):
    """Every repro.sim submodule imported at the top level of ``path``."""
    relative = path.relative_to(SRC.parent).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts.pop()
    package_parts = parts[:-1] if path.name != "__init__.py" else parts

    tree = ast.parse(path.read_text(encoding="utf-8"))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name.startswith("repro.sim"):
                    found.append((name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            module = _absolute_module(node, package_parts)
            if module == "repro.sim":
                for alias in node.names:
                    found.append((f"repro.sim.{alias.name}", node.lineno))
            elif module.startswith("repro.sim."):
                found.append((module, node.lineno))
    return found


def test_runtime_agnostic_code_imports_no_simulator_machinery():
    violations = []
    for package in RUNTIME_AGNOSTIC_PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            for module, lineno in _sim_imports(path):
                submodule = module.split(".")[2] if module.count(".") >= 2 else ""
                if submodule not in ALLOWED_SIM_MODULES:
                    violations.append(
                        f"{path.relative_to(SRC.parent)}:{lineno} imports "
                        f"{module} (sim-only; allowed: "
                        f"{sorted(ALLOWED_SIM_MODULES)})"
                    )
    assert not violations, "runtime seam leaks:\n" + "\n".join(violations)


def test_the_checker_sees_the_legitimate_imports():
    # Self-test: the walker must actually find imports, or a refactor that
    # breaks its resolution logic would green-light everything.
    found = [
        module
        for path in sorted((SRC / "runtime").rglob("*.py"))
        for module, _ in _sim_imports(path)
    ]
    assert "repro.sim.packet" in found
    assert "repro.sim.stats" in found


def test_sim_node_reads_time_through_the_clock_accessor():
    # The statistics paths in the sim Node must go through ``self.clock.now``
    # (the Runtime seam), never ``self.simulator.now`` — the live node has no
    # simulator at all, and the seam's bit-identity rests on both runtimes
    # sharing one time accessor.
    source = (SRC / "sim" / "node.py").read_text(encoding="utf-8")
    assert "self.simulator.now" not in source
    assert "self.clock.now" in source
