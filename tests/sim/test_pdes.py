"""Sharded-PDES exactness: shard-count invariance and the process mode.

The sharded backend's contract (``repro.sim.pdes``) is the repo's standard
one: **bit-identity**.  The threaded mode's K-way merge pops the identical
globally ordered event sequence for any shard count, so a sharded trial
must equal a serial one entry for entry — summary *and* event count — for
every protocol, clean and faulted, FastPaths off and on, under either event
queue.  This module enforces that matrix, the ShardPlan geometry, the
boundary/handoff accounting at the seams, the EngineTuning environment
seam, and the process mode's group decomposition (exact integer counters,
mean latency to the last ulp modulo concatenation order).
"""

import dataclasses
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.paper import EvaluationScale
from repro.protocols import protocol_factory
from repro.sim.channel import Channel
from repro.sim.faults import FaultSpec, fault_preset
from repro.sim.network import build_network
from repro.sim.pdes import (
    PdesError,
    ShardPlan,
    ShardedSimulator,
    radio_groups,
    run_trial_sharded_processes,
)
from repro.sim.packet import Frame, Packet, PacketKind
from repro.sim.phy import SPEED_OF_LIGHT_DELAY_S_PER_M
from repro.sim.space import Position
from repro.sim.tuning import (
    ENGINE_BACKEND_ENV,
    SHARD_COUNT_ENV,
    EngineTuning,
    FastPaths,
)
from repro.workloads.scenario import scaled_scenario

PROTOCOLS = ("SRP", "LDR", "AODV", "DSR", "OLSR")

SHARD_COUNTS = (1, 2, 4)


def smoke_scenario(*, faulted=False):
    scenario = EvaluationScale.smoke().scenario
    if faulted:
        scenario = scenario.with_faults(fault_preset("churn-partition", scenario))
    return scenario


def run_serial(scenario, protocol, *, fast_paths=None, event_queue="calendar"):
    network = build_network(
        scenario,
        protocol_factory(protocol),
        fast_paths=fast_paths,
        tuning=EngineTuning(event_queue=event_queue),
    )
    return network.run(), network.simulator.events_processed


def run_sharded(
    scenario, protocol, shards, *, fast_paths=None, event_queue="calendar"
):
    network = build_network(
        scenario,
        protocol_factory(protocol),
        fast_paths=fast_paths,
        tuning=EngineTuning(
            event_queue=event_queue,
            engine_backend="sharded",
            shard_count=shards,
        ),
    )
    summary = network.run()
    return (summary, network.simulator.events_processed), network.simulator


# -- plan geometry ---------------------------------------------------------------


class TestShardPlan:
    def test_strips_partition_the_terrain(self):
        scenario = smoke_scenario()  # 900 m wide
        plan = ShardPlan.for_scenario(scenario, 4)
        assert plan.strip_width == pytest.approx(225.0)
        assert plan.boundaries == pytest.approx((225.0, 450.0, 675.0))
        assert [plan.shard_of_x(x) for x in (0.0, 224.9, 225.0, 899.9)] == [
            0,
            0,
            1,
            3,
        ]

    def test_edges_clamp_into_range(self):
        plan = ShardPlan.for_scenario(smoke_scenario(), 2)
        assert plan.shard_of_x(-5.0) == 0
        assert plan.shard_of_x(plan.terrain_width) == 1
        assert plan.shard_of_x(plan.terrain_width * 10) == 1

    def test_single_shard_owns_everything(self):
        plan = ShardPlan.for_scenario(smoke_scenario(), 1)
        assert plan.boundaries == ()
        assert plan.shard_of_x(0.0) == plan.shard_of_x(plan.terrain_width) == 0

    def test_lookahead_derivation(self):
        """Instantaneous propagation: lookahead collapses to one slot, and
        the accounting window spans at least a frame's fixed overhead."""
        scenario = smoke_scenario()
        plan = ShardPlan.for_scenario(scenario, 2)
        assert plan.lookahead == pytest.approx(scenario.phy.slot_time_s)
        assert plan.window == pytest.approx(
            max(scenario.phy.slot_time_s, scenario.phy.frame_overhead_s)
        )

    def test_refresh_interval_tracks_mobility(self):
        mobile = smoke_scenario()
        plan = ShardPlan.for_scenario(mobile, 4)
        assert plan.refresh_interval == pytest.approx(
            max(plan.strip_width / 4.0 / mobile.max_speed, plan.window)
        )
        static = dataclasses.replace(mobile, max_speed=0.0, min_speed=0.0)
        assert ShardPlan.for_scenario(static, 4).refresh_interval == math.inf
        assert ShardPlan.for_scenario(mobile, 1).refresh_interval == math.inf

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="shard count"):
            ShardPlan.for_scenario(smoke_scenario(), 0)


# -- shard-count invariance (the acceptance matrix) -------------------------------


class TestShardInvariance:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faulted"])
    def test_serial_vs_sharded_all_protocols(self, protocol, faulted):
        scenario = smoke_scenario(faulted=faulted)
        reference = run_serial(scenario, protocol)
        for shards in SHARD_COUNTS:
            result, simulator = run_sharded(scenario, protocol, shards)
            assert result == reference, (
                f"{protocol} ({'faulted' if faulted else 'clean'}) diverged "
                f"at K={shards}"
            )
            # Every executed event was attributed to some shard.
            assert sum(simulator.sync.executed_by_shard) == reference[1]

    def test_fast_paths_off_matches_at_k2(self):
        scenario = smoke_scenario()
        for protocol in ("SRP", "OLSR"):
            reference = run_serial(scenario, protocol, fast_paths=FastPaths.none())
            result, _ = run_sharded(
                scenario, protocol, 2, fast_paths=FastPaths.none()
            )
            assert result == reference

    def test_heap_queue_matches_at_k2(self):
        """The sharded backend composes with both queue flavours."""
        scenario = smoke_scenario()
        reference = run_serial(scenario, "SRP")
        for event_queue in ("heap", "calendar"):
            result, _ = run_sharded(
                scenario, "SRP", 2, event_queue=event_queue
            )
            assert result == reference

    @given(
        seed=st.integers(min_value=1, max_value=10_000),
        shards=st.sampled_from([2, 3, 4, 5]),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_scenarios_are_shard_invariant(self, seed, shards):
        """Property: any small scenario, any K — serial and sharded agree."""
        scenario = scaled_scenario(
            node_count=8,
            flow_count=2,
            duration=8.0,
            seed=seed,
            terrain_width=700.0,
            terrain_height=250.0,
        )
        reference = run_serial(scenario, "SRP")
        result, _ = run_sharded(scenario, "SRP", shards)
        assert result == reference


# -- seam edge cases --------------------------------------------------------------


class TestSeamEdgeCases:
    def test_handoff_mid_trial_keeps_identity(self):
        """Mobile nodes cross the seam while their MAC chains (backoff
        timers, pending frames) are live; ownership hands off at barrier
        refreshes and the trial stays bit-identical — the chain keeps
        executing, only its shard attribution migrates."""
        scenario = smoke_scenario()  # pause 0: every node moves constantly
        reference = run_serial(scenario, "OLSR")  # saturated: backoffs always live
        result, simulator = run_sharded(scenario, "OLSR", 2)
        assert result == reference
        assert simulator.sync.handoffs > 0
        assert simulator.sync.boundary_receptions > 0

    def test_fault_flips_at_window_boundaries(self):
        """A node crash whose start snaps to a window multiple and a
        partition whose seam is exactly a shard boundary: both flips land
        in their target's shard, are counted, and change nothing."""
        scenario = smoke_scenario()
        plan = ShardPlan.for_scenario(scenario, 2)
        faults = (
            FaultSpec(
                kind="node_crash", start=plan.window * 4000, duration=5.0, node=3
            ),
            FaultSpec(
                kind="partition",
                start=plan.window * 8000,
                duration=5.0,
                boundary_x=plan.boundaries[0],
            ),
        )
        faulted = scenario.with_faults(faults)
        reference = run_serial(faulted, "SRP")
        for shards in (2, 4):
            result, simulator = run_sharded(faulted, "SRP", shards)
            assert result == reference
            assert simulator.sync.boundary_faults > 0

    def test_reception_set_spanning_three_shards(self):
        """One broadcast whose receivers live in three different shards:
        two deliveries cross a seam, one stays home."""
        scenario = smoke_scenario()  # 900 m wide -> K=4 strips of 225 m
        plan = ShardPlan.for_scenario(scenario, 4)
        simulator = ShardedSimulator(plan)
        channel = Channel(simulator, scenario.phy, max_node_speed=0.0)

        received = {}

        class Stub:
            def __init__(self, node_id, x):
                self.node_id = node_id
                self._x = x

            def position(self):
                return (self._x, 50.0)

            def is_transmitting(self):
                return False

            def radio_receive(self, frame, transmitter):
                received.setdefault(self.node_id, []).append(transmitter)

        # tx in shard 1; receivers in shards 0, 1 and 2, all within the
        # 250 m reception range of x=400.
        stations = {"tx": 400.0, "r0": 200.0, "r1": 440.0, "r2": 600.0}
        for node_id, x in stations.items():
            channel.attach(Stub(node_id, x))
        simulator.bind_nodes(
            {node_id: Position(x, 50.0) for node_id, x in stations.items()}, {}
        )
        channel.install_pdes(simulator)
        assert [simulator.shard_of_node(n) for n in ("tx", "r0", "r1", "r2")] == [
            1,
            0,
            1,
            2,
        ]

        packet = Packet(
            kind=PacketKind.DATA,
            source="tx",
            destination="r1",
            size_bytes=256,
            created_at=0.0,
        )
        simulator.set_node_context("tx")
        channel.transmit("tx", Frame(packet, "tx", None))  # broadcast
        simulator.run()
        assert set(received) == {"r0", "r1", "r2"}
        assert simulator.sync.boundary_receptions == 2


# -- engine tuning seam -----------------------------------------------------------


class TestEngineTuningBackend:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(ENGINE_BACKEND_ENV, "sharded")
        monkeypatch.setenv(SHARD_COUNT_ENV, "3")
        tuning = EngineTuning.from_env()
        assert tuning.engine_backend == "sharded"
        assert tuning.shard_count == 3
        assert tuning.resolved_shard_count() == 3

    def test_auto_shard_count_is_at_least_two(self):
        assert EngineTuning(engine_backend="sharded").resolved_shard_count() >= 2

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            EngineTuning(engine_backend="gpu")

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shard count"):
            EngineTuning(shard_count=-1)

    def test_invalid_env_shard_count_rejected(self, monkeypatch):
        monkeypatch.setenv(SHARD_COUNT_ENV, "many")
        with pytest.raises(ValueError, match="integer"):
            EngineTuning.from_env()

    def test_env_backend_builds_sharded_simulator(self, monkeypatch):
        monkeypatch.setenv(ENGINE_BACKEND_ENV, "sharded")
        monkeypatch.setenv(SHARD_COUNT_ENV, "2")
        network = build_network(smoke_scenario(), protocol_factory("SRP"))
        assert isinstance(network.simulator, ShardedSimulator)
        assert network.simulator.plan.shard_count == 2


# -- process mode -----------------------------------------------------------------


def sparse_scenario():
    """A wide, skinny, static world whose initial positions form several
    carrier-sense components (seed chosen for >= 2 groups)."""
    return dataclasses.replace(
        smoke_scenario(),
        seed=1,
        node_count=10,
        flow_count=3,
        terrain_width=3000.0,
        terrain_height=100.0,
    )


class TestProcessMode:
    def test_radio_groups_partition_the_nodes(self):
        scenario = sparse_scenario()
        groups = radio_groups(scenario)
        assert len(groups) >= 2
        flat = sorted(node for group in groups for node in group)
        assert flat == list(range(scenario.node_count))

    def test_matches_serial_static_run(self):
        scenario = sparse_scenario()
        report = run_trial_sharded_processes(scenario, "SRP")
        assert report.fallback_reason is None
        serial = build_network(
            scenario, protocol_factory("SRP"), static_positions=True
        ).run()
        for field in (
            "data_sent",
            "data_delivered",
            "duplicate_deliveries",
            "control_transmissions",
        ):
            assert getattr(report.summary, field) == getattr(serial, field)
        assert math.isclose(
            report.summary.mean_latency, serial.mean_latency, rel_tol=1e-9
        )

    def test_two_workers_match_serial(self):
        scenario = sparse_scenario()
        report = run_trial_sharded_processes(scenario, "SRP", max_workers=2)
        assert report.workers_used == 2
        serial = build_network(
            scenario, protocol_factory("SRP"), static_positions=True
        ).run()
        assert report.summary.data_delivered == serial.data_delivered
        assert report.summary.data_sent == serial.data_sent

    def test_loss_burst_multi_group_is_refused(self):
        # Only loss-burst faults draw RNG at runtime; any plan containing
        # one still shares the "faults" stream and cannot split exactly.
        scenario = sparse_scenario()
        faulted = scenario.with_faults(fault_preset("blackout-burst", scenario))
        with pytest.raises(PdesError, match="loss-burst"):
            run_trial_sharded_processes(faulted, "SRP")

    def test_flip_fault_multi_group_matches_serial(self):
        # churn-partition is crash/partition flips only — pre-scheduled,
        # no runtime RNG draws — so the group decomposition stays exact.
        scenario = sparse_scenario()
        faulted = scenario.with_faults(fault_preset("churn-partition", scenario))
        report = run_trial_sharded_processes(faulted, "SRP", max_workers=2)
        assert report.fallback_reason is None
        assert len(report.groups) >= 2
        serial = build_network(
            faulted, protocol_factory("SRP"), static_positions=True
        ).run()
        for field in (
            "data_sent",
            "data_delivered",
            "control_transmissions",
            "route_recovery_time",
        ):
            assert getattr(report.summary, field) == getattr(serial, field)

    def test_mobile_scenario_falls_back_serially(self):
        scenario = smoke_scenario()
        report = run_trial_sharded_processes(
            scenario, "SRP", static_positions=False
        )
        assert report.fallback_reason is not None
        assert report.workers_used == 1
        serial = build_network(scenario, protocol_factory("SRP")).run()
        assert report.summary == serial


# -- windowed process mode --------------------------------------------------------


def delayed_scenario(*, faulted=False):
    """The smoke scenario under the speed-of-light channel: nonzero
    lookahead, so the process mode runs windowed instead of group-exact."""
    scenario = smoke_scenario(faulted=faulted)
    return scenario.with_propagation_delay(SPEED_OF_LIGHT_DELAY_S_PER_M)


class TestWindowedMode:
    def test_nonzero_delay_dispatches_windowed(self):
        report = run_trial_sharded_processes(
            delayed_scenario(), "SRP", static_positions=False, max_workers=2
        )
        assert report.mode == "windowed"
        assert report.fallback_reason is None
        assert report.workers_used == 2
        assert report.windows > 0
        assert report.boundary_frames >= 0
        assert report.barrier_seconds >= 0.0
        assert report.events_processed > 0
        assert report.summary.data_sent > 0

    def test_windowed_mobile_does_not_fall_back(self):
        # The group mode refuses mobility; the windowed mode owns strips
        # geometrically and replays boundary frames, so motion is fine.
        report = run_trial_sharded_processes(
            delayed_scenario(), "OLSR", static_positions=False, max_workers=2
        )
        assert report.mode == "windowed"
        assert report.fallback_reason is None

    def test_windowed_is_deterministic(self):
        runs = [
            run_trial_sharded_processes(
                delayed_scenario(), "SRP", static_positions=False, max_workers=2
            )
            for _ in range(2)
        ]
        assert runs[0].summary == runs[1].summary
        assert runs[0].windows == runs[1].windows
        assert runs[0].boundary_frames == runs[1].boundary_frames

    def test_windowed_faulted_runs(self):
        # Faulted plans are fine windowed: each worker reseeds its own
        # "faults:shardK" stream (FaultSchedule.split_for_shards).
        report = run_trial_sharded_processes(
            delayed_scenario(faulted=True),
            "SRP",
            static_positions=False,
            max_workers=2,
        )
        assert report.mode == "windowed"
        assert report.fallback_reason is None
        assert report.summary.data_sent > 0

    def test_zero_delay_never_windowed(self):
        # The delay=0 contract is bit-identity; the windowed path must not
        # engage without a physical lookahead.
        report = run_trial_sharded_processes(
            smoke_scenario(), "SRP", static_positions=False, max_workers=2
        )
        assert report.mode != "windowed"
