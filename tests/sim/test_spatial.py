"""Tests for the spatial grid index and the channel's cached geometry.

The index and the channel caches are performance features that must be
*invisible*: every query answer, and therefore every trial outcome, must be
identical to the brute-force O(N) scans they replace.  These tests pin that
down with randomized brute-force comparisons (including points exactly at the
range boundary and on cell borders) and a fixed-seed trial equivalence check.
"""

import math
import random

import pytest

from repro.protocols import protocol_factory
from repro.sim.network import run_trial
from repro.sim.spatial import SpatialGrid
from repro.workloads.scenario import scaled_scenario


def brute_force_within(points, origin, radius):
    """Reference answer: inclusive disk membership by full scan.

    Uses the exact distance expression of the channel scan and the grid
    (``sqrt(dx² + dy²)``, not ``math.hypot``) so boundary points compare
    bit-for-bit identically.
    """
    ox, oy = origin
    return {
        key
        for key, (x, y) in points.items()
        if ((x - ox) ** 2 + (y - oy) ** 2) ** 0.5 <= radius
    }


class TestSpatialGridBasics:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            SpatialGrid(0)
        with pytest.raises(ValueError):
            SpatialGrid(-5.0)

    def test_empty_grid_has_no_neighbors(self):
        grid = SpatialGrid(100.0)
        assert len(grid) == 0
        assert grid.neighbors_within((0.0, 0.0), 1e9) == []

    def test_negative_radius_matches_nothing(self):
        grid = SpatialGrid(100.0)
        grid.insert("a", 0.0, 0.0)
        assert grid.neighbors_within((0.0, 0.0), -1.0) == []
        assert grid.candidates_within((0.0, 0.0), -1.0) == []

    def test_zero_radius_is_inclusive(self):
        grid = SpatialGrid(100.0)
        grid.insert("a", 5.0, 5.0)
        grid.insert("b", 5.0, 6.0)
        assert grid.neighbors_within((5.0, 5.0), 0.0) == ["a"]

    def test_boundary_point_is_included(self):
        grid = SpatialGrid(250.0)
        grid.insert("edge", 250.0, 0.0)
        grid.insert("beyond", 250.0000001, 0.0)
        assert grid.neighbors_within((0.0, 0.0), 250.0) == ["edge"]

    def test_points_on_cell_borders(self):
        # Points exactly on cell boundaries (multiples of the cell size) land
        # in a well-defined cell and are still found across cell lines.
        grid = SpatialGrid(100.0)
        for i, x in enumerate((0.0, 100.0, 200.0, 300.0)):
            grid.insert(i, x, 100.0)
        assert sorted(grid.neighbors_within((100.0, 100.0), 100.0)) == [0, 1, 2]

    def test_negative_coordinates(self):
        grid = SpatialGrid(50.0)
        grid.insert("nw", -75.0, -75.0)
        grid.insert("se", 75.0, 75.0)
        assert grid.neighbors_within((-70.0, -70.0), 10.0) == ["nw"]

    def test_clear_and_rebuild(self):
        grid = SpatialGrid(10.0)
        grid.insert("a", 1.0, 1.0)
        grid.clear()
        assert len(grid) == 0
        grid.build([("b", 2.0, 2.0), ("c", 3.0, 3.0)])
        assert len(grid) == 2
        assert sorted(grid.neighbors_within((2.5, 2.5), 5.0)) == ["b", "c"]


class TestSpatialGridAgainstBruteForce:
    @pytest.mark.parametrize("trial_seed", range(8))
    @pytest.mark.parametrize("cell_size", [30.0, 100.0, 250.0])
    def test_random_layouts_match_brute_force(self, trial_seed, cell_size):
        rng = random.Random(1000 + trial_seed)
        points = {
            i: (rng.uniform(-100.0, 1100.0), rng.uniform(-100.0, 500.0))
            for i in range(rng.randint(1, 120))
        }
        grid = SpatialGrid(cell_size)
        grid.build((key, x, y) for key, (x, y) in points.items())
        for _ in range(25):
            origin = (rng.uniform(-200.0, 1200.0), rng.uniform(-200.0, 600.0))
            radius = rng.choice([0.0, 10.0, 75.0, 250.0, 400.0, 2000.0])
            expected = brute_force_within(points, origin, radius)
            got = grid.neighbors_within(origin, radius)
            assert len(got) == len(set(got)), "no key may be reported twice"
            assert set(got) == expected
            # Candidates must be a superset of the true neighbour set.
            assert set(grid.candidates_within(origin, radius)) >= expected

    def test_boundary_and_cell_border_layout(self):
        # Nodes at exact multiples of the cell size and at the exact query
        # radius, probed from a grid-corner origin.
        cell = 100.0
        points = {}
        key = 0
        for x in range(0, 501, 100):
            for y in range(0, 501, 100):
                points[key] = (float(x), float(y))
                key += 1
        grid = SpatialGrid(cell)
        grid.build((k, x, y) for k, (x, y) in points.items())
        for radius in (0.0, 100.0, 141.4213562373095, 200.0, 500.0):
            for origin in ((0.0, 0.0), (100.0, 100.0), (250.0, 250.0)):
                assert set(grid.neighbors_within(origin, radius)) == (
                    brute_force_within(points, origin, radius)
                )

    def test_candidates_with_inflated_radius_cover_moved_points(self):
        # The channel queries a stale snapshot with the radius inflated by
        # the drift bound; every point within `radius` of the origin *after*
        # moving up to `drift` must appear among the candidates.
        rng = random.Random(7)
        stale = {i: (rng.uniform(0, 1000), rng.uniform(0, 1000)) for i in range(80)}
        drift = 60.0
        moved = {}
        for key, (x, y) in stale.items():
            angle = rng.uniform(0, 2 * math.pi)
            step = rng.uniform(0, drift)
            moved[key] = (x + step * math.cos(angle), y + step * math.sin(angle))
        grid = SpatialGrid(250.0)
        grid.build((k, x, y) for k, (x, y) in stale.items())
        for _ in range(20):
            origin = moved[rng.randrange(80)]
            radius = 250.0
            truly_in_range = brute_force_within(moved, origin, radius)
            candidates = set(grid.candidates_within(origin, radius + drift))
            assert candidates >= truly_in_range


class TestTrialEquivalence:
    def test_spatial_index_trial_is_bit_identical_to_brute_force(self):
        """A fixed-seed SRP trial must produce an identical TrialSummary with
        the spatial index enabled and with the brute-force fallback."""
        scenario = scaled_scenario(
            node_count=14,
            flow_count=3,
            duration=10.0,
            terrain_width=800.0,
            terrain_height=300.0,
            seed=97,
        )
        with_index = run_trial(scenario, protocol_factory("SRP"))
        without_index = run_trial(
            scenario, protocol_factory("SRP"), use_spatial_index=False
        )
        assert with_index == without_index

    def test_repeat_runs_are_deterministic(self):
        scenario = scaled_scenario(
            node_count=12,
            flow_count=2,
            duration=8.0,
            terrain_width=700.0,
            terrain_height=300.0,
            seed=55,
        )
        first = run_trial(scenario, protocol_factory("SRP"))
        second = run_trial(scenario, protocol_factory("SRP"))
        assert first == second
