"""Tests for trial statistics, network assembly and the loop-freedom monitor."""

import pytest

from repro.protocols import protocol_factory
from repro.sim.monitor import LoopFreedomMonitor
from repro.sim.network import build_network, run_trial
from repro.sim.stats import TrialStats
from repro.workloads.scenario import scaled_scenario


class TestTrialStats:
    def test_delivery_ratio(self):
        stats = TrialStats()
        for _ in range(4):
            stats.record_data_sent()
        stats.record_data_delivered(uid=1, latency=0.5)
        stats.record_data_delivered(uid=2, latency=1.5)
        summary = stats.summary()
        assert summary.delivery_ratio == pytest.approx(0.5)
        assert summary.mean_latency == pytest.approx(1.0)

    def test_duplicate_deliveries_not_double_counted(self):
        stats = TrialStats()
        stats.record_data_sent()
        stats.record_data_delivered(uid=7, latency=0.1)
        stats.record_data_delivered(uid=7, latency=0.2)
        summary = stats.summary()
        assert summary.data_delivered == 1
        assert summary.duplicate_deliveries == 1
        assert summary.delivery_ratio == pytest.approx(1.0)

    def test_network_load_normalised_by_delivered(self):
        stats = TrialStats()
        stats.record_data_sent()
        stats.record_data_delivered(uid=1, latency=0.1)
        for _ in range(5):
            stats.record_control_transmission()
        assert stats.summary().network_load == pytest.approx(5.0)

    def test_network_load_when_nothing_delivered(self):
        stats = TrialStats()
        for _ in range(10):
            stats.record_data_sent()
        for _ in range(20):
            stats.record_control_transmission()
        assert stats.summary().network_load == pytest.approx(2.0)

    def test_empty_trial_has_zero_metrics(self):
        summary = TrialStats().summary()
        assert summary.delivery_ratio == 0.0
        assert summary.network_load == 0.0
        assert summary.mean_latency == 0.0

    def test_per_node_rollups(self):
        stats = TrialStats()
        stats.record_mac_drops("a", 4)
        stats.record_mac_drops("b", 6)
        stats.record_sequence_number("a", 10)
        stats.record_sequence_number("b", 0)
        summary = stats.summary()
        assert summary.mac_drops_per_node == pytest.approx(5.0)
        assert summary.average_sequence_number == pytest.approx(5.0)


class TestNetworkAssembly:
    def test_build_network_creates_all_nodes(self):
        scenario = scaled_scenario(node_count=10, flow_count=2, duration=5.0)
        network = build_network(scenario, protocol_factory("SRP"))
        assert len(network.nodes) == 10
        for node in network.nodes.values():
            assert node.protocol is not None
            assert node.protocol.name == "SRP"

    def test_same_seed_same_traffic_across_protocols(self):
        scenario = scaled_scenario(node_count=12, flow_count=3, duration=10.0, seed=5)
        srp = build_network(scenario, protocol_factory("SRP"))
        aodv = build_network(scenario, protocol_factory("AODV"))
        srp_summary = srp.run()
        aodv_summary = aodv.run()
        # The offered load (packets sent) is identical: same flows, same times.
        assert srp_summary.data_sent == aodv_summary.data_sent
        assert [f.source for f in srp.traffic.flows] == [
            f.source for f in aodv.traffic.flows
        ]

    def test_run_trial_returns_summary(self):
        scenario = scaled_scenario(
            node_count=8,
            flow_count=2,
            duration=8.0,
            terrain_width=600,
            terrain_height=300,
        )
        summary = run_trial(scenario, protocol_factory("SRP"), static_positions=True)
        assert summary.data_sent > 0
        assert 0.0 <= summary.delivery_ratio <= 1.0

    def test_static_positions_disable_mobility(self):
        scenario = scaled_scenario(node_count=6, flow_count=1, duration=5.0)
        network = build_network(
            scenario, protocol_factory("SRP"), static_positions=True
        )
        node = next(iter(network.nodes.values()))
        start = node.position()
        network.run()
        assert node.position() == start


class TestLoopFreedomMonitor:
    def test_clean_dag_recording(self):
        monitor = LoopFreedomMonitor()
        monitor.record_successors(0.0, "T", "A", ["T"])
        monitor.record_successors(0.1, "T", "B", ["A", "T"])
        assert monitor.is_clean
        assert monitor.checks == 2

    def test_cycle_detected_and_reported(self):
        monitor = LoopFreedomMonitor()
        monitor.record_successors(0.0, "T", "A", ["B"])
        monitor.record_successors(1.0, "T", "B", ["A"])
        assert not monitor.is_clean
        violation = monitor.violations[0]
        assert violation.destination == "T"
        assert violation.time == 1.0

    def test_per_destination_graphs_are_independent(self):
        monitor = LoopFreedomMonitor()
        monitor.record_successors(0.0, "T1", "A", ["B"])
        monitor.record_successors(0.0, "T2", "B", ["A"])
        assert monitor.is_clean

    def test_successor_graph_snapshot(self):
        monitor = LoopFreedomMonitor()
        monitor.record_successors(0.0, "T", "A", ["T"])
        graph = monitor.successor_graph("T")
        assert set(graph.edges) == {("A", "T")}
