"""Finite-propagation-delay PHY: the delay=0 identity and arrival ordering.

The delayed channel (``Channel._transmit_delayed``) is a *model variant*,
not an optimisation: with ``propagation_delay_s_per_m > 0`` each receiver's
copy of a frame arrives at its own trailing edge ``end + delay * distance``,
which is what gives the windowed process mode a physical lookahead.  Its
contract therefore has two halves, both enforced here:

* **delay = 0 is the identity.**  Setting the field to its default value
  must leave every trial bit-identical to a scenario that never mentions
  it — summary and event count, all five protocols, clean and faulted,
  serial and sharded.  The instantaneous fast path must not even be
  perturbed by the new wiring.
* **delay > 0 orders arrivals by distance.**  A farther receiver never
  receives a frame before a nearer one, and each arrival lands exactly at
  ``airtime + delay * distance`` after the transmit instant.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.experiments.paper import EvaluationScale
from repro.protocols import protocol_factory
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import fault_preset
from repro.sim.network import build_network
from repro.sim.packet import Frame, Packet, PacketKind
from repro.sim.phy import SPEED_OF_LIGHT_DELAY_S_PER_M
from repro.sim.tuning import EngineTuning

import pytest

PROTOCOLS = ("SRP", "LDR", "AODV", "DSR", "OLSR")


def smoke_scenario(*, faulted=False):
    scenario = EvaluationScale.smoke().scenario
    if faulted:
        scenario = scenario.with_faults(fault_preset("churn-partition", scenario))
    return scenario


def run_serial(scenario, protocol, *, backend="serial", shards=0):
    tuning = (
        EngineTuning(engine_backend="sharded", shard_count=shards)
        if backend == "sharded"
        else EngineTuning()
    )
    network = build_network(scenario, protocol_factory(protocol), tuning=tuning)
    return network.run(), network.simulator.events_processed


# -- delay = 0 is the identity ----------------------------------------------------


class TestDelayZeroIdentity:
    @pytest.mark.parametrize("faulted", (False, True), ids=("clean", "faulted"))
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_explicit_zero_matches_default(self, protocol, faulted):
        scenario = smoke_scenario(faulted=faulted)
        baseline = run_serial(scenario, protocol)
        explicit = run_serial(scenario.with_propagation_delay(0.0), protocol)
        assert explicit == baseline

    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_sharded_zero_delay_matches_serial(self, shards):
        scenario = smoke_scenario().with_propagation_delay(0.0)
        baseline = run_serial(scenario, "SRP")
        sharded = run_serial(scenario, "SRP", backend="sharded", shards=shards)
        assert sharded == baseline

    def test_zero_delay_keeps_content_key(self):
        scenario = smoke_scenario()
        assert scenario.with_propagation_delay(0.0).to_dict() == scenario.to_dict()

    def test_nonzero_delay_changes_content_key(self):
        scenario = smoke_scenario()
        delayed = scenario.with_propagation_delay(SPEED_OF_LIGHT_DELAY_S_PER_M)
        assert delayed.to_dict() != scenario.to_dict()


# -- delay > 0 orders arrivals by distance ----------------------------------------


class _Stub:
    """A bare radio listener pinned at ``(x, 50.0)`` recording arrivals."""

    def __init__(self, node_id, x, log):
        self.node_id = node_id
        self._x = x
        self._log = log
        self._clock = None

    def bind_clock(self, simulator):
        self._clock = simulator

    def position(self):
        return (self._x, 50.0)

    def is_transmitting(self):
        return False

    def radio_receive(self, frame, transmitter):
        self._log.append((self._clock.now, self.node_id))


def _delayed_channel(delay, xs):
    """A serial channel at ``delay`` s/m with one stub per x in ``xs``."""
    phy = dataclasses.replace(
        EvaluationScale.smoke().scenario.phy, propagation_delay_s_per_m=delay
    )
    simulator = Simulator()
    channel = Channel(simulator, phy, max_node_speed=0.0)
    log = []
    for node_id, x in xs.items():
        stub = _Stub(node_id, x, log)
        stub.bind_clock(simulator)
        channel.attach(stub)
    return simulator, channel, log


def _broadcast(simulator, channel, transmitter="tx"):
    packet = Packet(
        kind=PacketKind.DATA,
        source=transmitter,
        destination="r1",
        size_bytes=256,
        created_at=0.0,
    )
    airtime = channel.transmit(transmitter, Frame(packet, transmitter, None))
    simulator.run()
    return airtime


class TestArrivalOrdering:
    DELAY = 1e-6  # exaggerated (300x light) so arrival gaps dominate ulps

    def test_farther_receiver_never_first(self):
        xs = {"tx": 0.0, "near": 50.0, "mid": 120.0, "far": 200.0}
        simulator, channel, log = _delayed_channel(self.DELAY, xs)
        airtime = _broadcast(simulator, channel)
        assert [node for _, node in log] == ["near", "mid", "far"]
        for when, node in log:
            assert when == pytest.approx(airtime + self.DELAY * xs[node])

    def test_zero_delay_arrivals_coincide(self):
        xs = {"tx": 0.0, "near": 50.0, "far": 200.0}
        simulator, channel, log = _delayed_channel(0.0, xs)
        airtime = _broadcast(simulator, channel)
        assert len(log) == 2
        for when, _ in log:
            assert when == pytest.approx(airtime)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=240.0),
            min_size=2,
            max_size=6,
            unique=True,
        )
    )
    def test_arrival_order_tracks_distance(self, distances):
        xs = {"tx": 0.0}
        xs.update({f"r{i}": x for i, x in enumerate(sorted(distances))})
        simulator, channel, log = _delayed_channel(self.DELAY, xs)
        _broadcast(simulator, channel)
        assert len(log) == len(distances)
        arrived = [node for _, node in log]
        assert arrived == sorted(arrived, key=lambda node: xs[node])
        times = [when for when, _ in log]
        assert times == sorted(times)
