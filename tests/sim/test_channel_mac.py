"""Tests for the wireless channel (collisions, carrier sense) and the MAC."""

import random

import pytest

from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.mac import Mac
from repro.sim.packet import Packet, PacketKind
from repro.sim.phy import PhyConfig


def make_packet(source, destination, *, kind=PacketKind.DATA, size=512):
    return Packet(
        kind=kind,
        source=source,
        destination=destination,
        size_bytes=size,
        created_at=0.0,
    )


class Harness:
    """A tiny fixed-position network of MACs wired to recording handlers."""

    def __init__(self, positions, phy=None):
        self.simulator = Simulator()
        self.phy = phy or PhyConfig()
        self.channel = Channel(self.simulator, self.phy)
        self.received = {node_id: [] for node_id in positions}
        self.failures = {node_id: [] for node_id in positions}
        self.macs = {}
        for node_id, position in positions.items():
            mac = Mac(
                node_id,
                self.simulator,
                self.channel,
                random.Random(node_id),
                position_provider=lambda p=position: p,
            )
            mac.set_handlers(
                lambda packet, sender, nid=node_id: self.received[nid].append(
                    (packet, sender)
                ),
                lambda packet, hop, nid=node_id: self.failures[nid].append(
                    (packet, hop)
                ),
            )
            self.macs[node_id] = mac


class TestPhyConfig:
    def test_transmission_time_scales_with_size(self):
        phy = PhyConfig()
        from repro.sim.packet import Frame

        small = Frame(make_packet("a", "b", size=64), "a", "b")
        large = Frame(make_packet("a", "b", size=1024), "a", "b")
        assert phy.transmission_time(large) > phy.transmission_time(small)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PhyConfig(bitrate_bps=0)
        with pytest.raises(ValueError):
            PhyConfig(reception_range=0)
        with pytest.raises(ValueError):
            PhyConfig(reception_range=300, carrier_sense_range=200)


class TestChannelGeometry:
    def test_neighbors_within_range(self):
        harness = Harness({"a": (0, 0), "b": (100, 0), "c": (1000, 0)})
        assert harness.channel.neighbors_of("a") == ["b"]
        assert harness.channel.in_range("a", "b")
        assert not harness.channel.in_range("a", "c")


class TestUnicastDelivery:
    def test_unicast_reaches_receiver(self):
        harness = Harness({"a": (0, 0), "b": (100, 0)})
        packet = make_packet("a", "b")
        harness.macs["a"].send(packet, "b")
        harness.simulator.run()
        assert len(harness.received["b"]) == 1
        assert harness.received["b"][0][1] == "a"
        assert harness.macs["a"].stats.delivered_unicasts == 1

    def test_unicast_not_delivered_to_third_party_handler(self):
        harness = Harness({"a": (0, 0), "b": (100, 0), "c": (50, 50)})
        harness.macs["a"].send(make_packet("a", "b"), "b")
        harness.simulator.run()
        # c hears the frame at the radio but the MAC filters it out.
        assert harness.received["c"] == []

    def test_unicast_out_of_range_reports_link_failure(self):
        harness = Harness({"a": (0, 0), "b": (1000, 0)})
        packet = make_packet("a", "b")
        harness.macs["a"].send(packet, "b")
        harness.simulator.run()
        assert harness.received["b"] == []
        assert harness.failures["a"] == [(packet, "b")]
        assert harness.macs["a"].stats.retry_drops == 1
        # The failed unicast was retried the full number of times.
        assert harness.macs["a"].stats.transmitted_frames == 1 + harness.phy.retry_limit

    def test_broadcast_reaches_all_in_range(self):
        harness = Harness({"a": (0, 0), "b": (100, 0), "c": (200, 0), "d": (900, 0)})
        harness.macs["a"].send(make_packet("a", "all", kind=PacketKind.CONTROL), None)
        harness.simulator.run()
        assert len(harness.received["b"]) == 1
        assert len(harness.received["c"]) == 1
        assert harness.received["d"] == []

    def test_broadcast_is_not_retried(self):
        harness = Harness({"a": (0, 0)})
        harness.macs["a"].send(make_packet("a", "all"), None)
        harness.simulator.run()
        assert harness.macs["a"].stats.transmitted_frames == 1
        assert harness.macs["a"].stats.retry_drops == 0


class TestQueueing:
    def test_queue_overflow_counts_as_mac_drop(self):
        phy = PhyConfig(max_queue_length=2)
        harness = Harness({"a": (0, 0), "b": (100, 0)}, phy=phy)
        for _ in range(5):
            harness.macs["a"].send(make_packet("a", "b"), "b")
        # The first two frames fit the queue; the remaining three are dropped.
        assert harness.macs["a"].stats.queue_drops == 3
        harness.simulator.run()
        assert harness.macs["a"].stats.drops >= 3

    def test_frames_are_serialised_one_at_a_time(self):
        harness = Harness({"a": (0, 0), "b": (100, 0)})
        for _ in range(3):
            harness.macs["a"].send(make_packet("a", "b"), "b")
        harness.simulator.run()
        assert len(harness.received["b"]) == 3


class TestCollisions:
    def test_simultaneous_transmissions_collide_at_receiver(self):
        """Two hidden terminals transmitting at the same instant collide at the
        node between them."""
        positions = {"left": (0, 0), "middle": (200, 0), "right": (400, 0)}
        phy = PhyConfig(reception_range=250, carrier_sense_range=250)
        harness = Harness(positions, phy=phy)
        # Bypass the MAC jitter by transmitting directly on the channel.
        from repro.sim.packet import Frame

        frame_left = Frame(make_packet("left", "middle"), "left", "middle")
        frame_right = Frame(make_packet("right", "middle"), "right", "middle")
        results = []
        harness.channel.transmit("left", frame_left, results.append)
        harness.channel.transmit("right", frame_right, results.append)
        harness.simulator.run()
        assert harness.received["middle"] == []
        assert results == [False, False]
        assert harness.channel.stats.collisions >= 2

    def test_carrier_sense_detects_nearby_transmission(self):
        harness = Harness({"a": (0, 0), "b": (100, 0), "c": (300, 0)})
        from repro.sim.packet import Frame

        harness.channel.transmit("a", Frame(make_packet("a", "b"), "a", "b"))
        assert harness.channel.is_busy_near("c")
        harness.simulator.run()
        assert not harness.channel.is_busy_near("c")

    def test_far_away_node_does_not_sense_carrier(self):
        harness = Harness({"a": (0, 0), "far": (5000, 0)})
        from repro.sim.packet import Frame

        harness.channel.transmit("a", Frame(make_packet("a", "x"), "a", "x"))
        assert not harness.channel.is_busy_near("far")
