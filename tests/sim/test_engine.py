"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_in(2.0, lambda: order.append("late"))
        sim.schedule_in(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 2.0

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        order = []
        for label in ["a", "b", "c"]:
            sim.schedule_in(1.0, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule_in(1.0, lambda: order.append("low"), priority=5)
        sim.schedule_in(1.0, lambda: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule_in(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule_in(1.0, lambda: seen.append(sim.now))

        sim.schedule_in(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(1.0, lambda: fired.append(1))
        sim.schedule_in(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        # The late event survives for a later run() call.
        sim.run()
        assert fired == [1, 2]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_in(1.0, lambda: fired.append("cancelled"))
        sim.schedule_in(2.0, lambda: fired.append("kept"))
        event.cancel()
        sim.run()
        assert fired == ["kept"]

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_in(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_step_executes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(1.0, lambda: fired.append(1))
        sim.schedule_in(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert not sim.step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule_in(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5
