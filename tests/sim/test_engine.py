"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_in(2.0, lambda: order.append("late"))
        sim.schedule_in(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 2.0

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        order = []
        for label in ["a", "b", "c"]:
            sim.schedule_in(1.0, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule_in(1.0, lambda: order.append("low"), priority=5)
        sim.schedule_in(1.0, lambda: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule_in(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule_in(1.0, lambda: seen.append(sim.now))

        sim.schedule_in(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(1.0, lambda: fired.append(1))
        sim.schedule_in(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        # The late event survives for a later run() call.
        sim.run()
        assert fired == [1, 2]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_in(1.0, lambda: fired.append("cancelled"))
        sim.schedule_in(2.0, lambda: fired.append("kept"))
        event.cancel()
        sim.run()
        assert fired == ["kept"]

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_in(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_step_executes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(1.0, lambda: fired.append(1))
        sim.schedule_in(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert not sim.step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule_in(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        events = [sim.schedule_in(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending_events == 4
        events[0].cancel()
        events[2].cancel()
        assert sim.pending_events == 2

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule_in(1.0, lambda: None)
        sim.schedule_in(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events == 1

    def test_pending_events_accurate_after_run_drains_tombstones(self):
        sim = Simulator()
        keep = sim.schedule_in(5.0, lambda: None)
        for i in range(10):
            sim.schedule_in(1.0 + i * 0.1, lambda: None).cancel()
        assert sim.pending_events == 1
        sim.run(until=3.0)
        assert sim.pending_events == 1
        keep.cancel()
        assert sim.pending_events == 0

    def test_cancel_after_firing_does_not_corrupt_count(self):
        sim = Simulator()
        fired = sim.schedule_in(1.0, lambda: None)
        sim.schedule_in(2.0, lambda: None)
        sim.run(until=1.5)
        fired.cancel()  # too late: it already ran
        assert sim.pending_events == 1

    def test_cancel_releases_callback_reference_immediately(self):
        import weakref

        class Payload:
            pass

        sim = Simulator()
        payload = Payload()
        ref = weakref.ref(payload)
        event = sim.schedule_in(1.0, lambda: payload)
        event.cancel()
        del payload
        # The tombstone is still queued, but the closure is gone.
        assert sim.pending_events == 0
        assert ref() is None

    def test_fired_event_releases_callback_reference(self):
        import weakref

        class Payload:
            pass

        sim = Simulator()
        payload = Payload()
        ref = weakref.ref(payload)
        sim.schedule_at(1.0, lambda: payload)
        later = sim.schedule_at(10.0, lambda: None)
        sim.run(until=5.0)
        del payload
        assert ref() is None
        later.cancel()

    def test_step_skips_cancelled_and_updates_count(self):
        sim = Simulator()
        cancelled = sim.schedule_in(1.0, lambda: None)
        sim.schedule_in(2.0, lambda: None)
        cancelled.cancel()
        assert sim.step()
        assert sim.now == 2.0
        assert sim.pending_events == 0
        assert not sim.step()


class TestCallIn:
    def test_call_in_orders_with_events(self):
        sim = Simulator()
        order = []
        sim.call_in(2.0, lambda: order.append("late"))
        sim.schedule_in(1.0, lambda: order.append("early"))
        sim.call_in(1.0, lambda: order.append("early-fifo-second"))
        sim.run()
        assert order == ["early", "early-fifo-second", "late"]

    def test_call_in_respects_priority(self):
        sim = Simulator()
        order = []
        sim.call_in(1.0, lambda: order.append("low"), 5)
        sim.call_in(1.0, lambda: order.append("high"), 0)
        sim.run()
        assert order == ["high", "low"]

    def test_call_in_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_in(-0.5, lambda: None)

    def test_call_in_counts_as_pending(self):
        sim = Simulator()
        sim.call_in(1.0, lambda: None)
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0

    def test_call_in_beyond_until_survives_for_later_run(self):
        sim = Simulator()
        fired = []
        sim.call_in(10.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == []
        sim.run()
        assert fired == [1]
