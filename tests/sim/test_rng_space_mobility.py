"""Tests for random streams, terrain geometry and mobility models."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.mobility import RandomWaypointMobility, StaticMobility
from repro.sim.rng import RngStreams, derive_seed
from repro.sim.space import Position, Terrain


class TestRngStreams:
    def test_same_seed_and_name_same_sequence(self):
        a = RngStreams(42).get("mobility")
        b = RngStreams(42).get("mobility")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RngStreams(42)
        assert streams.get("mobility").random() != streams.get("traffic").random()

    def test_get_returns_same_object(self):
        streams = RngStreams(1)
        assert streams.get("x") is streams.get("x")

    def test_derive_seed_is_stable_and_distinct(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_spawn_creates_independent_family(self):
        parent = RngStreams(7)
        child = parent.spawn("trial")
        assert parent.get("x").random() != child.get("x").random()


class TestPositionAndTerrain:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_interpolate(self):
        mid = Position(0, 0).interpolate(Position(10, 10), 0.5)
        assert (mid.x, mid.y) == (5.0, 5.0)

    def test_interpolate_clamps_fraction(self):
        assert Position(0, 0).interpolate(Position(10, 0), 2.0) == Position(10, 0)

    def test_terrain_contains_and_clamp(self):
        terrain = Terrain(100, 50)
        assert terrain.contains(Position(50, 25))
        assert not terrain.contains(Position(150, 25))
        assert terrain.clamp(Position(150, -10)) == Position(100, 0)

    def test_terrain_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            Terrain(0, 10)

    def test_random_position_inside(self):
        terrain = Terrain(2200, 600)
        rng = random.Random(1)
        for _ in range(100):
            assert terrain.contains(terrain.random_position(rng))

    def test_diagonal(self):
        assert Terrain(3, 4).diagonal == pytest.approx(5.0)


class TestStaticMobility:
    def test_position_is_constant(self):
        model = StaticMobility(Position(10, 20))
        assert model.position_at(0.0) == Position(10, 20)
        assert model.position_at(1000.0) == Position(10, 20)


class TestRandomWaypointMobility:
    def _model(self, pause_time=0.0, seed=1, max_speed=20.0):
        terrain = Terrain(1000, 500)
        return RandomWaypointMobility(
            terrain,
            random.Random(seed),
            max_speed=max_speed,
            pause_time=pause_time,
        )

    def test_positions_stay_in_terrain(self):
        model = self._model()
        terrain = Terrain(1000, 500)
        for t in range(0, 900, 10):
            assert terrain.contains(model.position_at(float(t)))

    def test_deterministic_given_seed(self):
        a, b = self._model(seed=7), self._model(seed=7)
        for t in (0.0, 10.0, 100.0, 500.0):
            assert a.position_at(t) == b.position_at(t)

    def test_pause_time_keeps_node_still(self):
        model = self._model(pause_time=50.0)
        start = model.position_at(0.0)
        assert model.position_at(25.0) == start
        assert model.position_at(49.0) == start

    def test_movement_happens_after_pause(self):
        model = self._model(pause_time=5.0)
        start = model.position_at(0.0)
        later = model.position_at(200.0)
        assert (start.x, start.y) != (later.x, later.y)

    def test_speed_bound_respected(self):
        model = self._model(max_speed=20.0)
        previous = model.position_at(0.0)
        for t in range(1, 300):
            current = model.position_at(float(t))
            assert previous.distance_to(current) <= 20.0 + 1e-6
            previous = current

    def test_rejects_bad_parameters(self):
        terrain = Terrain(100, 100)
        with pytest.raises(ValueError):
            RandomWaypointMobility(terrain, random.Random(1), max_speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(terrain, random.Random(1), pause_time=-1.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                terrain, random.Random(1), min_speed=30.0, max_speed=20.0
            )

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            self._model().position_at(-1.0)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_any_query_time_is_valid(self, time, seed):
        """Property: the lazily extended trace always covers the query and the
        result is inside the terrain (no degenerate-leg infinite loops)."""
        terrain = Terrain(500, 200)
        model = RandomWaypointMobility(
            terrain, random.Random(seed), max_speed=20.0, pause_time=0.0
        )
        assert terrain.contains(model.position_at(float(time)))
