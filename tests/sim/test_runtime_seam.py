"""The Runtime-seam refactor must be invisible to the simulator.

``golden_seed_summaries.json`` was captured from the tree *before* the
:mod:`repro.runtime` seam existed (protocols talked to a concrete
``Simulator``/``Node`` pair).  These tests re-run the same smoke-scale cells
through the refactored stack and require bit-identical ``TrialSummary``
dicts *and* engine event counts — the API redesign's "all five protocols
stay bit-identical" acceptance criterion, pinned to concrete numbers rather
than an off/on self-comparison.

They double as the conformance suite for the seam itself: the simulator
must satisfy :class:`~repro.runtime.base.Clock` structurally and ``Node``
must be a :class:`~repro.runtime.base.Runtime`.
"""

import json
import random
from pathlib import Path

import pytest

from repro.experiments.paper import EvaluationScale
from repro.protocols import protocol_factory
from repro.runtime.base import Clock, Runtime, TimerHandle
from repro.sim.engine import Simulator
from repro.sim.network import build_network

GOLDEN_PATH = Path(__file__).parent / "golden_seed_summaries.json"


def _golden_cells():
    with GOLDEN_PATH.open() as f:
        data = json.load(f)
    assert data["scale"] == "smoke"
    return data["cells"]


GOLDEN_CELLS = _golden_cells()


@pytest.mark.parametrize("cell_key", sorted(GOLDEN_CELLS))
def test_summary_bit_identical_to_pre_seam_capture(cell_key):
    protocol, _, pause_part = cell_key.partition(":pause=")
    pause = float(pause_part)
    scenario = EvaluationScale.smoke().scenario.with_pause_time(pause)
    net = build_network(scenario, protocol_factory(protocol))
    summary = net.run()
    expected = GOLDEN_CELLS[cell_key]
    assert summary.to_dict() == expected["summary"]
    assert net.simulator.events_processed == expected["events_processed"]


def test_golden_file_covers_all_five_protocols_and_both_pauses():
    protocols = {key.split(":")[0] for key in GOLDEN_CELLS}
    assert protocols == {"SRP", "LDR", "AODV", "DSR", "OLSR"}
    assert len(GOLDEN_CELLS) == 10


class TestRuntimeConformance:
    def test_simulator_satisfies_clock_protocol(self):
        sim = Simulator()
        assert isinstance(sim, Clock)
        handle = sim.schedule_in(1.0, lambda: None)
        assert isinstance(handle, TimerHandle)
        handle.cancel()

    def test_node_is_a_runtime_with_the_simulator_as_clock(self):
        scenario = EvaluationScale.smoke().scenario
        net = build_network(scenario, protocol_factory("SRP"))
        node = next(iter(net.nodes.values()))
        assert isinstance(node, Runtime)
        assert node.clock is net.simulator

    def test_node_rng_is_seed_deterministic(self):
        scenario = EvaluationScale.smoke().scenario
        nets = [
            build_network(scenario, protocol_factory("SRP")) for _ in range(2)
        ]
        draws = []
        for net in nets:
            node = net.nodes[0]
            rng = node.rng("test-stream")
            assert isinstance(rng, random.Random)
            draws.append([rng.random() for _ in range(4)])
        assert draws[0] == draws[1]

    def test_protocol_clock_accessor_is_the_runtime_clock(self):
        scenario = EvaluationScale.smoke().scenario
        net = build_network(scenario, protocol_factory("OLSR"))
        node = next(iter(net.nodes.values()))
        assert node.protocol.clock is node.clock
        # Backward-compatible alias kept during the transition.
        assert node.protocol.simulator is node.clock
