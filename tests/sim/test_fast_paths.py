"""Optimization-equivalence tests: every fast path is exact.

PR 5's contract (the same one PR 1 made for the spatial index): for a fixed
seed, a trial produces a **bit-identical** :class:`TrialSummary` with every
hot-path optimization enabled or disabled — the fast paths change how fast
the answer arrives, never the answer.  These tests enforce that contract at
smoke scale for all five protocols, for each fast path in isolation, and for
the OLSR incremental-routing flag that lives in the protocol config.
"""

import random

import pytest

from repro.experiments.paper import EvaluationScale
from repro.protocols import protocol_factory
from repro.protocols.olsr import OlsrConfig, OlsrProtocol
from repro.sim.network import build_network, run_trial
from repro.sim.packet import Frame, Packet, PacketKind
from repro.sim.tuning import FastPaths
from repro.workloads.scenario import scaled_scenario

PROTOCOLS = ("SRP", "LDR", "AODV", "DSR", "OLSR")

FLAG_NAMES = (
    "mobility_segments",
    "reception_memo",
    "busy_cache",
    "fast_backoff",
    "frame_pool",
    "airtime_memo",
    "grid_prefilter",
    "batch_receptions",
)


def smoke_scenario(pause_time: float = 0.0):
    return EvaluationScale.smoke().scenario.with_pause_time(pause_time)


class TestTrialEquivalence:
    """Whole-trial bit-identity, the acceptance property."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_all_fast_paths_off_vs_on(self, protocol):
        scenario = smoke_scenario()
        off = build_network(
            scenario, protocol_factory(protocol), fast_paths=FastPaths.none()
        )
        summary_off = off.run()
        on = build_network(
            scenario, protocol_factory(protocol), fast_paths=FastPaths()
        )
        summary_on = on.run()
        assert summary_off == summary_on
        # Same simulation, event for event — not merely the same headline
        # numbers.
        assert off.simulator.events_processed == on.simulator.events_processed

    @pytest.mark.parametrize("flag", FLAG_NAMES)
    def test_each_fast_path_alone(self, flag):
        """Each flag toggled on by itself matches the all-off reference.

        Uses OLSR (the densest trial: saturated channel, floods, constant
        route churn) so every fast path is actually exercised.
        """
        scenario = smoke_scenario()
        reference = run_trial(
            scenario, protocol_factory("OLSR"), fast_paths=FastPaths.none()
        )
        single = run_trial(
            scenario, protocol_factory("OLSR"), fast_paths=FastPaths.only(flag)
        )
        assert single == reference, f"fast path {flag} changed the trial"

    @pytest.mark.parametrize("pause_time", [0.0, 25.0])
    def test_pause_time_extremes(self, pause_time):
        """Paused nodes exercise the zero-drift certification paths."""
        scenario = smoke_scenario(pause_time)
        for protocol in ("SRP", "OLSR"):
            off = run_trial(
                scenario, protocol_factory(protocol), fast_paths=FastPaths.none()
            )
            on = run_trial(scenario, protocol_factory(protocol))
            assert off == on

    def test_static_positions_trials_match(self):
        scenario = scaled_scenario(
            node_count=12, flow_count=3, duration=15.0, seed=5
        )
        off = run_trial(
            scenario,
            protocol_factory("SRP"),
            static_positions=True,
            fast_paths=FastPaths.none(),
        )
        on = run_trial(
            scenario, protocol_factory("SRP"), static_positions=True
        )
        assert off == on

    def test_incremental_olsr_routing_is_exact(self):
        scenario = smoke_scenario()
        incremental = run_trial(
            scenario, lambda nid: OlsrProtocol(OlsrConfig(incremental_routes=True))
        )
        full = run_trial(
            scenario,
            lambda nid: OlsrProtocol(OlsrConfig(incremental_routes=False)),
        )
        assert incremental == full


class TestFastPathsFlags:
    def test_none_disables_everything(self):
        none = FastPaths.none()
        assert not any(getattr(none, flag) for flag in FLAG_NAMES)

    def test_only_enables_exactly_the_named_flags(self):
        only = FastPaths.only("busy_cache", "frame_pool")
        assert only.busy_cache and only.frame_pool
        assert not only.fast_backoff and not only.mobility_segments

    def test_only_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown fast paths"):
            FastPaths.only("warp_drive")

    def test_default_is_all_on(self):
        default = FastPaths()
        assert all(getattr(default, flag) for flag in FLAG_NAMES)


class TestPrimitiveEquivalence:
    """The primitives behind the flags, exercised directly."""

    def test_inlined_randbelow_matches_randint(self):
        """The MAC's inlined rejection loop consumes the identical
        getrandbits draws as random.Random.randint."""
        for window in (16, 32, 1024):
            reference = random.Random(99)
            fast = random.Random(99)
            defer_bits = window.bit_length()
            jitter_n = window + 1
            jitter_bits = jitter_n.bit_length()
            getrandbits = fast.getrandbits
            for _ in range(500):
                expected = reference.randint(1, window)
                r = getrandbits(defer_bits)
                while r >= window:
                    r = getrandbits(defer_bits)
                assert 1 + r == expected
                expected = reference.randint(0, window)
                r = getrandbits(jitter_bits)
                while r >= jitter_n:
                    r = getrandbits(jitter_bits)
                assert r == expected

    def test_airtime_memo_matches_phy(self):
        from repro.sim.channel import Channel
        from repro.sim.engine import Simulator
        from repro.sim.phy import PhyConfig

        phy = PhyConfig()
        channel = Channel(Simulator(), phy)
        for size in (52, 44, 512, 512, 52):
            frame = Frame(
                packet=Packet(
                    kind=PacketKind.DATA,
                    source=0,
                    destination=1,
                    size_bytes=size,
                    created_at=0.0,
                ),
                transmitter=0,
                receiver=1,
            )
            assert channel.airtime(frame) == phy.transmission_time(frame)

    def test_segment_table_matches_waypoint_interpolation(self):
        from repro.sim.mobility import RandomWaypointMobility
        from repro.sim.space import Terrain

        terrain = Terrain(900.0, 400.0)
        with_table = RandomWaypointMobility(
            terrain, random.Random(7), pause_time=2.0, use_segment_table=True
        )
        without = RandomWaypointMobility(
            terrain, random.Random(7), pause_time=2.0, use_segment_table=False
        )
        times = [random.Random(3).uniform(0, 300) for _ in range(200)]
        # Sorted plus revisits: the trace extends lazily either way.
        for t in sorted(times) + times[:20]:
            assert with_table.position_at_xy(t) == without.position_at_xy(t)
            point = with_table.position_at(t)
            assert with_table.position_at_xy(t) == (point.x, point.y)

    def test_segment_for_covers_and_evaluates_exactly(self):
        from repro.sim.mobility import RandomWaypointMobility
        from repro.sim.space import Terrain

        model = RandomWaypointMobility(
            Terrain(900.0, 400.0), random.Random(11), pause_time=1.0
        )
        rng = random.Random(13)
        for _ in range(200):
            t = rng.uniform(0, 200)
            segment = model.segment_for(t)
            valid_from, depart, arrival, sx, sy, ex, ey = segment
            assert valid_from <= t <= arrival
            # Evaluate the inlined expressions the channel uses.
            if t <= depart:
                position = (sx, sy)
            elif t >= arrival:
                position = (ex, ey)
            else:
                travel = arrival - depart
                fraction = (t - depart) / travel if travel > 0 else 1.0
                fraction = min(max(fraction, 0.0), 1.0)
                position = (sx + (ex - sx) * fraction, sy + (ey - sy) * fraction)
            assert position == model.position_at_xy(t)

    def test_bulk_positions_at_matches_per_model_queries(self):
        from repro.sim.mobility import (
            RandomWaypointMobility,
            StaticMobility,
            bulk_positions_at,
        )
        from repro.sim.space import Position, Terrain

        terrain = Terrain(900.0, 400.0)
        models = {
            "a": RandomWaypointMobility(terrain, random.Random(1)),
            "b": RandomWaypointMobility(terrain, random.Random(2), pause_time=5.0),
            "c": StaticMobility(Position(1.0, 2.0)),
        }
        for t in (0.0, 3.7, 42.0):
            snapshot = bulk_positions_at(models, t)
            assert snapshot == {
                name: model.position_at_xy(t) for name, model in models.items()
            }

    def test_static_mobility_segment_is_eternal_pause(self):
        from repro.sim.mobility import StaticMobility
        from repro.sim.space import Position

        model = StaticMobility(Position(12.0, 34.0))
        segment = model.segment_for(5.0)
        assert segment[0] == 0.0 and segment[1] == float("inf")
        assert (segment[3], segment[4]) == (12.0, 34.0)

    def test_frame_reinit_repurposes_in_place(self):
        packet_a = Packet(PacketKind.DATA, 0, 1, 100, 0.0)
        packet_b = Packet(PacketKind.CONTROL, 2, 3, 52, 1.0)
        frame = Frame(packet=packet_a, transmitter=0, receiver=1, enqueued_at=0.0)
        original_uid = frame.uid
        same = frame.reinit(packet_b, 2, 3, 1.5)
        assert same is frame
        assert frame.packet is packet_b
        assert frame.transmitter == 2 and frame.receiver == 3
        assert frame.enqueued_at == 1.5
        assert frame.uid != original_uid

    def test_copy_for_forwarding_shares_uid_and_fields(self):
        packet = Packet(
            PacketKind.DATA, 4, 9, 512, 2.5, payload="x", flow_id=7, hops=3
        )
        copy = packet.copy_for_forwarding()
        assert copy is not packet
        assert copy == packet

    def test_rreq_cache_expiry_prefix_scan(self):
        """Entries are created in time order, so the prefix scan drops
        exactly the stale ones."""
        from repro.protocols.common import RreqCache

        cache = RreqCache(max_age=10.0)
        for i in range(5):
            cache.activate(source=i, rreq_id=i, now=float(i))
        cache.expire(now=12.5)  # ages 12.5..8.5 -> the first three are stale
        assert len(cache) == 2
        for stale in (0, 1, 2):
            assert cache.get(stale, stale) is None
        assert cache.get(3, 3) is not None and cache.get(4, 4) is not None
