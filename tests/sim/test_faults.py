"""The chaos layer: deterministic fault injection into the simulation.

PR 6's sim-side contract, in three parts:

* **Off-path**: a scenario with no fault specs builds a network with no
  fault machinery installed, serializes to the exact dict (and hence job
  content key) it had before the chaos layer existed, and produces the same
  trials.
* **Exactness under faults**: a *faulted* trial is still a pure function of
  its scenario — bit-identical across FastPaths on/off (the same contract
  ``test_fast_paths.py`` enforces for clean trials) and across repeated runs.
* **Physics**: crashed nodes stop transmitting and receiving, blackouts
  silence the channel, partitions split the terrain, and the resilience
  counters (during/post-fault delivery, route-recovery time, heal burst)
  measure what they claim to.
"""

import pytest

from repro.experiments.paper import EvaluationScale
from repro.protocols import protocol_factory
from repro.sim.faults import (
    FAULT_PRESETS,
    FaultSchedule,
    FaultSpec,
    fault_preset,
)
from repro.sim.network import build_network, run_trial
from repro.sim.tuning import FastPaths
from repro.workloads.scenario import Scenario, scaled_scenario

PROTOCOLS = ("SRP", "LDR", "AODV", "DSR", "OLSR")


def smoke_scenario(pause_time: float = 0.0) -> Scenario:
    return EvaluationScale.smoke().scenario.with_pause_time(pause_time)


def churned(scenario: Scenario) -> Scenario:
    return scenario.with_faults(fault_preset("churn-partition", scenario))


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="meteor", start=1.0, duration=1.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSpec.blackout(start=1.0, duration=0.0)

    def test_node_crash_requires_node(self):
        with pytest.raises(ValueError, match="node"):
            FaultSpec(kind="node_crash", start=1.0, duration=1.0)

    def test_partition_requires_boundary(self):
        with pytest.raises(ValueError, match="boundary"):
            FaultSpec(kind="partition", start=1.0, duration=1.0)

    def test_loss_burst_requires_rate_in_unit_interval(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultSpec.loss_burst(drop_rate=1.5, start=1.0, duration=1.0)

    def test_round_trips_through_dict(self):
        spec = FaultSpec.node_crash(node=3, start=2.5, duration=4.0)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        data = FaultSpec.blackout(start=1.0, duration=1.0).to_dict()
        data["severity"] = "bad"
        with pytest.raises(ValueError, match="severity"):
            FaultSpec.from_dict(data)


class TestScenarioSerialization:
    def test_fault_free_dict_is_unchanged(self):
        """No ``faults`` key when empty: content keys of every pre-existing
        sweep cell survive the chaos layer."""
        assert "faults" not in smoke_scenario().to_dict()

    def test_faulted_scenario_round_trips(self):
        scenario = churned(smoke_scenario())
        restored = Scenario.from_dict(scenario.to_dict())
        assert restored == scenario
        assert restored.faults == scenario.faults

    def test_faults_change_the_serialized_identity(self):
        clean = smoke_scenario()
        assert churned(clean).to_dict() != clean.to_dict()

    def test_presets_cover_every_registered_name(self):
        scenario = smoke_scenario()
        for name in FAULT_PRESETS:
            specs = fault_preset(name, scenario)
            assert specs, name
            assert all(isinstance(spec, FaultSpec) for spec in specs)
        with pytest.raises(ValueError, match="preset"):
            fault_preset("nope", scenario)


class TestOffPath:
    def test_no_faults_installs_nothing(self):
        network = build_network(smoke_scenario(), protocol_factory("SRP"))
        assert network.channel._faults is None
        assert all(not node.is_down for node in network.nodes.values())

    def test_empty_schedule_is_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(())


class TestExactnessUnderFaults:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_fast_paths_off_vs_on_bit_identical(self, protocol):
        """The clean-trial exactness contract extends to faulted trials."""
        scenario = churned(smoke_scenario())
        off = build_network(
            scenario, protocol_factory(protocol), fast_paths=FastPaths.none()
        )
        summary_off = off.run()
        on = build_network(
            scenario, protocol_factory(protocol), fast_paths=FastPaths()
        )
        summary_on = on.run()
        assert summary_off == summary_on
        assert off.simulator.events_processed == on.simulator.events_processed

    def test_faulted_trial_is_deterministic(self):
        scenario = churned(smoke_scenario())
        first = run_trial(scenario, protocol_factory("AODV"))
        second = run_trial(scenario, protocol_factory("AODV"))
        assert first == second

    def test_faults_actually_change_the_trial(self):
        clean = run_trial(smoke_scenario(), protocol_factory("SRP"))
        faulted = run_trial(churned(smoke_scenario()), protocol_factory("SRP"))
        assert faulted.data_delivered < clean.data_delivered


class TestFaultPhysics:
    def _tiny(self, **kwargs) -> Scenario:
        return scaled_scenario(
            node_count=6, flow_count=2, duration=10.0, seed=11
        ).with_pause_time(kwargs.pop("pause_time", 10.0))

    def test_crashed_node_goes_down_and_recovers(self):
        scenario = self._tiny().with_faults(
            [FaultSpec.node_crash(node=1, start=2.0, duration=3.0)]
        )
        network = build_network(scenario, protocol_factory("SRP"))
        node = network.nodes[1]
        network.simulator.schedule_at(3.0, lambda: flags.append(node.is_down))
        network.simulator.schedule_at(6.0, lambda: flags.append(node.is_down))
        flags = []
        network.run()
        assert flags == [True, False]

    def test_crash_drops_queued_frames_into_fault_counter(self):
        import random as random_module

        from repro.sim.channel import Channel
        from repro.sim.engine import Simulator
        from repro.sim.mac import Mac
        from repro.sim.packet import Packet, PacketKind
        from repro.sim.phy import PhyConfig

        simulator = Simulator()
        channel = Channel(simulator, PhyConfig())
        mac = Mac(
            "a",
            simulator,
            channel,
            random_module.Random(1),
            position_provider=lambda: (0.0, 0.0),
        )
        mac.set_handlers(lambda *args: None, lambda *args: None)
        for _ in range(3):
            mac.send(
                Packet(
                    kind=PacketKind.DATA,
                    source="a",
                    destination="b",
                    size_bytes=512,
                    created_at=0.0,
                ),
                "b",
            )
        drops_before = mac.stats.drops
        mac.power_down()
        # No event has run yet, so all three frames were still queued; the
        # queue losses land in the chaos counter, never in Fig. 3's metric.
        assert mac.stats.fault_drops == 3
        assert mac.stats.drops == drops_before
        # Sends while down are suppressed and counted the same way.
        mac.send(
            Packet(
                kind=PacketKind.DATA,
                source="a",
                destination="b",
                size_bytes=512,
                created_at=0.0,
            ),
            "b",
        )
        assert mac.stats.fault_drops == 4

    def test_blackout_suppresses_all_receptions(self):
        scenario = self._tiny().with_faults(
            [FaultSpec.blackout(start=0.0, duration=10.0)]
        )
        network = build_network(scenario, protocol_factory("SRP"))
        summary = network.run()
        assert summary.data_delivered == 0
        assert network.channel.stats.fault_suppressed > 0

    def test_partition_blocks_only_straddling_links(self):
        # All nodes static (pause = duration); boundary at mid-terrain.
        scenario = self._tiny().with_faults(
            [
                FaultSpec.partition(
                    boundary_x=EvaluationScale.smoke().scenario.terrain_width,
                    start=0.0,
                    duration=10.0,
                )
            ]
        )
        # Boundary beyond every node's x: nothing straddles, nothing blocked.
        network = build_network(scenario, protocol_factory("SRP"))
        network.run()
        assert network.channel.stats.fault_suppressed == 0

    def test_loss_burst_drops_a_fraction_of_receptions(self):
        scenario = self._tiny().with_faults(
            [FaultSpec.loss_burst(drop_rate=1.0, start=0.0, duration=10.0)]
        )
        network = build_network(scenario, protocol_factory("SRP"))
        summary = network.run()
        assert summary.data_delivered == 0
        assert network.channel.stats.fault_suppressed > 0


class TestResilienceMetrics:
    def test_phase_counters_partition_the_traffic(self):
        scenario = churned(smoke_scenario())
        summary = run_trial(scenario, protocol_factory("SRP"))
        assert summary.data_sent_during_fault > 0
        assert summary.data_sent_post_fault > 0
        assert (
            summary.data_sent_during_fault + summary.data_sent_post_fault
            <= summary.data_sent
        )
        assert 0.0 <= summary.delivery_ratio_during_fault <= 1.0
        assert 0.0 <= summary.delivery_ratio_post_fault <= 1.0

    def test_route_recovery_time_measured_from_heal(self):
        scenario = churned(smoke_scenario())
        summary = run_trial(scenario, protocol_factory("SRP"))
        assert summary.route_recovery_time >= 0.0
        schedule = FaultSchedule(scenario.faults)
        assert summary.route_recovery_time < scenario.duration - (
            schedule.heal_time() - 1.0
        )

    def test_clean_trial_reports_neutral_resilience_values(self):
        summary = run_trial(smoke_scenario(), protocol_factory("SRP"))
        assert summary.data_sent_during_fault == 0
        assert summary.delivery_ratio_during_fault == 0.0
        assert summary.route_recovery_time == -1.0
        assert summary.control_burst_on_heal == 0

    def test_srp_sequence_numbers_zero_under_churn(self):
        """The paper's headline claim survives crash/recover cycles."""
        scenario = churned(smoke_scenario())
        summary = run_trial(scenario, protocol_factory("SRP"))
        assert summary.average_sequence_number == 0.0


class TestScheduleGeometry:
    def test_activity_windows_merge_overlaps(self):
        schedule = FaultSchedule(
            [
                FaultSpec.blackout(start=1.0, duration=2.0),
                FaultSpec.blackout(start=2.0, duration=2.0),
                FaultSpec.blackout(start=6.0, duration=1.0),
            ]
        )
        assert schedule.activity_windows() == ((1.0, 4.0), (6.0, 7.0))
        assert schedule.heal_time() == 7.0

    def test_install_rejects_unknown_crash_node(self):
        scenario = self_tiny = scaled_scenario(
            node_count=4, flow_count=1, duration=5.0
        ).with_faults([FaultSpec.node_crash(node=99, start=1.0, duration=1.0)])
        with pytest.raises(ValueError, match="99"):
            build_network(self_tiny, protocol_factory("SRP"))
