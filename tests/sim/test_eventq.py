"""Calendar-queue exactness: oracle equivalence and whole-trial bit-identity.

The calendar queue's correctness contract (``repro.sim.eventq``) is total:
pop order is fully determined by the ``(time, priority, sequence)`` prefix,
so a correct queue is indistinguishable from the reference binary heap —
not statistically, *entry for entry*.  This module enforces the contract at
three levels:

1. **Structure level** — property-based workloads (hypothesis) drive a
   :class:`CalendarQueue` and a ``heapq`` list through identical push/pop
   interleavings, including negative priorities (fault-schedule flips),
   same-timestamp ties and resize-triggering bursts.
2. **Engine level** — cancel-then-refire timer churn and the
   ``pending_events`` bookkeeping, on both queue flavours.
3. **Trial level** — the acceptance matrix: all five protocols, clean and
   faulted, FastPaths off and on, must produce bit-identical
   :class:`TrialSummary` objects and event counts under either queue; plus
   the frozen-MAC model's own invariance across queues and FastPaths.
"""

import heapq
import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.paper import EvaluationScale
from repro.protocols import protocol_factory
from repro.sim.engine import Simulator
from repro.sim.eventq import CalendarQueue
from repro.sim.faults import fault_preset
from repro.sim.network import build_network
from repro.sim.tuning import EngineTuning, FastPaths

PROTOCOLS = ("SRP", "LDR", "AODV", "DSR", "OLSR")


# -- structure-level oracle ------------------------------------------------------


def drain(queue):
    out = []
    while True:
        entry = queue.pop()
        if entry is None:
            return out
        out.append(entry)


#: Times drawn from a *small* grid as well as a continuum, so same-timestamp
#: collisions (where ordering falls to priority, then sequence) are common
#: rather than measure-zero.
times = st.one_of(
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False, width=32),
    st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.5, 100.0, 100.0]),
)
priorities = st.sampled_from([-1, 0, 0, 1, 2])


@st.composite
def workloads(draw):
    """A randomized interleaving of pushes and pops.

    Pushes carry monotonically increasing sequence numbers, exactly like the
    engine's; pops may interleave anywhere (the engine pops while callbacks
    push).
    """
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=120))):
        if draw(st.booleans()):
            ops.append(("push", draw(times), draw(priorities)))
        else:
            ops.append(("pop",))
    return ops


class TestCalendarOracle:
    @given(workloads())
    @settings(max_examples=200, deadline=None)
    def test_interleaved_ops_match_heap(self, ops):
        calendar = CalendarQueue()
        heap = []
        seq = itertools.count()
        for op in ops:
            if op[0] == "push":
                entry = (op[1], op[2], next(seq), None)
                calendar.push(entry)
                heapq.heappush(heap, entry)
                assert len(calendar) == len(heap)
            else:
                expected = heapq.heappop(heap) if heap else None
                assert calendar.pop() == expected
        assert drain(calendar) == sorted(heap)
        assert not calendar and len(calendar) == 0

    @given(
        st.lists(st.tuples(times, priorities), min_size=0, max_size=400),
        st.sampled_from([1e-4, 1e-3, 0.25, 10.0]),
    )
    @settings(max_examples=100, deadline=None)
    def test_bulk_push_then_drain_sorts(self, items, width):
        """Any width — far too fine or far too coarse — drains in exact
        order; resize only changes speed.  400 entries crosses the default
        grow threshold (128), so the adaptive resize itself is exercised."""
        calendar = CalendarQueue(width=width)
        entries = [
            (time, priority, seq, None)
            for seq, (time, priority) in enumerate(items)
        ]
        for entry in entries:
            calendar.push(entry)
        assert drain(calendar) == sorted(entries)

    def test_same_timestamp_ties_break_by_priority_then_fifo(self):
        calendar = CalendarQueue()
        entries = [
            (5.0, 1, 0, "finish"),
            (5.0, -1, 1, "fault"),
            (5.0, 0, 2, "timer-a"),
            (5.0, 0, 3, "timer-b"),
            (5.0, 2, 4, "proceed"),
        ]
        for entry in entries:
            calendar.push(entry)
        assert [e[3] for e in drain(calendar)] == [
            "fault", "timer-a", "timer-b", "finish", "proceed",
        ]

    def test_negative_priority_runs_first_even_pushed_last(self):
        calendar = CalendarQueue()
        calendar.push((1.0, 0, 0, "traffic"))
        calendar.push((1.0, 2, 1, "proceed"))
        calendar.push((1.0, -1, 2, "fault"))
        assert calendar.pop()[3] == "fault"

    def test_far_future_ladder_round_trip(self):
        """Entries far beyond the bucket window park in the ladder and are
        re-admitted in exact order, across a sparse-region cursor jump."""
        calendar = CalendarQueue(width=1e-3)  # 64-bucket window = 64 ms
        rng = random.Random(17)
        entries = [
            (rng.choice([rng.uniform(0, 0.05), rng.uniform(1e3, 1e6)]), 0, seq, None)
            for seq in range(300)
        ]
        for entry in entries:
            calendar.push(entry)
        assert drain(calendar) == sorted(entries)

    def test_push_at_or_before_cursor_joins_active_heap(self):
        """A zero-delay push while a bucket drains is still popped in order
        (the engine's `until` push-back and immediate callbacks rely on it)."""
        calendar = CalendarQueue()
        for seq in range(8):
            calendar.push((float(seq), 0, seq, None))
        assert calendar.pop() == (0.0, 0, 0, None)
        calendar.push((0.0, 0, 100, "same-bucket"))  # i <= cursor
        assert calendar.pop() == (0.0, 0, 100, "same-bucket")

    def test_resize_under_clamped_bucket_ceiling_terminates(self):
        """When the population exceeds the maximum bucket count the resize
        lifts its own grow threshold; a pathological same-bucket burst must
        not recurse."""
        calendar = CalendarQueue()
        entries = [(1.0 + 1e-9 * seq, 0, seq, None) for seq in range(1500)]
        for entry in entries:
            calendar.push(entry)
        assert len(calendar) == 1500
        assert drain(calendar) == sorted(entries)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="width"):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError, match="power of two"):
            CalendarQueue(nbuckets=48)


# -- engine level ----------------------------------------------------------------


def fire_log(simulator, script):
    """Run ``script(simulator, log)`` and return the observed fire order."""
    log = []
    script(simulator, log)
    simulator.run()
    return log


class TestEngineEquivalence:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_cancel_then_refire_matches_heap(self, seed):
        """Randomized timer churn — schedule, cancel, reschedule from inside
        callbacks — fires identically on both queues."""

        def script(simulator, log):
            rng = random.Random(seed)
            handles = []

            def tick(label):
                def callback():
                    log.append((simulator.now, label))
                    if rng.random() < 0.5 and handles:
                        handles.pop(rng.randrange(len(handles))).cancel()
                    if rng.random() < 0.6:
                        handles.append(
                            simulator.schedule_in(
                                rng.uniform(0.0, 5.0),
                                tick(label + 1),
                                priority=rng.choice([-1, 0, 1]),
                            )
                        )
                return callback

            for label in range(30):
                handles.append(
                    simulator.schedule_at(
                        rng.uniform(0.0, 10.0) if rng.random() < 0.9 else 1.25,
                        tick(label * 1000),
                        priority=rng.choice([-1, 0, 2]),
                    )
                )

        heap_log = fire_log(Simulator(event_queue="heap"), script)
        calendar_log = fire_log(Simulator(event_queue="calendar"), script)
        assert calendar_log == heap_log
        assert heap_log  # the workload actually fired something

    @pytest.mark.parametrize("event_queue", ["heap", "calendar"])
    def test_pending_events_excludes_cancelled_tombstones(self, event_queue):
        """Regression (the ISSUE's bookkeeping audit): cancelled events stay
        physically queued as tombstones, but ``pending_events`` must count
        only live events — and double-cancel must not double-subtract."""
        simulator = Simulator(event_queue=event_queue)
        fired = []
        handles = [
            simulator.schedule_at(float(i), lambda i=i: fired.append(i))
            for i in range(10)
        ]
        simulator.call_in(20.0, lambda: fired.append("tail"))
        assert simulator.pending_events == 11
        for handle in handles[3:7]:
            handle.cancel()
            handle.cancel()  # idempotent: accounting touched once
        assert simulator.pending_events == 7
        simulator.run()
        assert fired == [0, 1, 2, 7, 8, 9, "tail"]
        assert simulator.pending_events == 0
        assert simulator.events_processed == 7

    @pytest.mark.parametrize("event_queue", ["heap", "calendar"])
    def test_pending_events_during_partial_run(self, event_queue):
        """The `until` push-back keeps the leftover entry counted exactly once."""
        simulator = Simulator(event_queue=event_queue)
        for i in range(6):
            simulator.call_in(float(i), lambda: None)
        simulator.run(until=2.5)
        assert simulator.pending_events == 3
        later = simulator.schedule_in(0.25, lambda: None)
        later.cancel()
        assert simulator.pending_events == 3
        simulator.run()
        assert simulator.pending_events == 0

    def test_step_and_run_agree_across_queues(self):
        logs = []
        for event_queue in ("heap", "calendar"):
            simulator = Simulator(event_queue=event_queue)
            log = []
            rng = random.Random(5)
            for i in range(50):
                simulator.schedule_at(
                    rng.choice([0.5, 1.0, rng.uniform(0, 30)]),
                    lambda i=i: log.append(i),
                    priority=rng.choice([-1, 0, 1]),
                )
            while simulator.step():
                pass
            logs.append(log)
        assert logs[0] == logs[1]

    def test_unknown_queue_rejected(self):
        with pytest.raises(ValueError, match="unknown event queue"):
            Simulator(event_queue="splay")


# -- trial level -----------------------------------------------------------------


def smoke_scenario(*, faulted=False):
    scenario = EvaluationScale.smoke().scenario
    if faulted:
        scenario = scenario.with_faults(fault_preset("churn-partition", scenario))
    return scenario


def run_matrix_point(scenario, protocol, *, event_queue, fast_paths, mac_model="poll"):
    network = build_network(
        scenario,
        protocol_factory(protocol),
        fast_paths=fast_paths,
        tuning=EngineTuning(event_queue=event_queue, mac_model=mac_model),
    )
    summary = network.run()
    return summary, network.simulator.events_processed


class TestTrialBitIdentity:
    """The acceptance matrix: queue flag x FastPaths x faults, all protocols."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faulted"])
    def test_queue_and_fast_paths_matrix(self, protocol, faulted):
        scenario = smoke_scenario(faulted=faulted)
        results = {
            (event_queue, flags_on): run_matrix_point(
                scenario,
                protocol,
                event_queue=event_queue,
                fast_paths=FastPaths() if flags_on else FastPaths.none(),
            )
            for event_queue in ("heap", "calendar")
            for flags_on in (True, False)
        }
        reference = results[("heap", True)]
        for point, result in results.items():
            assert result == reference, (
                f"{protocol} ({'faulted' if faulted else 'clean'}) diverged at "
                f"queue={point[0]}, fast_paths={'on' if point[1] else 'off'}"
            )

    @pytest.mark.parametrize("protocol", ("SRP", "OLSR"))
    def test_frozen_mac_identical_across_queues_and_fast_paths(self, protocol):
        """The frozen MAC is a *model* change, so it never has to match the
        poll MAC — but it must be invariant to the exactness knobs: same
        trial under either queue and with FastPaths off or on."""
        scenario = smoke_scenario()
        results = [
            run_matrix_point(
                scenario,
                protocol,
                event_queue=event_queue,
                fast_paths=fast_paths,
                mac_model="frozen",
            )
            for event_queue in ("heap", "calendar")
            for fast_paths in (FastPaths(), FastPaths.none())
        ]
        assert all(result == results[0] for result in results[1:])

    def test_frozen_mac_faulted_invariance(self):
        scenario = smoke_scenario(faulted=True)
        results = [
            run_matrix_point(
                scenario,
                "OLSR",
                event_queue=event_queue,
                fast_paths=FastPaths(),
                mac_model="frozen",
            )
            for event_queue in ("heap", "calendar")
        ]
        assert results[0] == results[1]

    def test_frozen_mac_removes_the_poll_storm(self):
        """The point of the model: an order-of-magnitude fewer events for a
        physically comparable trial (delivery within a few percent)."""
        scenario = smoke_scenario()
        poll_summary, poll_events = run_matrix_point(
            scenario, "OLSR", event_queue="calendar", fast_paths=FastPaths()
        )
        frozen_summary, frozen_events = run_matrix_point(
            scenario,
            "OLSR",
            event_queue="calendar",
            fast_paths=FastPaths(),
            mac_model="frozen",
        )
        assert frozen_events < poll_events / 2
        assert (
            abs(frozen_summary.delivery_ratio - poll_summary.delivery_ratio) < 0.1
        )


class TestEngineTuning:
    def test_defaults(self):
        tuning = EngineTuning()
        assert tuning.event_queue == "calendar"
        assert tuning.mac_model == "poll"

    def test_rejects_unknown_values(self):
        with pytest.raises(ValueError, match="event queue"):
            EngineTuning(event_queue="splay")
        with pytest.raises(ValueError, match="MAC model"):
            EngineTuning(mac_model="aloha")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "heap")
        monkeypatch.setenv("REPRO_MAC_MODEL", "frozen")
        tuning = EngineTuning.from_env()
        assert tuning.event_queue == "heap"
        assert tuning.mac_model == "frozen"

    def test_from_env_defaults_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
        monkeypatch.delenv("REPRO_MAC_MODEL", raising=False)
        assert EngineTuning.from_env() == EngineTuning()

    def test_build_network_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "heap")
        monkeypatch.setenv("REPRO_MAC_MODEL", "frozen")
        network = build_network(smoke_scenario(), protocol_factory("SRP"))
        assert network.simulator.event_queue == "heap"
        assert next(iter(network.nodes.values())).mac._use_frozen
