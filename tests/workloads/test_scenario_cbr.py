"""Tests for scenarios and the CBR traffic generator."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.workloads.cbr import CbrTrafficManager
from repro.workloads.scenario import (
    PAPER_PAUSE_TIMES,
    PAPER_SCENARIO,
    Scenario,
    scaled_scenario,
)


class TestScenario:
    def test_paper_scenario_matches_section_v(self):
        assert PAPER_SCENARIO.node_count == 100
        assert PAPER_SCENARIO.terrain_width == 2200.0
        assert PAPER_SCENARIO.terrain_height == 600.0
        assert PAPER_SCENARIO.flow_count == 30
        assert PAPER_SCENARIO.packets_per_second == 4.0
        assert PAPER_SCENARIO.packet_size_bytes == 512
        assert PAPER_SCENARIO.max_speed == 20.0
        assert PAPER_SCENARIO.duration == 900.0
        assert PAPER_SCENARIO.phy.bitrate_bps == 2_000_000.0

    def test_paper_pause_times(self):
        assert PAPER_PAUSE_TIMES == (0, 50, 100, 200, 300, 500, 700, 900)

    def test_offered_load_matches_paper(self):
        # 30 flows x 4 pps = 120 pps network wide, just over 490 kbps.
        assert PAPER_SCENARIO.offered_load_pps == 120.0
        assert PAPER_SCENARIO.offered_load_pps * 512 * 8 == pytest.approx(
            491_520.0
        )

    def test_with_pause_time_and_seed_return_new_scenarios(self):
        base = scaled_scenario()
        changed = base.with_pause_time(300.0).with_seed(9)
        assert changed.pause_time == 300.0
        assert changed.seed == 9
        assert base.pause_time != 300.0 or base.seed != 9

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(node_count=1)
        with pytest.raises(ValueError):
            Scenario(duration=0)
        with pytest.raises(ValueError):
            Scenario(packets_per_second=0)

    def test_terrain_property(self):
        terrain = scaled_scenario().terrain
        assert terrain.width > 0 and terrain.height > 0


class FakeNode:
    """Captures originate_data calls without a real protocol stack."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.sent = []

    def originate_data(self, destination, size_bytes, flow_id=None):
        self.sent.append((destination, size_bytes, flow_id))


class TestCbrTrafficManager:
    def _run(self, *, flow_count=3, duration=20.0, seed=1, node_count=6):
        simulator = Simulator()
        nodes = {i: FakeNode(i) for i in range(node_count)}
        manager = CbrTrafficManager(
            simulator,
            nodes,
            random.Random(seed),
            flow_count=flow_count,
            packets_per_second=4.0,
            packet_size_bytes=512,
            mean_flow_duration=10.0,
            end_time=duration,
        )
        manager.start()
        simulator.run(until=duration)
        return manager, nodes, simulator

    def test_flows_are_created_and_packets_sent(self):
        manager, nodes, _ = self._run()
        assert len(manager.flows) >= 3
        total = sum(len(node.sent) for node in nodes.values())
        assert total > 0

    def test_sending_rate_close_to_nominal(self):
        manager, nodes, _ = self._run(flow_count=2, duration=30.0)
        total = sum(len(node.sent) for node in nodes.values())
        # 2 flows x 4 pps x 30 s = 240 nominal; allow slack for flow turnover.
        assert 120 <= total <= 300

    def test_source_differs_from_destination(self):
        manager, _, _ = self._run()
        for flow in manager.flows:
            assert flow.source != flow.destination

    def test_deterministic_given_seed(self):
        manager_a, nodes_a, _ = self._run(seed=3)
        manager_b, nodes_b, _ = self._run(seed=3)
        assert [(f.source, f.destination) for f in manager_a.flows] == [
            (f.source, f.destination) for f in manager_b.flows
        ]
        assert [len(nodes_a[i].sent) for i in nodes_a] == [
            len(nodes_b[i].sent) for i in nodes_b
        ]

    def test_different_seeds_differ(self):
        manager_a, _, _ = self._run(seed=1)
        manager_b, _, _ = self._run(seed=2)
        endpoints_a = [(f.source, f.destination) for f in manager_a.flows]
        endpoints_b = [(f.source, f.destination) for f in manager_b.flows]
        assert endpoints_a != endpoints_b

    def test_flows_replaced_when_they_end(self):
        manager, _, _ = self._run(flow_count=2, duration=60.0)
        # With a 10 s mean lifetime over 60 s, replacements must have occurred.
        assert len(manager.flows) > 2

    def test_no_packets_after_end_time(self):
        simulator = Simulator()
        nodes = {i: FakeNode(i) for i in range(4)}
        manager = CbrTrafficManager(
            simulator,
            nodes,
            random.Random(1),
            flow_count=2,
            packets_per_second=4.0,
            packet_size_bytes=512,
            mean_flow_duration=5.0,
            end_time=10.0,
        )
        manager.start()
        simulator.run()
        assert simulator.now <= 10.0 + 1.0

    def test_flow_interval(self):
        manager, _, _ = self._run()
        assert manager.flows[0].interval == pytest.approx(0.25)

    def test_rejects_negative_flow_count(self):
        with pytest.raises(ValueError):
            CbrTrafficManager(
                Simulator(),
                {},
                random.Random(1),
                flow_count=-1,
                packets_per_second=4.0,
                packet_size_bytes=512,
                mean_flow_duration=10.0,
                end_time=10.0,
            )
