"""Tests for the SRP composite ordering (Definitions 4–7 of the paper)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.fractions import ProperFraction, UINT32_MAX
from repro.core.ordering import UNASSIGNED, Ordering, ordering_max, ordering_min


def orderings(max_sn: int = 5, max_term: int = 200):
    """Hypothesis strategy over valid (possibly unassigned) orderings."""
    fractions = st.builds(
        lambda d, m: ProperFraction(m % (d + 1), d),
        st.integers(min_value=1, max_value=max_term),
        st.integers(min_value=0, max_value=max_term),
    )
    return st.builds(Ordering, st.integers(min_value=0, max_value=max_sn), fractions)


class TestConstruction:
    def test_unassigned_sentinel(self):
        assert UNASSIGNED == Ordering(0, ProperFraction(1, 1))
        assert UNASSIGNED.is_unassigned
        assert not UNASSIGNED.is_finite

    def test_destination_label(self):
        dest = Ordering.destination(7)
        assert dest.sequence_number == 7
        assert dest.fraction.is_zero
        assert dest.is_finite

    def test_destination_requires_nonzero_sequence_number(self):
        with pytest.raises(ValueError):
            Ordering.destination(0)

    def test_rejects_negative_sequence_number(self):
        with pytest.raises(ValueError):
            Ordering(-1, ProperFraction(1, 2))

    def test_as_tuple(self):
        assert Ordering(3, ProperFraction(2, 5)).as_tuple() == (3, 2, 5)

    def test_equality_and_hash_by_fraction_value(self):
        a = Ordering(2, ProperFraction(1, 2))
        b = Ordering(2, ProperFraction(2, 4))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Ordering(3, ProperFraction(1, 2))


class TestOrderingCriteria:
    """Definition 5: A ≺ B iff sn_A < sn_B, or sn equal and F_B < F_A."""

    def test_higher_sequence_number_supersedes(self):
        older = Ordering(1, ProperFraction(1, 10))
        fresher = Ordering(2, ProperFraction(9, 10))
        assert older.precedes(fresher)
        assert not fresher.precedes(older)

    def test_equal_sequence_number_smaller_fraction_precedes(self):
        far = Ordering(3, ProperFraction(3, 4))
        near = Ordering(3, ProperFraction(1, 4))
        assert far.precedes(near)
        assert not near.precedes(far)

    def test_never_precedes_itself(self):
        value = Ordering(3, ProperFraction(1, 4))
        assert not value.precedes(value)

    def test_unassigned_is_maximum(self):
        """Any assigned node is a feasible successor for an unassigned one."""
        assigned = Ordering(1, ProperFraction(1, 2))
        assert UNASSIGNED.precedes(assigned)
        assert not assigned.precedes(UNASSIGNED)

    def test_destination_is_feasible_for_everyone(self):
        dest = Ordering.destination(1)
        others = [
            UNASSIGNED,
            Ordering(1, ProperFraction(1, 2)),
            Ordering(1, ProperFraction(1, 1000)),
        ]
        for other in others:
            assert other.precedes(dest)

    def test_preceded_by_and_feasible_successor_aliases(self):
        a = Ordering(1, ProperFraction(1, 2))
        b = Ordering(2, ProperFraction(1, 2))
        assert b.preceded_by(a)
        assert a.feasible_successor(b)

    @given(orderings(), orderings())
    def test_strict_partial_order_asymmetry(self, a, b):
        if a.precedes(b):
            assert not b.precedes(a)

    @given(orderings(), orderings(), orderings())
    def test_strict_partial_order_transitivity(self, a, b, c):
        if a.precedes(b) and b.precedes(c):
            assert a.precedes(c)

    @given(orderings())
    def test_irreflexive(self, a):
        assert not a.precedes(a)


class TestMinMax:
    def test_ordering_min_returns_feasible_successor(self):
        """The paper: min{O_A, O_B} returns O_B if O_A ≺ O_B else O_A."""
        far = Ordering(1, ProperFraction(3, 4))
        near = Ordering(1, ProperFraction(1, 4))
        assert ordering_min(far, near) == near
        assert ordering_min(near, far) == near

    def test_ordering_min_prefers_fresher_sequence_number(self):
        stale = Ordering(1, ProperFraction(1, 100))
        fresh = Ordering(2, ProperFraction(99, 100))
        assert ordering_min(stale, fresh) == fresh

    def test_ordering_max(self):
        far = Ordering(1, ProperFraction(3, 4))
        near = Ordering(1, ProperFraction(1, 4))
        assert ordering_max(far, near) == far

    @given(orderings(), orderings())
    def test_min_and_max_partition_the_pair(self, a, b):
        low, high = ordering_min(a, b), ordering_max(a, b)
        assert {low, high} <= {a, b}
        if a != b:
            # When comparable, max ≺ min (min is closer to the destination).
            if a.precedes(b) or b.precedes(a):
                assert high.precedes(low) or high == low


class TestOrderingAddition:
    """Definition 6: O + p/q keeps the sequence number and mediants the fraction."""

    def test_plus_fraction(self):
        value = Ordering(4, ProperFraction(1, 3))
        result = value.plus_fraction(ProperFraction(1, 2))
        assert result == Ordering(4, ProperFraction(2, 5))

    def test_plus_larger_fraction_precedes_original(self):
        """If m/n < p/q then O + p/q ≺ O (Definition 6's closing remark)."""
        value = Ordering(4, ProperFraction(1, 3))
        result = value.plus_fraction(ProperFraction(1, 2))
        assert result.precedes(value)

    def test_next_element_is_plus_one_over_one(self):
        value = Ordering(4, ProperFraction(1, 3))
        assert value.next_element() == Ordering(4, ProperFraction(2, 4))

    def test_addition_requires_finite_ordering(self):
        with pytest.raises(ValueError):
            UNASSIGNED.plus_fraction(ProperFraction(1, 2))

    def test_split_with_requires_equal_sequence_numbers(self):
        a = Ordering(1, ProperFraction(1, 2))
        b = Ordering(2, ProperFraction(1, 3))
        with pytest.raises(ValueError):
            a.split_with(b)

    def test_split_with_takes_mediant(self):
        a = Ordering(2, ProperFraction(1, 2))
        b = Ordering(2, ProperFraction(2, 3))
        assert a.split_with(b) == Ordering(2, ProperFraction(3, 5))

    def test_would_overflow_with(self):
        near_limit = Ordering(1, ProperFraction(1, UINT32_MAX))
        other = Ordering(1, ProperFraction(1, 2))
        assert near_limit.would_overflow_with(other)
        assert not other.would_overflow_with(other)
