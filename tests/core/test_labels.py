"""Tests for the dense ordinal label sets (Section II requirements on L)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fractions import ProperFraction
from repro.core.labels import (
    BoundedFractionLabelSet,
    LabelSplitError,
    LexicographicLabelSet,
    UnboundedFractionLabelSet,
)

LABEL_SETS = [
    pytest.param(UnboundedFractionLabelSet(), id="unbounded-fraction"),
    pytest.param(BoundedFractionLabelSet(), id="bounded-fraction"),
    pytest.param(LexicographicLabelSet(), id="lexicographic"),
]


@pytest.fixture(params=LABEL_SETS)
def label_set(request):
    return request.param


class TestDistinguishedElements:
    def test_least_below_greatest(self, label_set):
        assert label_set.less(label_set.least(), label_set.greatest())

    def test_is_greatest_and_is_least(self, label_set):
        assert label_set.is_greatest(label_set.greatest())
        assert label_set.is_least(label_set.least())
        assert not label_set.is_greatest(label_set.least())

    def test_greatest_has_no_next_element(self, label_set):
        with pytest.raises(ValueError):
            label_set.next_element(label_set.greatest())


class TestOrderOperations:
    def test_less_equal(self, label_set):
        least = label_set.least()
        assert label_set.less_equal(least, least)
        assert label_set.less_equal(least, label_set.greatest())
        assert not label_set.less_equal(label_set.greatest(), least)

    def test_minimum_and_maximum(self, label_set):
        least, greatest = label_set.least(), label_set.greatest()
        mid = label_set.split(least, greatest)
        labels = [greatest, mid, least]
        assert label_set.equal(label_set.minimum(labels), least)
        assert label_set.equal(label_set.maximum(labels), greatest)

    def test_minimum_of_empty_raises(self, label_set):
        with pytest.raises(ValueError):
            label_set.minimum([])
        with pytest.raises(ValueError):
            label_set.maximum([])


class TestDensity:
    def test_split_strictly_between(self, label_set):
        low, high = label_set.least(), label_set.greatest()
        mid = label_set.split(low, high)
        assert label_set.less(low, mid)
        assert label_set.less(mid, high)

    def test_split_requires_strict_order(self, label_set):
        least = label_set.least()
        with pytest.raises(ValueError):
            label_set.split(least, least)
        with pytest.raises(ValueError):
            label_set.split(label_set.greatest(), least)

    def test_repeated_splits_stay_ordered(self, label_set):
        """Density in action: we can keep inserting labels forever (up to the
        bounded set's overflow) and each stays strictly inside the interval."""
        low = label_set.least()
        high = label_set.greatest()
        for _ in range(30):
            try:
                mid = label_set.split(low, high)
            except LabelSplitError:
                pytest.skip("bounded set overflowed before 30 splits")
            assert label_set.less(low, mid)
            assert label_set.less(mid, high)
            high = mid

    def test_next_element_strictly_greater(self, label_set):
        least = label_set.least()
        nxt = label_set.next_element(least)
        assert label_set.less(least, nxt)
        assert label_set.less(nxt, label_set.greatest())


class TestUnboundedFractionSet:
    def test_example1_labels_via_next_element(self):
        label_set = UnboundedFractionLabelSet()
        label = label_set.least()
        chain = []
        for _ in range(5):
            label = label_set.next_element(label)
            chain.append(label)
        assert chain == [
            Fraction(1, 2),
            Fraction(2, 3),
            Fraction(3, 4),
            Fraction(4, 5),
            Fraction(5, 6),
        ]

    def test_split_is_mediant_of_reduced_terms(self):
        label_set = UnboundedFractionLabelSet()
        assert label_set.split(Fraction(1, 2), Fraction(2, 3)) == Fraction(3, 5)

    @given(
        st.fractions(min_value=0, max_value=1),
        st.fractions(min_value=0, max_value=1),
    )
    def test_split_always_succeeds_for_distinct_values(self, a, b):
        label_set = UnboundedFractionLabelSet()
        if a == b:
            return
        low, high = (a, b) if a < b else (b, a)
        mid = label_set.split(low, high)
        assert low < mid < high


class TestBoundedFractionSet:
    def test_limit_property(self):
        assert BoundedFractionLabelSet(limit=100).limit == 100

    def test_rejects_tiny_limit(self):
        with pytest.raises(ValueError):
            BoundedFractionLabelSet(limit=1)

    def test_split_overflow_raises_label_split_error(self):
        label_set = BoundedFractionLabelSet(limit=10)
        low = ProperFraction(5, 6)
        high = ProperFraction(6, 7)
        with pytest.raises(LabelSplitError):
            label_set.split(low, high)

    def test_next_element_overflow_raises_label_split_error(self):
        label_set = BoundedFractionLabelSet(limit=10)
        with pytest.raises(LabelSplitError):
            label_set.next_element(ProperFraction(9, 10))

    def test_split_below_limit_matches_mediant(self):
        label_set = BoundedFractionLabelSet(limit=100)
        assert label_set.split(
            ProperFraction(1, 2), ProperFraction(2, 3)
        ) == ProperFraction(3, 5)


class TestLexicographicSet:
    def test_interior_labels_never_end_with_smallest_letter(self):
        label_set = LexicographicLabelSet()
        low, high = label_set.least(), label_set.greatest()
        for _ in range(50):
            mid = label_set.split(low, high)
            assert not mid.endswith("a") or mid == "a" * 0
            assert not mid.endswith("a")
            high = mid

    @settings(max_examples=200)
    @given(st.lists(st.booleans(), min_size=0, max_size=60))
    def test_random_split_walk_stays_ordered(self, directions):
        """Randomly narrowing either bound never produces an out-of-order or
        unrepresentable label."""
        label_set = LexicographicLabelSet()
        low, high = label_set.least(), label_set.greatest()
        for go_low in directions:
            mid = label_set.split(low, high)
            assert label_set.less(low, mid) and label_set.less(mid, high)
            if go_low:
                high = mid
            else:
                low = mid

    def test_next_element_of_least(self):
        label_set = LexicographicLabelSet()
        nxt = label_set.next_element(label_set.least())
        assert label_set.less(label_set.least(), nxt)
        assert label_set.less(nxt, label_set.greatest())
