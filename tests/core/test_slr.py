"""Tests for the abstract SLR route computation (Section II, Examples 1 and 2)."""

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.labels import (
    BoundedFractionLabelSet,
    LexicographicLabelSet,
    UnboundedFractionLabelSet,
)
from repro.core.slr import SlrNetwork


def path_graph(nodes):
    return nx.path_graph(list(nodes))


class TestInitialization:
    def test_destination_gets_least_label_by_default(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        assert network.label("T") == Fraction(0, 1)

    def test_destination_may_take_custom_label(self):
        network = SlrNetwork(
            UnboundedFractionLabelSet(), "T", destination_label=Fraction(1, 4)
        )
        assert network.label("T") == Fraction(1, 4)

    def test_destination_cannot_take_greatest_label(self):
        with pytest.raises(ValueError):
            SlrNetwork(
                UnboundedFractionLabelSet(), "T", destination_label=Fraction(1, 1)
            )

    def test_unknown_nodes_are_unassigned(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        assert network.label("X") == Fraction(1, 1)
        assert not network.state("X").has_route


class TestExample1:
    """Fig. 1: E requests a route to T over the chain E-D-C-B-A-T."""

    def test_final_labels_match_paper(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        graph = path_graph(["E", "D", "C", "B", "A", "T"])
        result = network.compute_route(
            "E", graph, request_path=["E", "D", "C", "B", "A", "T"]
        )
        assert result.succeeded
        assert result.replier == "T"
        assert network.label("A") == Fraction(1, 2)
        assert network.label("B") == Fraction(2, 3)
        assert network.label("C") == Fraction(3, 4)
        assert network.label("D") == Fraction(4, 5)
        assert network.label("E") == Fraction(5, 6)

    def test_every_node_gains_a_successor_path(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        graph = path_graph(["E", "D", "C", "B", "A", "T"])
        network.compute_route("E", graph, request_path=["E", "D", "C", "B", "A", "T"])
        assert network.successors("A") == ("T",)
        assert network.successors("B") == ("A",)
        assert network.successors("E") == ("D",)

    def test_invariants_hold_after_computation(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        graph = path_graph(["E", "D", "C", "B", "A", "T"])
        network.compute_route("E", graph, request_path=["E", "D", "C", "B", "A", "T"])
        assert network.is_loop_free()
        assert network.is_topologically_ordered()

    def test_flood_variant_reaches_destination(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        graph = path_graph(["E", "D", "C", "B", "A", "T"])
        result = network.compute_route("E", graph)
        assert result.succeeded
        assert network.state("E").has_route
        assert network.is_topologically_ordered()


class TestExample2:
    """Fig. 2: nodes F, G, H join an existing DAG; only B and F relabel."""

    @pytest.fixture
    def network(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        # Establish the Example 1 DAG on the A-B portion.
        chain = path_graph(["E", "D", "C", "B", "A", "T"])
        network.compute_route("E", chain, request_path=["E", "D", "C", "B", "A", "T"])
        # F, G and H once knew routes to T: they carry labels but have empty
        # successor sets (invalid routes).
        network.state("F").label = Fraction(2, 3)
        network.state("G").label = Fraction(2, 3)
        network.state("H").label = Fraction(3, 4)
        return network

    def test_relabelling_matches_paper(self, network):
        graph = path_graph(["H", "G", "F", "B", "A", "T"])
        result = network.compute_route(
            "H", graph, request_path=["H", "G", "F", "B", "A"]
        )
        assert result.succeeded
        assert result.replier == "A"
        # The reply splits labels at B and F; G and H keep their labels.
        assert network.label("B") == Fraction(3, 5)
        assert network.label("F") == Fraction(5, 8)
        assert network.label("G") == Fraction(2, 3)
        assert network.label("H") == Fraction(3, 4)
        assert set(result.relabelled) == {"B", "F"}

    def test_topological_order_matches_paper(self, network):
        graph = path_graph(["H", "G", "F", "B", "A", "T"])
        network.compute_route("H", graph, request_path=["H", "G", "F", "B", "A"])
        ordered = [
            network.label(node) for node in ["H", "G", "F", "B", "A", "T"]
        ]
        assert ordered == [
            Fraction(3, 4),
            Fraction(2, 3),
            Fraction(5, 8),
            Fraction(3, 5),
            Fraction(1, 2),
            Fraction(0, 1),
        ]
        assert network.is_topologically_ordered()
        assert network.is_loop_free()

    def test_all_new_nodes_have_routes(self, network):
        graph = path_graph(["H", "G", "F", "B", "A", "T"])
        network.compute_route("H", graph, request_path=["H", "G", "F", "B", "A"])
        for node in ["F", "G", "H"]:
            assert network.state(node).has_route


class TestBoundedAndLexicographicSets:
    def test_example1_with_bounded_fractions(self):
        network = SlrNetwork(BoundedFractionLabelSet(), "T")
        graph = path_graph(["E", "D", "C", "B", "A", "T"])
        result = network.compute_route(
            "E", graph, request_path=["E", "D", "C", "B", "A", "T"]
        )
        assert result.succeeded
        assert network.is_topologically_ordered()

    def test_example1_with_lexicographic_labels(self):
        network = SlrNetwork(LexicographicLabelSet(), "T")
        graph = path_graph(["E", "D", "C", "B", "A", "T"])
        result = network.compute_route(
            "E", graph, request_path=["E", "D", "C", "B", "A", "T"]
        )
        assert result.succeeded
        assert network.is_topologically_ordered()
        assert network.is_loop_free()


class TestLinkFailuresAndRepair:
    def test_route_error_and_recompute(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        graph = nx.Graph(
            [("S", "A"), ("A", "T"), ("S", "B"), ("B", "T")]
        )
        assert network.compute_route("S", graph).succeeded
        # Fail the link S currently uses; S loses its only successor.
        used = network.successors("S")[0]
        network.fail_link("S", used)
        assert not network.state("S").has_route
        # A new computation over the surviving topology restores a route
        # without ever breaking the DAG invariants.
        surviving = graph.copy()
        surviving.remove_edge("S", used)
        result = network.compute_route("S", surviving)
        assert result.succeeded
        assert network.state("S").has_route
        assert network.is_loop_free()
        assert network.is_topologically_ordered()

    def test_clear_successors_keeps_label(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        graph = path_graph(["S", "A", "T"])
        network.compute_route("S", graph)
        label_before = network.label("S")
        network.clear_successors("S")
        assert network.label("S") == label_before
        assert not network.state("S").has_route

    def test_failed_request_reports_no_route(self):
        network = SlrNetwork(UnboundedFractionLabelSet(), "T")
        # The destination is unreachable from S.
        graph = nx.Graph([("S", "A"), ("B", "T")])
        result = network.compute_route("S", graph)
        assert not result.succeeded
        assert result.replier is None
        assert not network.state("S").has_route


class TestRandomizedLoopFreedom:
    """Theorem 3 as a property: random topologies and repeated route
    computations never produce a successor cycle or break topological order."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=4, max_value=12),
        st.floats(min_value=0.2, max_value=0.7),
        st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=6),
        st.randoms(use_true_random=False),
    )
    def test_random_route_computations_stay_loop_free(
        self, node_count, edge_probability, requesters, rng
    ):
        graph = nx.gnp_random_graph(
            node_count, edge_probability, seed=rng.randint(0, 2**31)
        )
        network = SlrNetwork(UnboundedFractionLabelSet(), 0)
        for requester in requesters:
            origin = requester % node_count
            if origin == 0 or origin not in graph:
                continue
            network.compute_route(origin, graph)
            assert network.is_loop_free()
            assert network.is_topologically_ordered()

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=5, max_value=10),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=9),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=8,
        ),
        st.randoms(use_true_random=False),
    )
    def test_interleaved_failures_stay_loop_free(self, node_count, failures, rng):
        graph = nx.gnp_random_graph(node_count, 0.5, seed=rng.randint(0, 2**31))
        network = SlrNetwork(UnboundedFractionLabelSet(), 0)
        for origin in range(1, node_count):
            if origin in graph:
                network.compute_route(origin, graph)
        for node, successor in failures:
            if node < node_count and successor < node_count:
                network.fail_link(node, successor)
            # Re-request from the failed node when possible.
            if node in graph and node != 0:
                network.compute_route(node, graph)
            assert network.is_loop_free()
            assert network.is_topologically_ordered()
