"""Tests for the Farey / Stern-Brocot utilities (the paper's future-work idea)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.farey import (
    FareyNode,
    enumerate_tree,
    farey_parents,
    farey_sequence,
    fraction_from_path,
    mediant_is_reduced,
    simplest_between,
    stern_brocot_path,
)
from repro.core.fractions import ProperFraction


def reduced_interior_fractions(max_den: int = 60):
    """Reduced fractions strictly between 0 and 1."""

    def build(d, m):
        m = m % (d - 1) + 1 if d > 1 else 1
        g = math.gcd(m, d)
        return ProperFraction(m // g, d // g)

    return st.builds(
        build,
        st.integers(min_value=2, max_value=max_den),
        st.integers(min_value=0, max_value=max_den),
    )


class TestFareySequence:
    def test_f1(self):
        assert farey_sequence(1) == [ProperFraction(0, 1), ProperFraction(1, 1)]

    def test_f5_matches_known_sequence(self):
        expected = [
            (0, 1), (1, 5), (1, 4), (1, 3), (2, 5), (1, 2),
            (3, 5), (2, 3), (3, 4), (4, 5), (1, 1),
        ]
        assert [f.as_tuple() for f in farey_sequence(5)] == expected

    def test_sequence_is_sorted_and_reduced(self):
        seq = farey_sequence(12)
        values = [f.as_fraction() for f in seq]
        assert values == sorted(values)
        assert all(math.gcd(*f.as_tuple()) == 1 for f in seq)

    def test_length_matches_euler_totient_sum(self):
        # |F_n| = 1 + sum_{k<=n} phi(k)
        def phi(k):
            return sum(1 for i in range(1, k + 1) if math.gcd(i, k) == 1)

        order = 9
        expected = 1 + sum(phi(k) for k in range(1, order + 1))
        assert len(farey_sequence(order)) == expected

    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            farey_sequence(0)


class TestSimplestBetween:
    def test_simplest_between_zero_and_one(self):
        assert simplest_between(
            ProperFraction(0, 1), ProperFraction(1, 1)
        ) == ProperFraction(1, 2)

    def test_simplest_between_narrow_interval(self):
        result = simplest_between(ProperFraction(3, 7), ProperFraction(4, 9))
        assert ProperFraction(3, 7) < result < ProperFraction(4, 9)

    def test_requires_strict_order(self):
        with pytest.raises(ValueError):
            simplest_between(ProperFraction(1, 2), ProperFraction(1, 2))

    @given(reduced_interior_fractions(), reduced_interior_fractions())
    def test_result_strictly_inside_and_minimal_denominator(self, a, b):
        if a == b:
            return
        low, high = (a, b) if a < b else (b, a)
        result = simplest_between(low, high)
        assert low < result < high
        # No fraction with a smaller denominator lies inside the interval.
        for denominator in range(1, result.denominator):
            for numerator in range(0, denominator + 1):
                candidate = ProperFraction(numerator, denominator)
                assert not (low < candidate < high)

    def test_reduced_label_interpolation_keeps_terms_small(self):
        """The future-work motivation: the raw mediant grows terms every split,
        the Farey interpolation does not."""
        low = ProperFraction(0, 1)
        high = ProperFraction(1, 1)
        raw = high
        farey = high
        for _ in range(10):
            raw = low.mediant_with(raw, limit=None)
            farey = simplest_between(low, farey)
        assert farey.denominator <= raw.denominator


class TestSternBrocotPaths:
    def test_root(self):
        assert FareyNode.root().value == ProperFraction(1, 2)

    def test_left_and_right_children(self):
        root = FareyNode.root()
        assert root.left().value == ProperFraction(1, 3)
        assert root.right().value == ProperFraction(2, 3)

    def test_known_paths(self):
        assert stern_brocot_path(ProperFraction(1, 2)) == ""
        assert stern_brocot_path(ProperFraction(1, 3)) == "L"
        assert stern_brocot_path(ProperFraction(2, 3)) == "R"
        assert stern_brocot_path(ProperFraction(3, 5)) == "RL"

    def test_path_rejects_boundary_values(self):
        with pytest.raises(ValueError):
            stern_brocot_path(ProperFraction(0, 1))
        with pytest.raises(ValueError):
            stern_brocot_path(ProperFraction(1, 1))

    def test_fraction_from_path_rejects_bad_moves(self):
        with pytest.raises(ValueError):
            fraction_from_path("LX")

    @given(reduced_interior_fractions())
    def test_round_trip(self, value):
        path = stern_brocot_path(value)
        assert fraction_from_path(path) == value.reduced()

    @given(reduced_interior_fractions())
    def test_parents_mediant_reproduces_value(self, value):
        low, high = farey_parents(value)
        assert low.mediant_with(high, limit=None).reduced() == value.reduced()
        assert mediant_is_reduced(low, high)


class TestTreeEnumeration:
    def test_enumerate_tree_counts(self):
        values = list(enumerate_tree(3))
        # Levels 0..3 hold 1 + 2 + 4 + 8 nodes.
        assert len(values) == 15
        # Every enumerated value is reduced and strictly inside (0, 1).
        for value in values:
            assert ProperFraction(0, 1) < value < ProperFraction(1, 1)
            assert math.gcd(*value.as_tuple()) == 1

    def test_enumerate_tree_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            list(enumerate_tree(-1))
