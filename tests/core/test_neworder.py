"""Tests for Algorithm 1 (NEWORDER) and its Theorem 6 guarantees."""

from hypothesis import assume, given, strategies as st

from repro.core.fractions import ProperFraction, UINT32_MAX
from repro.core.invariants import ordering_maintains_order
from repro.core.neworder import (
    new_order,
    new_order_for_rreq_advertisement,
)
from repro.core.ordering import UNASSIGNED, Ordering


def finite_orderings(max_sn: int = 4, max_term: int = 64):
    fractions = st.builds(
        lambda d, m: ProperFraction(m % d, d),
        st.integers(min_value=2, max_value=max_term),
        st.integers(min_value=0, max_value=max_term),
    )
    return st.builds(Ordering, st.integers(min_value=1, max_value=max_sn), fractions)


def any_orderings(max_sn: int = 4, max_term: int = 64):
    return st.one_of(st.just(UNASSIGNED), finite_orderings(max_sn, max_term))


class TestAlgorithmCases:
    def test_case2_fresher_sequence_number_takes_next_element(self):
        """Line 5: node and predecessor both at older sn -> advertised + 1/1."""
        current = Ordering(1, ProperFraction(1, 2))
        cached = Ordering(1, ProperFraction(3, 4))
        advertised = Ordering(2, ProperFraction(1, 3))
        result = new_order(current, cached, advertised)
        assert result.case == "line5"
        assert result.ordering == Ordering(2, ProperFraction(2, 4))

    def test_case3_same_request_sequence_number_splits(self):
        """Line 7: cached predecessor at the advertised sn -> mediant split."""
        current = Ordering(1, ProperFraction(1, 2))
        cached = Ordering(2, ProperFraction(3, 4))
        advertised = Ordering(2, ProperFraction(1, 3))
        result = new_order(current, cached, advertised)
        assert result.case == "line7"
        assert result.ordering == Ordering(2, ProperFraction(4, 7))

    def test_case4_keeps_current_label_when_already_ordered(self):
        """Line 10: the current label already satisfies the cached predecessor."""
        current = Ordering(2, ProperFraction(1, 2))
        cached = Ordering(2, ProperFraction(3, 4))
        advertised = Ordering(2, ProperFraction(1, 3))
        result = new_order(current, cached, advertised)
        assert result.case == "line10"
        assert result.ordering == current

    def test_case5_splits_when_current_label_out_of_order(self):
        """Line 12: current label not below cached predecessor -> split."""
        current = Ordering(2, ProperFraction(4, 5))
        cached = Ordering(2, ProperFraction(3, 4))
        advertised = Ordering(2, ProperFraction(1, 3))
        result = new_order(current, cached, advertised)
        assert result.case == "line12"
        assert result.ordering == Ordering(2, ProperFraction(4, 7))

    def test_case1_stale_advertisement_returns_unordered(self):
        """An advertisement with an older sn than the node is infeasible."""
        current = Ordering(3, ProperFraction(1, 2))
        cached = UNASSIGNED
        advertised = Ordering(2, ProperFraction(1, 3))
        result = new_order(current, cached, advertised)
        assert not result.is_finite
        assert result.ordering == UNASSIGNED

    def test_overflow_returns_unordered(self):
        """32-bit overflow of the fraction split -> drop the advertisement."""
        near_limit = ProperFraction(UINT32_MAX - 1, UINT32_MAX)
        current = Ordering(2, near_limit)
        cached = Ordering(2, near_limit)
        advertised = Ordering(2, ProperFraction(1, 3))
        result = new_order(current, cached, advertised, limit=UINT32_MAX)
        assert not result.is_finite
        assert result.case == "overflow"

    def test_small_limit_triggers_overflow(self):
        current = Ordering(2, ProperFraction(5, 6))
        cached = Ordering(2, ProperFraction(5, 6))
        advertised = Ordering(2, ProperFraction(4, 6))
        result = new_order(current, cached, advertised, limit=10)
        assert not result.is_finite

    def test_unassigned_node_with_fresh_advertisement(self):
        """A node with no label adopts the next-element of the advertisement."""
        result = new_order(UNASSIGNED, UNASSIGNED, Ordering.destination(1))
        assert result.is_finite
        assert result.ordering == Ordering(1, ProperFraction(1, 2))


class TestSuccessorElimination:
    def test_out_of_order_successors_are_dropped(self):
        """Line 13: successors the new label cannot keep in order are eliminated."""
        current = Ordering(1, ProperFraction(1, 2))
        cached = UNASSIGNED
        advertised = Ordering(2, ProperFraction(1, 3))
        successors = {
            "keep": Ordering(2, ProperFraction(1, 5)),
            "drop-stale": Ordering(1, ProperFraction(1, 5)),
        }
        result = new_order(current, cached, advertised, successors)
        assert result.is_finite
        assert "drop-stale" in result.dropped_successors
        assert "keep" not in result.dropped_successors

    def test_successor_map_is_not_mutated(self):
        successors = {"x": Ordering(1, ProperFraction(1, 5))}
        snapshot = dict(successors)
        new_order(
            Ordering(1, ProperFraction(1, 2)),
            UNASSIGNED,
            Ordering(2, ProperFraction(1, 3)),
            successors,
        )
        assert successors == snapshot


class TestRreqAdvertisementVariant:
    def test_uses_unassigned_cached_ordering(self):
        current = Ordering(1, ProperFraction(1, 2))
        advertised = Ordering(2, ProperFraction(1, 3))
        direct = new_order(current, UNASSIGNED, advertised)
        via_helper = new_order_for_rreq_advertisement(current, advertised)
        assert direct.ordering == via_helper.ordering

    def test_keeps_label_when_already_fresher_or_equal(self):
        current = Ordering(2, ProperFraction(1, 2))
        advertised = Ordering(2, ProperFraction(1, 3))
        result = new_order_for_rreq_advertisement(current, advertised)
        assert result.ordering == current


class TestTheorem6:
    """Every finite result of Algorithm 1 maintains order (Eqs. 3-6).

    The theorem's proof rests on two operational preconditions ("Facts"):

    * Fact 1 — the advertisement is feasible at the node (``O_A ≺ O_?``), which
      Procedure 3 guarantees before calling Algorithm 1;
    * Fact 2 — the cached solicitation ordering precedes the advertisement
      (``C_A_? ≺ O_?``), which holds because the reply was issued for a label
      below the minimum carried in the request.

    The property tests therefore restrict generated inputs to those
    preconditions, exactly as the protocol does.
    """

    @staticmethod
    def _facts_hold(current, cached, advertised):
        fact1 = current == UNASSIGNED or current.precedes(advertised)
        fact2 = cached == UNASSIGNED or cached.precedes(advertised)
        return fact1 and fact2

    @given(any_orderings(), any_orderings(), finite_orderings())
    def test_finite_results_maintain_order(self, current, cached, advertised):
        assume(self._facts_hold(current, cached, advertised))
        result = new_order(current, cached, advertised)
        if not result.is_finite:
            return
        assert ordering_maintains_order(
            result.ordering,
            current_ordering=current,
            predecessor_minimum=cached,
            advertised_ordering=advertised,
            successor_maximum=None,
        )

    @given(any_orderings(), any_orderings(), finite_orderings())
    def test_result_is_feasible_successor_relationship(
        self, current, cached, advertised
    ):
        """Eq. 5 specifically: the advertiser is a feasible successor of the
        new label, so adopting it can never create a loop (Theorem 2)."""
        assume(self._facts_hold(current, cached, advertised))
        result = new_order(current, cached, advertised)
        if result.is_finite:
            assert result.ordering.precedes(advertised)

    @given(
        any_orderings(),
        any_orderings(),
        finite_orderings(),
        st.dictionaries(
            st.integers(min_value=0, max_value=5), finite_orderings(), max_size=4
        ),
    )
    def test_retained_successors_remain_in_order(
        self, current, cached, advertised, successors
    ):
        result = new_order(current, cached, advertised, successors)
        if not result.is_finite:
            return
        for node, ordering in successors.items():
            if node not in result.dropped_successors:
                assert result.ordering.precedes(ordering)

    @given(any_orderings(), any_orderings(), finite_orderings())
    def test_labels_never_increase(self, current, cached, advertised):
        """Eq. 3 across the algorithm: a finite result never moves the node
        farther from the destination than it already was."""
        assume(self._facts_hold(current, cached, advertised))
        result = new_order(current, cached, advertised)
        if result.is_finite and result.ordering != current:
            assert current.precedes(result.ordering)
