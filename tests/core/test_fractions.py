"""Unit and property tests for the proper-fraction arithmetic (Eqs. 1 and 2)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.fractions import (
    DEFAULT_MAX_DENOMINATOR,
    ONE,
    UINT32_MAX,
    ZERO,
    FractionOverflowError,
    ProperFraction,
    fibonacci_split_bound,
    max_split_depth,
    mediant,
    mediant_chain,
    next_element,
    sort_fractions,
)


def proper_fractions(max_value: int = 10_000):
    """Hypothesis strategy producing valid proper fractions m/n with m <= n."""
    return st.builds(
        lambda d, m: ProperFraction(m % (d + 1), d),
        st.integers(min_value=1, max_value=max_value),
        st.integers(min_value=0, max_value=max_value),
    )


class TestConstruction:
    def test_zero_and_one_singletons(self):
        assert ZERO == ProperFraction(0, 1)
        assert ONE == ProperFraction(1, 1)

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ProperFraction(1, 0)

    def test_rejects_negative_denominator(self):
        with pytest.raises(ValueError):
            ProperFraction(1, -2)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ProperFraction(-1, 2)

    def test_rejects_improper_fraction(self):
        with pytest.raises(ValueError):
            ProperFraction(3, 2)

    def test_from_fraction(self):
        assert ProperFraction.from_fraction(Fraction(2, 4)) == ProperFraction(1, 2)

    def test_as_tuple_preserves_raw_terms(self):
        assert ProperFraction(2, 4).as_tuple() == (2, 4)

    def test_reduced(self):
        assert ProperFraction(4, 8).reduced() == ProperFraction(1, 2)
        assert ProperFraction(4, 8).reduced().as_tuple() == (1, 2)

    def test_reduced_is_identity_when_already_reduced(self):
        value = ProperFraction(3, 7)
        assert value.reduced() is value


class TestOrdering:
    def test_basic_comparisons(self):
        assert ProperFraction(1, 2) < ProperFraction(2, 3)
        assert ProperFraction(2, 3) > ProperFraction(1, 2)
        assert ProperFraction(1, 2) <= ProperFraction(1, 2)
        assert ProperFraction(1, 2) >= ProperFraction(1, 2)

    def test_equality_is_by_value_not_representation(self):
        assert ProperFraction(1, 2) == ProperFraction(2, 4)
        assert hash(ProperFraction(1, 2)) == hash(ProperFraction(2, 4))

    def test_zero_is_least_one_is_greatest(self):
        middle = ProperFraction(3, 7)
        assert ZERO < middle < ONE

    @given(proper_fractions(), proper_fractions())
    def test_trichotomy(self, a, b):
        outcomes = [a < b, a == b, b < a]
        assert sum(outcomes) == 1

    @given(proper_fractions(), proper_fractions(), proper_fractions())
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(proper_fractions(), proper_fractions())
    def test_comparison_matches_exact_fractions(self, a, b):
        assert (a < b) == (a.as_fraction() < b.as_fraction())

    def test_sort_fractions(self):
        values = [ProperFraction(2, 3), ZERO, ProperFraction(1, 2), ONE]
        assert sort_fractions(values) == [
            ZERO,
            ProperFraction(1, 2),
            ProperFraction(2, 3),
            ONE,
        ]


class TestPredicates:
    def test_is_zero(self):
        assert ZERO.is_zero
        assert ProperFraction(0, 5).is_zero
        assert not ProperFraction(1, 5).is_zero

    def test_is_one(self):
        assert ONE.is_one
        assert ProperFraction(4, 4).is_one
        assert not ProperFraction(3, 4).is_one

    def test_is_finite(self):
        assert ProperFraction(3, 4).is_finite
        assert not ONE.is_finite

    def test_fits(self):
        assert ProperFraction(1, 2).fits()
        assert not ProperFraction(1, UINT32_MAX + 1).fits()
        assert not ProperFraction(5, 10).fits(limit=4)


class TestMediant:
    def test_eq1_mediant_lies_strictly_between(self):
        low, high = ProperFraction(1, 2), ProperFraction(2, 3)
        mid = mediant(low, high)
        assert low < mid < high
        assert mid == ProperFraction(3, 5)

    def test_mediant_of_bounds_is_one_half(self):
        assert mediant(ZERO, ONE) == ProperFraction(1, 2)

    @given(proper_fractions(), proper_fractions())
    def test_eq1_property(self, a, b):
        if a < b:
            mid = a.mediant_with(b, limit=None)
            assert a < mid < b

    def test_mediant_overflow_raises(self):
        huge = ProperFraction(UINT32_MAX - 1, UINT32_MAX)
        with pytest.raises(FractionOverflowError):
            huge.mediant_with(ProperFraction(1, 2))

    def test_mediant_unlimited_does_not_raise(self):
        huge = ProperFraction(UINT32_MAX - 1, UINT32_MAX)
        result = huge.mediant_with(ProperFraction(1, 2), limit=None)
        assert result.denominator == UINT32_MAX + 2

    def test_would_overflow_with(self):
        huge = ProperFraction(UINT32_MAX - 1, UINT32_MAX)
        assert huge.would_overflow_with(ProperFraction(1, 2))
        assert not ProperFraction(1, 2).would_overflow_with(ProperFraction(1, 3))


class TestNextElement:
    def test_eq2_next_element(self):
        assert next_element(ZERO) == ProperFraction(1, 2)
        assert next_element(ProperFraction(1, 2)) == ProperFraction(2, 3)
        assert next_element(ProperFraction(2, 3)) == ProperFraction(3, 4)

    def test_next_element_is_mediant_with_one(self):
        value = ProperFraction(3, 7)
        assert value.next_element() == value.mediant_with(ONE)

    @given(proper_fractions())
    def test_next_element_strictly_greater_but_below_one(self, value):
        if value.is_one:
            return
        nxt = value.next_element(limit=None)
        assert value < nxt < ONE


class TestExample1Chain:
    """The label chain of the paper's Example 1 (Fig. 1)."""

    def test_repeated_next_element_builds_example1_labels(self):
        labels = [ZERO]
        for _ in range(5):
            labels.append(labels[-1].next_element())
        assert [f.as_tuple() for f in labels] == [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
        ]


class TestSplitDepth:
    def test_mediant_chain_yields_requested_count(self):
        chain = list(mediant_chain(ZERO, ONE, 5))
        assert len(chain) == 5
        # Splitting toward 0/1 each time: 1/2, 1/3, 1/4, 1/5, 1/6.
        assert [f.as_tuple() for f in chain] == [(1, 2), (1, 3), (1, 4), (1, 5), (1, 6)]

    def test_mediant_chain_rejects_negative_count(self):
        with pytest.raises(ValueError):
            list(mediant_chain(ZERO, ONE, -1))

    def test_paper_bound_at_least_45_splits(self):
        """The paper: at least 45 splits fit in 32-bit fields."""
        assert fibonacci_split_bound(UINT32_MAX) >= 45

    def test_fibonacci_bound_small_limit(self):
        # Denominators 2,3,5,8,13 fit under 13 -> 5 splits.
        assert fibonacci_split_bound(13) == 5

    def test_max_split_depth_small_limit(self):
        depth = max_split_depth(ZERO, ONE, limit=16)
        # Splitting 0/1 against the moving upper bound gives denominators
        # 2, 3, 4, ... so 15 splits fit under 16 (denominator 16 is allowed,
        # the next one, 17, is not).
        assert depth == 15

    def test_fibonacci_chain_matches_analytic_bound(self):
        """Always splitting the two *most recent* labels makes denominators
        grow like the Fibonacci sequence — the fastest possible — and the
        number of such splits that fit under a limit matches the analytic
        bound used to derive the paper's "at least 45" figure."""
        limit = 1000
        a, b = ZERO, ONE
        depth = 0
        while not a.would_overflow_with(b, limit):
            a, b = b, a.mediant_with(b, limit=limit)
            depth += 1
        assert depth == fibonacci_split_bound(limit)

    def test_max_denominator_constant(self):
        assert DEFAULT_MAX_DENOMINATOR == 1_000_000_000
        assert DEFAULT_MAX_DENOMINATOR < UINT32_MAX


class TestRepr:
    def test_repr_is_m_slash_n(self):
        assert repr(ProperFraction(3, 7)) == "3/7"
