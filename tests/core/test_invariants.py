"""Tests for the Definition 1 invariants and DAG/topological-order checks."""

import networkx as nx
import pytest
from fractions import Fraction

from repro.core.fractions import ProperFraction
from repro.core.invariants import (
    SuccessorGraphAuditor,
    build_successor_graph,
    check_maintains_order,
    find_label_violations,
    is_topologically_ordered,
    maintains_order,
    ordering_maintains_order,
    successor_graph_is_loop_free,
)
from repro.core.labels import UnboundedFractionLabelSet
from repro.core.ordering import UNASSIGNED, Ordering


@pytest.fixture
def label_set():
    return UnboundedFractionLabelSet()


class TestMaintainsOrder:
    def test_all_equations_satisfied(self, label_set):
        assert maintains_order(
            label_set,
            Fraction(1, 2),
            current_label=Fraction(2, 3),
            predecessor_minimum=Fraction(3, 4),
            advertised_label=Fraction(1, 3),
            successor_maximum=Fraction(1, 3),
        )

    def test_eq3_violation_detected(self, label_set):
        violations = check_maintains_order(
            label_set,
            Fraction(3, 4),
            current_label=Fraction(1, 2),
            predecessor_minimum=Fraction(9, 10),
            advertised_label=Fraction(1, 3),
        )
        assert [v.equation for v in violations] == [3]

    def test_eq4_violation_detected(self, label_set):
        violations = check_maintains_order(
            label_set,
            Fraction(1, 2),
            current_label=Fraction(1, 2),
            predecessor_minimum=Fraction(1, 2),
            advertised_label=Fraction(1, 3),
        )
        assert [v.equation for v in violations] == [4]

    def test_eq5_violation_detected(self, label_set):
        violations = check_maintains_order(
            label_set,
            Fraction(1, 3),
            current_label=Fraction(1, 2),
            predecessor_minimum=Fraction(3, 4),
            advertised_label=Fraction(1, 3),
        )
        assert [v.equation for v in violations] == [5]

    def test_eq6_violation_detected(self, label_set):
        violations = check_maintains_order(
            label_set,
            Fraction(1, 2),
            current_label=Fraction(2, 3),
            predecessor_minimum=Fraction(3, 4),
            advertised_label=Fraction(1, 3),
            successor_maximum=Fraction(1, 2),
        )
        assert [v.equation for v in violations] == [6]

    def test_eq6_vacuous_without_successors(self, label_set):
        assert maintains_order(
            label_set,
            Fraction(1, 2),
            current_label=Fraction(2, 3),
            predecessor_minimum=Fraction(3, 4),
            advertised_label=Fraction(1, 3),
            successor_maximum=None,
        )

    def test_multiple_violations_reported(self, label_set):
        violations = check_maintains_order(
            label_set,
            Fraction(9, 10),
            current_label=Fraction(1, 2),
            predecessor_minimum=Fraction(1, 2),
            advertised_label=Fraction(9, 10),
        )
        assert {v.equation for v in violations} == {3, 4, 5}

    def test_violation_str(self, label_set):
        violations = check_maintains_order(
            label_set,
            Fraction(9, 10),
            current_label=Fraction(1, 2),
            predecessor_minimum=Fraction(1, 2),
            advertised_label=Fraction(1, 3),
        )
        assert all("Eq." in str(v) for v in violations)


class TestOrderingMaintainsOrder:
    def test_ordering_version_mirrors_label_version(self):
        new = Ordering(2, ProperFraction(1, 2))
        assert ordering_maintains_order(
            new,
            current_ordering=Ordering(2, ProperFraction(2, 3)),
            predecessor_minimum=Ordering(2, ProperFraction(3, 4)),
            advertised_ordering=Ordering(2, ProperFraction(1, 3)),
            successor_maximum=Ordering(2, ProperFraction(1, 3)),
        )

    def test_fresher_sequence_number_satisfies_eq3_and_eq4(self):
        new = Ordering(3, ProperFraction(9, 10))
        assert ordering_maintains_order(
            new,
            current_ordering=Ordering(2, ProperFraction(1, 100)),
            predecessor_minimum=Ordering(2, ProperFraction(1, 100)),
            advertised_ordering=Ordering(3, ProperFraction(1, 2)),
        )

    def test_stale_new_ordering_rejected(self):
        new = Ordering(1, ProperFraction(1, 2))
        assert not ordering_maintains_order(
            new,
            current_ordering=Ordering(2, ProperFraction(2, 3)),
            predecessor_minimum=UNASSIGNED,
            advertised_ordering=Ordering(1, ProperFraction(1, 3)),
        )


class TestGraphChecks:
    def test_topologically_ordered_path(self, label_set):
        graph = nx.DiGraph([("E", "D"), ("D", "C"), ("C", "T")])
        labels = {
            "E": Fraction(3, 4),
            "D": Fraction(2, 3),
            "C": Fraction(1, 2),
            "T": Fraction(0, 1),
        }
        assert is_topologically_ordered(graph, labels, label_set)
        assert find_label_violations(graph, labels, label_set) == []

    def test_violating_edge_reported(self, label_set):
        graph = nx.DiGraph([("A", "B")])
        labels = {"A": Fraction(1, 2), "B": Fraction(2, 3)}
        assert not is_topologically_ordered(graph, labels, label_set)
        assert find_label_violations(graph, labels, label_set) == [("A", "B")]

    def test_equal_labels_violate_strict_order(self, label_set):
        graph = nx.DiGraph([("A", "B")])
        labels = {"A": Fraction(1, 2), "B": Fraction(1, 2)}
        assert not is_topologically_ordered(graph, labels, label_set)

    def test_loop_free_detection(self):
        dag = nx.DiGraph([("A", "B"), ("B", "C"), ("A", "C")])
        assert successor_graph_is_loop_free(dag)
        cyclic = nx.DiGraph([("A", "B"), ("B", "C"), ("C", "A")])
        assert not successor_graph_is_loop_free(cyclic)

    def test_build_successor_graph_includes_isolated_nodes(self):
        graph = build_successor_graph({"A": ["B"], "C": []})
        assert set(graph.nodes) == {"A", "B", "C"}
        assert set(graph.edges) == {("A", "B")}


class TestSuccessorGraphAuditor:
    def test_clean_updates(self, label_set):
        auditor = SuccessorGraphAuditor(label_set)
        auditor.update("A", ["T"], Fraction(1, 2))
        auditor.update("T", [], Fraction(0, 1))
        auditor.update("B", ["A"], Fraction(2, 3))
        assert auditor.is_clean

    def test_cycle_reported(self):
        auditor = SuccessorGraphAuditor()
        auditor.update("A", ["B"])
        auditor.update("B", ["A"])
        assert not auditor.is_clean
        assert any("cycle" in violation for violation in auditor.violations)

    def test_label_order_violation_reported(self, label_set):
        auditor = SuccessorGraphAuditor(label_set)
        auditor.update("T", [], Fraction(0, 1))
        auditor.update("A", ["T"], Fraction(1, 2))
        # B takes A as successor but with a *smaller* label than A: the labels
        # are no longer a topological order even though the graph is acyclic.
        auditor.update("B", ["A"], Fraction(1, 3))
        assert not auditor.is_clean
        assert any("label order" in violation for violation in auditor.violations)

    def test_successor_replacement_clears_old_edges(self, label_set):
        auditor = SuccessorGraphAuditor(label_set)
        auditor.update("A", ["B"], Fraction(2, 3))
        auditor.update("B", [], Fraction(1, 2))
        auditor.update("A", ["C"], Fraction(2, 3))
        auditor.update("C", [], Fraction(1, 3))
        assert auditor.is_clean
