"""Integration tests: full trials, cross-protocol comparisons, loop freedom.

These tests exercise the same pipeline as the benchmark harness (scenario ->
network -> protocols -> metrics) at a reduced scale, and verify the properties
the paper's evaluation rests on: SRP stays loop-free and never increments its
sequence number, the shared-scenario design holds, and the qualitative
protocol ordering of Fig. 7 appears.
"""

import networkx as nx
import pytest

from repro.core.ordering import UNASSIGNED
from repro.protocols import protocol_factory
from repro.sim.network import build_network, run_trial
from repro.workloads.scenario import scaled_scenario

SMALL = dict(
    node_count=16,
    flow_count=3,
    duration=25.0,
    terrain_width=900.0,
    terrain_height=300.0,
)


def small_scenario(pause_time=0.0, seed=1):
    return scaled_scenario(pause_time=pause_time, seed=seed, **SMALL)


@pytest.fixture(scope="module")
def srp_network():
    """One mobile SRP trial, run once and inspected by several tests."""
    network = build_network(small_scenario(), protocol_factory("SRP"))
    network.run()
    return network


class TestSrpTrial(object):
    def test_traffic_was_offered_and_mostly_delivered(self, srp_network):
        summary = srp_network.stats.summary()
        assert summary.data_sent > 50
        assert summary.delivery_ratio > 0.5

    def test_successor_graphs_are_loop_free_at_end(self, srp_network):
        """Theorem 3 applied to the real protocol state after a mobile trial."""
        destinations = set()
        for node in srp_network.nodes.values():
            destinations.update(node.protocol.table.destinations())
        for destination in destinations:
            graph = nx.DiGraph()
            for node_id, node in srp_network.nodes.items():
                entry = node.protocol.table.lookup(destination)
                if entry is None:
                    continue
                for successor in entry.successors:
                    graph.add_edge(node_id, successor)
            assert nx.is_directed_acyclic_graph(graph), (
                f"successor cycle for destination {destination!r}"
            )

    def test_labels_respect_topological_order_along_successor_edges(self, srp_network):
        """For every successor edge the stored successor ordering must be a
        feasible successor of the node's own ordering (Eq. 5 materialised)."""
        for node in srp_network.nodes.values():
            table = node.protocol.table
            for destination in table.destinations():
                entry = table.lookup(destination)
                if entry.ordering == UNASSIGNED:
                    continue
                for successor in entry.successors.values():
                    assert entry.ordering.precedes(successor.ordering)

    def test_srp_never_increments_its_sequence_number(self, srp_network):
        for node in srp_network.nodes.values():
            assert node.protocol.sequence_number_metric() == 0

    def test_mac_drop_accounting_collected(self, srp_network):
        summary = srp_network.stats.summary()
        assert summary.mac_drops_per_node >= 0.0


class TestCrossProtocolComparison:
    @pytest.fixture(scope="class")
    def summaries(self):
        results = {}
        for protocol in ("SRP", "LDR", "AODV", "DSR", "OLSR"):
            results[protocol] = run_trial(
                small_scenario(seed=2), protocol_factory(protocol)
            )
        return results

    def test_all_protocols_deliver_something(self, summaries):
        for protocol, summary in summaries.items():
            assert summary.data_delivered > 0, protocol

    def test_offered_load_identical(self, summaries):
        sent = {summary.data_sent for summary in summaries.values()}
        assert len(sent) == 1

    def test_fig7_ordering_srp_zero_ldr_low_aodv_high(self, summaries):
        assert summaries["SRP"].average_sequence_number == 0.0
        assert (
            summaries["AODV"].average_sequence_number
            >= summaries["LDR"].average_sequence_number
        )
        assert summaries["AODV"].average_sequence_number > 0.0

    def test_olsr_has_highest_control_overhead(self, summaries):
        olsr = summaries["OLSR"].control_transmissions
        for protocol in ("SRP", "LDR", "AODV", "DSR"):
            assert olsr > summaries[protocol].control_transmissions

    def test_on_demand_overhead_is_bounded(self, summaries):
        """On-demand protocols only spend control packets on discoveries, so
        their load per delivered packet stays well below the proactive one."""
        for protocol in ("SRP", "LDR", "AODV", "DSR"):
            assert summaries[protocol].network_load < summaries["OLSR"].network_load


class TestMobilityEffects:
    def test_static_network_delivers_more_than_constant_mobility(self):
        mobile = run_trial(
            small_scenario(pause_time=0.0, seed=3), protocol_factory("SRP")
        )
        static = run_trial(
            small_scenario(pause_time=25.0, seed=3), protocol_factory("SRP")
        )
        assert static.delivery_ratio >= mobile.delivery_ratio - 0.05

    def test_determinism_same_seed_same_results(self):
        first = run_trial(small_scenario(seed=9), protocol_factory("SRP"))
        second = run_trial(small_scenario(seed=9), protocol_factory("SRP"))
        assert first.data_sent == second.data_sent
        assert first.data_delivered == second.data_delivered
        assert first.control_transmissions == second.control_transmissions

    def test_different_seeds_change_outcomes(self):
        first = run_trial(small_scenario(seed=1), protocol_factory("SRP"))
        second = run_trial(small_scenario(seed=5), protocol_factory("SRP"))
        assert (
            first.data_sent != second.data_sent
            or first.control_transmissions != second.control_transmissions
        )


class TestFailureInjection:
    def test_half_the_relays_failing_mid_trial_does_not_break_invariants(self):
        """Crash several nodes mid-trial (silence their radios by moving them
        far away); the surviving SRP nodes keep loop-free state and keep
        delivering what is physically deliverable."""
        from repro.sim.mobility import StaticMobility
        from repro.sim.space import Position

        network = build_network(small_scenario(seed=4), protocol_factory("SRP"))
        crashed = list(network.nodes)[5:10]

        def crash():
            for node_id in crashed:
                network.nodes[node_id].mobility = StaticMobility(
                    Position(50_000.0, 50_000.0)
                )

        network.simulator.schedule_at(10.0, crash)
        summary = network.run()
        assert summary.data_sent > 0
        # Loop freedom must survive the crashes.
        for destination in range(network.scenario.node_count):
            graph = nx.DiGraph()
            for node_id, node in network.nodes.items():
                entry = node.protocol.table.lookup(destination)
                if entry is None:
                    continue
                for successor in entry.successors:
                    graph.add_edge(node_id, successor)
            assert nx.is_directed_acyclic_graph(graph)
        for node in network.nodes.values():
            assert node.protocol.sequence_number_metric() == 0
