"""Tests for confidence intervals, metric extraction and report formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics.collectors import METRIC_EXTRACTORS, extract_metric, summary_metrics
from repro.metrics.confidence import (
    ConfidenceInterval,
    intervals_disjoint,
    mean_confidence_interval,
)
from repro.metrics.report import format_series, format_table, series_from_results
from repro.sim.stats import TrialSummary


def make_summary(**overrides):
    base = dict(
        data_sent=100,
        data_delivered=80,
        control_transmissions=40,
        mean_latency=0.5,
        mac_drops_per_node=3.0,
        average_sequence_number=1.5,
        duplicate_deliveries=0,
    )
    base.update(overrides)
    return TrialSummary(**base)


class TestConfidenceIntervals:
    def test_known_small_sample(self):
        interval = mean_confidence_interval([1.0, 2.0, 3.0])
        assert interval.mean == pytest.approx(2.0)
        # t(0.975, 2 dof) = 4.3027; s = 1.0; half width = 4.3027/sqrt(3)
        assert interval.half_width == pytest.approx(4.3027 / math.sqrt(3), rel=1e-3)

    def test_single_sample_has_zero_width(self):
        interval = mean_confidence_interval([5.0])
        assert interval.mean == 5.0
        assert interval.half_width == 0.0

    def test_identical_samples_have_zero_width(self):
        interval = mean_confidence_interval([2.0, 2.0, 2.0, 2.0])
        assert interval.half_width == pytest.approx(0.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)

    def test_overlap_and_disjoint(self):
        a = ConfidenceInterval(1.0, 0.2, 0.95, 10)
        b = ConfidenceInterval(1.3, 0.2, 0.95, 10)
        c = ConfidenceInterval(2.0, 0.2, 0.95, 10)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert intervals_disjoint(a, c)
        assert not intervals_disjoint(a, b)

    def test_bounds(self):
        interval = ConfidenceInterval(1.0, 0.25, 0.95, 5)
        assert interval.low == 0.75
        assert interval.high == 1.25

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=20))
    def test_mean_always_inside_interval(self, values):
        interval = mean_confidence_interval(values)
        assert interval.low <= interval.mean <= interval.high

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=20))
    def test_higher_confidence_widens_interval(self, values):
        narrow = mean_confidence_interval(values, confidence=0.90)
        wide = mean_confidence_interval(values, confidence=0.99)
        assert wide.half_width >= narrow.half_width - 1e-12


class TestMetricExtraction:
    def test_all_paper_metrics_defined(self):
        assert set(METRIC_EXTRACTORS) == {
            "delivery_ratio",
            "network_load",
            "latency",
            "mac_drops",
            "sequence_number",
            # Resilience metrics (fault-injection trials; neutral when clean).
            "delivery_during_fault",
            "delivery_post_fault",
            "route_recovery_time",
            "heal_control_burst",
        }

    def test_extract_each_metric(self):
        summary = make_summary()
        assert extract_metric(summary, "delivery_ratio") == pytest.approx(0.8)
        assert extract_metric(summary, "network_load") == pytest.approx(0.5)
        assert extract_metric(summary, "latency") == 0.5
        assert extract_metric(summary, "mac_drops") == 3.0
        assert extract_metric(summary, "sequence_number") == 1.5

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            extract_metric(make_summary(), "goodput")

    def test_summary_metrics_returns_all(self):
        metrics = summary_metrics(make_summary())
        assert set(metrics) == set(METRIC_EXTRACTORS)


class TestReportFormatting:
    def _results(self):
        return {
            "SRP": {0.0: [0.9, 0.92], 100.0: [0.95, 0.97]},
            "AODV": {0.0: [0.7, 0.72], 100.0: [0.8, 0.82]},
        }

    def test_series_from_results(self):
        series = series_from_results(
            "delivery ratio", "pause time", [0.0, 100.0], self._results()
        )
        assert series.protocol_values("SRP") == [
            pytest.approx(0.91),
            pytest.approx(0.96),
        ]
        assert len(series.by_protocol["AODV"]) == 2

    def test_format_series_contains_all_protocols_and_x_values(self):
        series = series_from_results(
            "delivery ratio", "pause time", [0.0, 100.0], self._results()
        )
        text = format_series(series)
        assert "SRP" in text and "AODV" in text
        assert "0" in text and "100" in text

    def test_format_table(self):
        rows = {
            "SRP": {"delivery_ratio": ConfidenceInterval(0.83, 0.01, 0.95, 10)},
            "AODV": {"delivery_ratio": ConfidenceInterval(0.74, 0.04, 0.95, 10)},
        }
        text = format_table(rows, title="Table I", metric_order=["delivery_ratio"])
        assert "Table I" in text
        assert "SRP" in text and "0.830" in text
        assert "AODV" in text and "0.740" in text
