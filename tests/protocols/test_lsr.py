"""LSR: the OSPF-style link-state protocol on static topologies."""

from .helpers import StaticNetwork, chain_positions, grid_positions

from repro.protocols import protocol_factory
from repro.protocols.lsr import LsrConfig, LsrLsa, LsrProtocol


def lsr_factory(config: LsrConfig | None = None):
    return lambda node_id: LsrProtocol(config or LsrConfig())


class TestConvergence:
    def test_chain_converges_to_hop_by_hop_routes(self):
        net = StaticNetwork(chain_positions(5), lsr_factory())
        net.start()
        net.run(until=20.0)
        # Node 0 reaches node 4 via 1, node 4 reaches 0 via 3.
        assert net.protocol(0).next_hop(4) == 1
        assert net.protocol(4).next_hop(0) == 3
        # Middle node routes both ways.
        assert net.protocol(2).next_hop(0) == 1
        assert net.protocol(2).next_hop(4) == 3

    def test_grid_delivers_data_end_to_end(self):
        net = StaticNetwork(grid_positions(3, 3), lsr_factory())
        net.start()
        net.run(until=20.0)
        for _ in range(10):
            net.send_data(0, 8)
        net.run(until=30.0)
        summary = net.summary()
        assert summary.data_delivered == 10

    def test_all_pairs_reachable_after_convergence(self):
        net = StaticNetwork(chain_positions(4), lsr_factory())
        net.start()
        net.run(until=20.0)
        for source in range(4):
            protocol = net.protocol(source)
            for destination in range(4):
                if destination != source:
                    assert protocol.next_hop(destination) is not None


class TestLsaDiscipline:
    def test_duplicate_lsas_are_dropped_and_counted(self):
        net = StaticNetwork(chain_positions(3), lsr_factory())
        net.start()
        net.run(until=20.0)
        # Flooding over a shared medium necessarily re-delivers (origin, seq)
        # pairs; the dedup set must absorb them.
        total_duplicates = sum(
            net.protocol(n).duplicate_lsa_drops for n in range(3)
        )
        assert total_duplicates > 0
        # And the LSDB holds exactly one row per other origin.
        for n in range(3):
            assert set(net.protocol(n).lsdb) == {m for m in range(3) if m != n}

    def test_stale_sequence_number_does_not_replace_newer(self):
        net = StaticNetwork(chain_positions(2), lsr_factory())
        net.start()
        net.run(until=20.0)
        protocol = net.protocol(0)
        entry = protocol.lsdb[1]
        stored_seq = entry.sequence_number
        stale = LsrLsa(origin=1, sequence_number=stored_seq - 1, links=(), ttl=5)
        protocol._handle_lsa(stale)
        assert protocol.lsdb[1].sequence_number == stored_seq
        assert protocol.lsdb[1].links == entry.links

    def test_ttl_zero_lsa_is_not_installed(self):
        net = StaticNetwork(chain_positions(2), lsr_factory())
        net.start()
        net.run(until=5.0)
        protocol = net.protocol(0)
        dead = LsrLsa(origin=99, sequence_number=1, links=(1,), ttl=0)
        protocol._handle_lsa(dead)
        assert 99 not in protocol.lsdb
        assert protocol.ttl_expired_drops == 1

    def test_two_way_check_ignores_one_sided_links(self):
        net = StaticNetwork(chain_positions(2), lsr_factory())
        net.start()
        net.run(until=20.0)
        protocol = net.protocol(0)
        # A ghost origin claims a link to node 1, but node 1 never
        # advertises the ghost back: SPF must not route through it.
        ghost = LsrLsa(origin=77, sequence_number=1, links=(1,), ttl=5)
        protocol._handle_lsa(ghost)
        protocol._routes_dirty = True
        protocol._recompute_routes()
        assert protocol.next_hop(77) is None


class TestDynamics:
    def test_link_failure_triggers_reroute_in_grid(self):
        # 3x3 grid: 0 -> 2 goes via 1; killing that adjacency must reroute
        # through the second row rather than blackholing.
        net = StaticNetwork(grid_positions(3, 3), lsr_factory())
        net.start()
        net.run(until=20.0)
        protocol = net.protocol(0)
        first = protocol.next_hop(2)
        assert first is not None
        from repro.sim.packet import Packet, PacketKind

        packet = Packet(
            kind=PacketKind.DATA,
            source=0,
            destination=2,
            size_bytes=64,
            created_at=net.simulator.now,
        )
        protocol.handle_link_failure(packet, first)
        rerouted = protocol.next_hop(2)
        assert rerouted != first

    def test_crash_clears_volatile_state_but_keeps_sequence_number(self):
        net = StaticNetwork(chain_positions(3), lsr_factory())
        net.start()
        net.run(until=20.0)
        protocol = net.protocol(1)
        seq_before = protocol.lsa_sequence_number
        assert seq_before > 0
        net.nodes[1].go_down()
        assert protocol.lsdb == {}
        assert protocol.neighbors == {}
        assert protocol.routing_table == {}
        assert protocol.lsa_sequence_number == seq_before
        net.nodes[1].go_up()
        net.run(until=45.0)
        # Rebooted node re-learns the chain and its neighbours re-accept it
        # (monotone seq means their dedup state never blocks fresh LSAs).
        assert protocol.next_hop(0) == 0
        assert protocol.next_hop(2) == 2
        assert net.protocol(0).next_hop(2) == 1


class TestRegistry:
    def test_lsr_is_registered(self):
        factory = protocol_factory("LSR")
        protocol = factory(0)
        assert isinstance(protocol, LsrProtocol)
        assert protocol.name == "LSR"

    def test_factory_accepts_config_dict(self):
        factory = protocol_factory("LSR", {"hello_interval": 1.0, "lsa_ttl": 4})
        protocol = factory(0)
        assert protocol.config.hello_interval == 1.0
        assert protocol.config.lsa_ttl == 4
        # Unspecified fields keep their defaults.
        assert protocol.config.lsa_interval == LsrConfig().lsa_interval
