"""Shared helpers for protocol tests: small static networks with placed nodes."""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Tuple

from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.mac import Mac
from repro.sim.mobility import StaticMobility
from repro.sim.node import Node
from repro.sim.phy import PhyConfig
from repro.sim.space import Position
from repro.sim.stats import TrialStats

NodeId = Hashable


class StaticNetwork:
    """A hand-placed static network for deterministic protocol tests.

    ``positions`` maps node ids to (x, y) coordinates in metres; the default
    radio range is 250 m, so chains like ``{0: (0, 0), 1: (200, 0), ...}``
    give exact control over the connectivity graph.
    """

    def __init__(
        self,
        positions: Dict[NodeId, Tuple[float, float]],
        protocol_factory: Callable[[NodeId], object],
        *,
        phy: PhyConfig | None = None,
        seed: int = 1,
    ) -> None:
        self.simulator = Simulator()
        self.phy = phy or PhyConfig()
        self.channel = Channel(self.simulator, self.phy)
        self.stats = TrialStats()
        self.nodes: Dict[NodeId, Node] = {}
        rng = random.Random(seed)
        for node_id, (x, y) in positions.items():
            mac = Mac(
                node_id,
                self.simulator,
                self.channel,
                random.Random(rng.random()),
                position_provider=lambda nid=node_id: self.nodes[nid].position(),
            )
            node = Node(
                node_id,
                self.simulator,
                StaticMobility(Position(x, y)),
                mac,
                self.stats,
            )
            self.nodes[node_id] = node
            node.attach_protocol(protocol_factory(node_id))

    def start(self) -> None:
        """Call every protocol's start hook."""
        for node in self.nodes.values():
            node.protocol.start()

    def run(self, until: float) -> None:
        """Advance the simulation to ``until`` seconds."""
        self.simulator.run(until=until)

    def protocol(self, node_id: NodeId):
        """The protocol instance of one node."""
        return self.nodes[node_id].protocol

    def send_data(
        self, source: NodeId, destination: NodeId, *, size: int = 512
    ) -> None:
        """Originate one application packet at ``source``."""
        self.nodes[source].originate_data(destination, size)

    def summary(self):
        """Roll up statistics (also collects per-node protocol metrics)."""
        for node in self.nodes.values():
            node.protocol.finalize()
            self.stats.record_mac_drops(node.node_id, node.mac.stats.drops)
            self.stats.record_sequence_number(
                node.node_id, node.protocol.sequence_number_metric()
            )
        return self.stats.summary()


def chain_positions(
    count: int, spacing: float = 200.0
) -> Dict[int, Tuple[float, float]]:
    """Node ids 0..count-1 on a line, each ``spacing`` metres apart."""
    return {i: (i * spacing, 0.0) for i in range(count)}


def grid_positions(
    rows: int, columns: int, spacing: float = 200.0
) -> Dict[int, Tuple[float, float]]:
    """A rows x columns grid with the given spacing."""
    positions = {}
    for row in range(rows):
        for column in range(columns):
            positions[row * columns + column] = (column * spacing, row * spacing)
    return positions
