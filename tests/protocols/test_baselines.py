"""Tests for the baseline protocols: AODV, LDR, DSR, OLSR and the oracle."""

import pytest

from repro.protocols import (
    PROTOCOLS,
    protocol_factory,
)
from repro.protocols.dsr import SourceRoute
from repro.protocols.ldr import INFINITE_DISTANCE, LdrRouteEntry

from .helpers import StaticNetwork, chain_positions, grid_positions


def build_chain(protocol_name, length=5):
    network = StaticNetwork(chain_positions(length), protocol_factory(protocol_name))
    network.start()
    return network


class TestRegistry:
    def test_all_paper_protocols_registered(self):
        assert set(PROTOCOLS) >= {"SRP", "LDR", "AODV", "DSR", "OLSR"}

    def test_factory_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            protocol_factory("NOPE")

    def test_factory_creates_independent_instances(self):
        factory = protocol_factory("AODV")
        assert factory(1) is not factory(2)


@pytest.mark.parametrize("protocol_name", ["AODV", "LDR", "DSR", "Oracle"])
class TestOnDemandDelivery:
    def test_multihop_delivery(self, protocol_name):
        network = build_chain(protocol_name, 5)
        network.send_data(0, 4)
        network.run(until=5.0)
        summary = network.summary()
        assert summary.data_delivered == 1

    def test_bidirectional_delivery(self, protocol_name):
        network = build_chain(protocol_name, 4)
        network.send_data(0, 3)
        network.send_data(3, 0)
        network.run(until=5.0)
        assert network.summary().data_delivered == 2

    def test_unreachable_destination_is_not_delivered(self, protocol_name):
        positions = dict(chain_positions(3))
        positions[99] = (9000.0, 9000.0)
        network = StaticNetwork(positions, protocol_factory(protocol_name))
        network.start()
        network.send_data(0, 99)
        network.run(until=10.0)
        assert network.summary().data_delivered == 0


class TestOlsrDelivery:
    def test_proactive_delivery_after_convergence(self):
        network = build_chain("OLSR", 4)
        # Let HELLO/TC flooding converge before offering traffic.
        network.run(until=12.0)
        network.send_data(0, 3)
        network.run(until=16.0)
        assert network.summary().data_delivered == 1

    def test_no_route_before_convergence_drops_data(self):
        network = build_chain("OLSR", 4)
        network.send_data(0, 3)  # at t=0 no topology is known yet
        network.run(until=0.5)
        assert network.protocol(0).data_drops >= 1

    def test_topology_and_neighbors_learned(self):
        network = build_chain("OLSR", 4)
        network.run(until=12.0)
        middle = network.protocol(1)
        assert 0 in middle.neighbors and 2 in middle.neighbors
        assert middle.next_hop(3) == 2

    def test_olsr_control_overhead_is_periodic(self):
        network = build_chain("OLSR", 4)
        network.run(until=20.0)
        # Even with zero data traffic OLSR keeps transmitting control packets.
        assert network.stats.control_transmissions > 20


class TestAodvSpecifics:
    def test_sequence_number_grows_with_discoveries(self):
        network = build_chain("AODV", 4)
        network.send_data(0, 3)
        network.run(until=3.0)
        assert network.protocol(0).own_sequence_number >= 1
        assert network.protocol(3).own_sequence_number >= 1

    def test_route_update_prefers_fresher_sequence_number(self):
        network = StaticNetwork({0: (0, 0), 1: (100, 0)}, protocol_factory("AODV"))
        network.start()
        protocol = network.protocol(0)
        assert protocol._update_route("D", next_hop=1, sequence_number=5, hop_count=3)
        assert not protocol._update_route(
            "D", next_hop=1, sequence_number=4, hop_count=1
        )
        assert protocol._update_route("D", next_hop=1, sequence_number=5, hop_count=2)
        assert protocol._update_route("D", next_hop=1, sequence_number=6, hop_count=9)

    def test_link_failure_invalidates_and_inflates_sequence_number(self):
        network = build_chain("AODV", 4)
        network.send_data(0, 3)
        network.run(until=3.0)
        protocol = network.protocol(0)
        entry = protocol.routes[3]
        assert entry.valid
        before = entry.sequence_number
        from repro.sim.packet import Packet, PacketKind

        dummy = Packet(PacketKind.DATA, 0, 3, 512, network.simulator.now)
        protocol.handle_link_failure(dummy, entry.next_hop)
        route = protocol.routes[3]
        assert not route.valid or route.sequence_number > before

    def test_aodv_metric_reports_own_sequence_number(self):
        network = build_chain("AODV", 3)
        network.send_data(0, 2)
        network.run(until=3.0)
        assert network.protocol(0).sequence_number_metric() == network.protocol(
            0
        ).own_sequence_number


class TestLdrSpecifics:
    def test_in_order_condition(self):
        network = StaticNetwork({0: (0, 0), 1: (100, 0)}, protocol_factory("LDR"))
        network.start()
        protocol = network.protocol(0)
        entry = LdrRouteEntry("D", sequence_number=3, feasible_distance=4.0)
        assert protocol._in_order(entry, 4, 100.0)      # fresher sn
        assert protocol._in_order(entry, 3, 3.0)        # same sn, smaller distance
        assert not protocol._in_order(entry, 3, 4.0)    # same sn, not smaller
        assert not protocol._in_order(entry, 2, 1.0)    # older sn

    def test_feasible_distance_never_increases_within_sequence_number(self):
        network = StaticNetwork({0: (0, 0), 1: (100, 0)}, protocol_factory("LDR"))
        network.start()
        protocol = network.protocol(0)
        assert protocol._accept_route("D", 1, sequence_number=2, distance=5.0)
        assert protocol.routes["D"].feasible_distance == 5.0
        assert protocol._accept_route("D", 1, sequence_number=2, distance=3.0)
        assert protocol.routes["D"].feasible_distance == 3.0
        # A longer route at the same sequence number is rejected outright.
        assert not protocol._accept_route("D", 1, sequence_number=2, distance=4.0)
        # A fresher sequence number resets the feasible distance.
        assert protocol._accept_route("D", 1, sequence_number=3, distance=9.0)
        assert protocol.routes["D"].feasible_distance == 9.0

    def test_new_node_has_infinite_feasible_distance(self):
        assert LdrRouteEntry("D").feasible_distance == INFINITE_DISTANCE

    def test_ldr_sequence_numbers_grow_slower_than_aodv(self):
        """Fig. 7's ordering: AODV > LDR for the same workload."""
        results = {}
        for name in ("AODV", "LDR"):
            network = build_chain(name, 5)
            for _ in range(3):
                network.send_data(0, 4)
                network.send_data(4, 0)
            network.run(until=10.0)
            results[name] = network.summary().average_sequence_number
        assert results["AODV"] > results["LDR"]


class TestDsrSpecifics:
    def test_source_route_header_advances(self):
        header = SourceRoute(route=("a", "b", "c"), index=0)
        assert header.next_hop == "b"
        advanced = header.advanced()
        assert advanced.next_hop == "c"
        assert advanced.advanced().next_hop is None

    def test_route_cache_stores_suffixes_from_self(self):
        network = StaticNetwork({0: (0, 0), 1: (100, 0)}, protocol_factory("DSR"))
        network.start()
        protocol = network.protocol(0)
        protocol.cache_route((0, 1, 2, 3))
        assert protocol.best_route(3) == (0, 1, 2, 3)
        assert protocol.best_route(2) == (0, 1, 2)

    def test_route_cache_prefers_shorter_route(self):
        network = StaticNetwork({0: (0, 0), 1: (100, 0)}, protocol_factory("DSR"))
        network.start()
        protocol = network.protocol(0)
        protocol.cache_route((0, 1, 2, 3))
        protocol.cache_route((0, 5, 3))
        assert protocol.best_route(3) == (0, 5, 3)

    def test_remove_link_purges_routes(self):
        network = StaticNetwork({0: (0, 0), 1: (100, 0)}, protocol_factory("DSR"))
        network.start()
        protocol = network.protocol(0)
        protocol.cache_route((0, 1, 2, 3))
        protocol.remove_link(1, 2)
        assert protocol.best_route(3) is None

    def test_data_packets_carry_source_routes(self):
        network = build_chain("DSR", 4)
        network.send_data(0, 3)
        network.run(until=5.0)
        assert network.summary().data_delivered == 1
        assert network.protocol(0).best_route(3) is not None


class TestOracle:
    def test_oracle_uses_no_control_packets(self):
        network = build_chain("Oracle", 5)
        network.send_data(0, 4)
        network.run(until=2.0)
        summary = network.summary()
        assert summary.data_delivered == 1
        assert summary.control_transmissions == 0

    def test_oracle_delivery_on_grid(self):
        network = StaticNetwork(grid_positions(3, 3), protocol_factory("Oracle"))
        network.start()
        network.send_data(0, 8)
        network.run(until=2.0)
        assert network.summary().data_delivered == 1
