"""Tests for the shared on-demand machinery (RREQ cache, discovery controller)."""

from repro.protocols.base import PacketBuffer
from repro.protocols.common import ComputationState, DiscoveryController, RreqCache
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketKind


def data_packet(destination, source="s"):
    return Packet(PacketKind.DATA, source, destination, 512, 0.0)


class TestPacketBuffer:
    def test_push_and_pop(self):
        buffer = PacketBuffer(max_per_destination=2)
        a, b = data_packet("d"), data_packet("d")
        assert buffer.push(a) and buffer.push(b)
        assert buffer.pending("d") == 2
        assert buffer.pop_all("d") == [a, b]
        assert buffer.pending("d") == 0

    def test_overflow_rejected(self):
        buffer = PacketBuffer(max_per_destination=1)
        assert buffer.push(data_packet("d"))
        assert not buffer.push(data_packet("d"))

    def test_drop_all_counts(self):
        buffer = PacketBuffer()
        buffer.push(data_packet("d"))
        buffer.push(data_packet("d"))
        assert buffer.drop_all("d") == 2
        assert buffer.drop_all("d") == 0

    def test_destinations_are_independent(self):
        buffer = PacketBuffer(max_per_destination=1)
        assert buffer.push(data_packet("d1"))
        assert buffer.push(data_packet("d2"))


class TestRreqCache:
    def test_passive_until_engaged(self):
        cache = RreqCache()
        assert cache.state_of("s", 1) is ComputationState.PASSIVE
        entry = cache.try_engage("s", 1, now=0.0, last_hop="x")
        assert entry is not None
        assert cache.state_of("s", 1) is ComputationState.ENGAGED

    def test_node_enters_computation_at_most_once(self):
        """Theorem 7's premise: a node is engaged/active at most once per
        (source, rreq_id), so control packets cannot loop."""
        cache = RreqCache()
        assert cache.try_engage("s", 1, now=0.0, last_hop="x") is not None
        assert cache.try_engage("s", 1, now=0.0, last_hop="y") is None

    def test_activate_marks_originator(self):
        cache = RreqCache()
        cache.activate("me", 7, now=0.0)
        assert cache.state_of("me", 7) is ComputationState.ACTIVE
        assert cache.try_engage("me", 7, now=0.0, last_hop="x") is None

    def test_different_rreq_ids_are_independent(self):
        cache = RreqCache()
        cache.activate("s", 1, now=0.0)
        assert cache.state_of("s", 2) is ComputationState.PASSIVE

    def test_expiry(self):
        cache = RreqCache(max_age=10.0)
        cache.try_engage("s", 1, now=0.0, last_hop="x")
        cache.expire(now=5.0)
        assert cache.state_of("s", 1) is ComputationState.ENGAGED
        cache.expire(now=20.0)
        assert cache.state_of("s", 1) is ComputationState.PASSIVE

    def test_cached_ordering_round_trip(self):
        cache = RreqCache()
        cache.try_engage("s", 1, now=0.0, last_hop="x", cached_ordering="M")
        assert cache.get("s", 1).cached_ordering == "M"
        assert cache.get("s", 2) is None


class TestDiscoveryController:
    def _controller(self, *, timeout=1.0, max_attempts=3):
        simulator = Simulator()
        sent = []
        failed = []
        controller = DiscoveryController(
            simulator,
            send_request=lambda destination, rreq_id, attempt: sent.append(
                (destination, rreq_id, attempt)
            ),
            give_up=failed.append,
            timeout=timeout,
            max_attempts=max_attempts,
        )
        return simulator, controller, sent, failed

    def test_begin_sends_first_request(self):
        _, controller, sent, _ = self._controller()
        controller.begin("d")
        assert sent == [("d", 1, 1)]
        assert controller.is_active("d")

    def test_begin_is_idempotent_while_active(self):
        _, controller, sent, _ = self._controller()
        controller.begin("d")
        assert controller.begin("d") is None
        assert len(sent) == 1

    def test_retries_then_gives_up(self):
        simulator, controller, sent, failed = self._controller(max_attempts=3)
        controller.begin("d")
        simulator.run()
        assert [attempt for _, _, attempt in sent] == [1, 2, 3]
        assert failed == ["d"]
        assert not controller.is_active("d")

    def test_complete_cancels_retries(self):
        simulator, controller, sent, failed = self._controller()
        controller.begin("d")
        controller.complete("d")
        simulator.run()
        assert len(sent) == 1
        assert failed == []

    def test_rreq_ids_are_unique_per_attempt(self):
        simulator, controller, sent, _ = self._controller(max_attempts=3)
        controller.begin("d")
        simulator.run()
        rreq_ids = [rreq_id for _, rreq_id, _ in sent]
        assert len(set(rreq_ids)) == len(rreq_ids)

    def test_multiple_destinations_tracked_independently(self):
        _, controller, sent, _ = self._controller()
        controller.begin("d1")
        controller.begin("d2")
        assert controller.is_active("d1") and controller.is_active("d2")
        assert len(sent) == 2
