"""Tests for the SRP protocol: procedures, table behaviour and end-to-end routing."""

from repro.core.fractions import ProperFraction
from repro.core.ordering import UNASSIGNED, Ordering
from repro.protocols.srp import SrpConfig, SrpProtocol, SrpRreq
from repro.protocols.srp.table import SrpRoutingTable

from .helpers import StaticNetwork, chain_positions


def srp_factory(config=None):
    return lambda node_id: SrpProtocol(config or SrpConfig())


def build_chain(length=5, config=None):
    network = StaticNetwork(chain_positions(length), srp_factory(config))
    network.start()
    return network


class TestRoutingTable:
    def test_entry_created_on_demand(self):
        table = SrpRoutingTable()
        entry = table.entry("T")
        assert not entry.is_active
        assert not entry.is_assigned
        assert entry.ordering == UNASSIGNED

    def test_add_and_remove_successor(self):
        table = SrpRoutingTable()
        table.add_successor("T", "B", Ordering(1, ProperFraction(1, 3)), 2.0, now=0.0)
        assert table.entry("T").is_active
        assert table.next_hop("T") == "B"
        became_invalid = table.remove_successor("T", "B")
        assert became_invalid
        assert table.next_hop("T") is None

    def test_best_successor_is_min_distance(self):
        table = SrpRoutingTable()
        table.add_successor("T", "far", Ordering(1, ProperFraction(1, 3)), 5.0, now=0.0)
        table.add_successor(
            "T", "near", Ordering(1, ProperFraction(1, 4)), 2.0, now=0.0
        )
        assert table.next_hop("T") == "near"
        assert table.alternative_next_hop("T", excluding="near") == "far"

    def test_successor_maximum(self):
        table = SrpRoutingTable()
        far = Ordering(1, ProperFraction(2, 3))
        near = Ordering(1, ProperFraction(1, 3))
        table.add_successor("T", "a", far, 1.0, now=0.0)
        table.add_successor("T", "b", near, 1.0, now=0.0)
        assert table.entry("T").successor_maximum() == far

    def test_drop_out_of_order_successors(self):
        table = SrpRoutingTable()
        table.set_own_ordering("T", Ordering(1, ProperFraction(1, 2)), 2.0)
        table.add_successor(
            "T", "good", Ordering(1, ProperFraction(1, 3)), 1.0, now=0.0
        )
        table.add_successor("T", "bad", Ordering(1, ProperFraction(2, 3)), 1.0, now=0.0)
        dropped = table.drop_out_of_order_successors("T")
        assert dropped == ["bad"]
        assert "good" in table.entry("T").successors

    def test_remove_neighbor_everywhere(self):
        table = SrpRoutingTable()
        table.add_successor("T1", "B", Ordering(1, ProperFraction(1, 3)), 1.0, now=0.0)
        table.add_successor("T2", "B", Ordering(1, ProperFraction(1, 4)), 1.0, now=0.0)
        table.add_successor("T2", "C", Ordering(1, ProperFraction(1, 5)), 2.0, now=0.0)
        invalid = table.remove_neighbor_everywhere("B")
        assert invalid == ["T1"]
        assert table.entry("T2").is_active

    def test_successor_expiry(self):
        table = SrpRoutingTable(route_lifetime=5.0)
        table.add_successor("T", "B", Ordering(1, ProperFraction(1, 3)), 1.0, now=0.0)
        assert table.expire_stale_successors(now=4.0) == []
        assert table.expire_stale_successors(now=6.0) == ["T"]


class TestProtocolUnits:
    """Direct unit tests of protocol decision logic without a full network."""

    def _attached_protocol(self):
        network = StaticNetwork({0: (0, 0), 1: (100, 0)}, srp_factory())
        network.start()
        return network.protocol(0), network

    def test_node_labels_itself_on_start(self):
        protocol, _ = self._attached_protocol()
        own = protocol.own_ordering(protocol.node_id)
        assert own.sequence_number == 1
        assert own.fraction.is_zero

    def test_sdc_requires_active_route(self):
        protocol, _ = self._attached_protocol()
        rreq = SrpRreq(
            source=9,
            rreq_id=1,
            destination=5,
            requested_ordering=UNASSIGNED,
            unknown_ordering=True,
            traversed_distance=5.0,
        )
        assert not protocol._satisfies_sdc(rreq)

    def test_sdc_holds_for_in_order_route_beyond_min_distance(self):
        protocol, _ = self._attached_protocol()
        protocol.table.set_own_ordering(5, Ordering(2, ProperFraction(1, 3)), 2.0)
        protocol.table.add_successor(
            5, 1, Ordering(2, ProperFraction(1, 4)), 1.0, now=0.0
        )
        in_order = SrpRreq(
            source=9,
            rreq_id=1,
            destination=5,
            requested_ordering=Ordering(2, ProperFraction(1, 2)),
            traversed_distance=5.0,
        )
        assert protocol._satisfies_sdc(in_order)
        too_close = SrpRreq(
            source=9,
            rreq_id=2,
            destination=5,
            requested_ordering=Ordering(2, ProperFraction(1, 2)),
            traversed_distance=0.0,
        )
        assert not protocol._satisfies_sdc(too_close)

    def test_sdc_rejects_out_of_order_route(self):
        protocol, _ = self._attached_protocol()
        protocol.table.set_own_ordering(5, Ordering(2, ProperFraction(1, 2)), 2.0)
        protocol.table.add_successor(
            5, 1, Ordering(2, ProperFraction(1, 4)), 1.0, now=0.0
        )
        # The requester is already closer to the destination than we are.
        rreq = SrpRreq(
            source=9,
            rreq_id=1,
            destination=5,
            requested_ordering=Ordering(2, ProperFraction(1, 3)),
            traversed_distance=5.0,
        )
        assert not protocol._satisfies_sdc(rreq)

    def test_sdc_fresher_sequence_number_wins(self):
        protocol, _ = self._attached_protocol()
        protocol.table.set_own_ordering(5, Ordering(3, ProperFraction(2, 3)), 2.0)
        protocol.table.add_successor(
            5, 1, Ordering(3, ProperFraction(1, 4)), 1.0, now=0.0
        )
        rreq = SrpRreq(
            source=9,
            rreq_id=1,
            destination=5,
            requested_ordering=Ordering(2, ProperFraction(1, 100)),
            traversed_distance=5.0,
        )
        assert protocol._satisfies_sdc(rreq)

    def test_rreq_ordering_lie(self):
        protocol, _ = self._attached_protocol()
        lied = protocol._maybe_lie(Ordering(3, ProperFraction(5, 9)))
        assert lied.sequence_number == 3
        assert lied.fraction == ProperFraction(4, 8)
        assert lied.fraction < ProperFraction(5, 9)

    def test_rreq_ordering_lie_with_unit_numerator(self):
        protocol, _ = self._attached_protocol()
        lied = protocol._maybe_lie(Ordering(3, ProperFraction(1, 4)))
        assert lied.fraction < ProperFraction(1, 4)

    def test_lie_disabled_by_config(self):
        network = StaticNetwork(
            {0: (0, 0), 1: (100, 0)}, srp_factory(SrpConfig(lie_in_rreq=False))
        )
        network.start()
        ordering = Ordering(3, ProperFraction(5, 9))
        assert network.protocol(0)._maybe_lie(ordering) == ordering

    def test_sequence_number_metric_starts_at_zero(self):
        protocol, _ = self._attached_protocol()
        assert protocol.sequence_number_metric() == 0


class TestEndToEndRouting:
    def test_data_delivery_over_multihop_chain(self):
        network = build_chain(5)
        network.send_data(0, 4)
        network.run(until=5.0)
        summary = network.summary()
        assert summary.data_sent == 1
        assert summary.data_delivered == 1

    def test_route_discovery_creates_ordered_labels(self):
        network = build_chain(5)
        network.send_data(0, 4)
        network.run(until=5.0)
        # Labels along the chain must be in topological order toward node 4.
        orderings = [network.protocol(i).own_ordering(4) for i in range(4)]
        for closer, farther in zip(orderings[1:], orderings[:-1]):
            assert farther.precedes(closer) or farther == closer
        # And the requester's successor chain reaches the destination.
        hops = [0]
        while hops[-1] != 4 and len(hops) < 10:
            next_hop = network.protocol(hops[-1]).table.next_hop(4)
            assert next_hop is not None
            hops.append(next_hop)
        assert hops[-1] == 4

    def test_successor_graph_is_loop_free_after_discovery(self):
        import networkx as nx

        network = build_chain(6)
        network.send_data(0, 5)
        network.send_data(2, 5)
        network.run(until=6.0)
        graph = nx.DiGraph()
        for node_id in network.nodes:
            entry = network.protocol(node_id).table.lookup(5)
            if entry is None:
                continue
            for successor in entry.successors:
                graph.add_edge(node_id, successor)
        assert nx.is_directed_acyclic_graph(graph)

    def test_bidirectional_traffic(self):
        network = build_chain(4)
        network.send_data(0, 3)
        network.send_data(3, 0)
        network.run(until=5.0)
        assert network.summary().data_delivered == 2

    def test_srp_sequence_number_stays_zero(self):
        """Fig. 7's headline: SRP never needs a sequence-number reset."""
        network = build_chain(6)
        for _ in range(3):
            network.send_data(0, 5)
            network.send_data(5, 0)
        network.run(until=10.0)
        summary = network.summary()
        assert summary.average_sequence_number == 0.0

    def test_unreachable_destination_drops_data(self):
        positions = dict(chain_positions(3))
        positions[99] = (5000.0, 5000.0)  # isolated node
        network = StaticNetwork(positions, srp_factory())
        network.start()
        network.send_data(0, 99)
        network.run(until=10.0)
        summary = network.summary()
        assert summary.data_delivered == 0
        assert network.protocol(0).data_drops >= 1

    def test_multiple_sources_to_one_destination(self):
        network = build_chain(6)
        for source in range(5):
            network.send_data(source, 5)
        network.run(until=8.0)
        assert network.summary().data_delivered == 5


class TestRouteRepair:
    def test_node_disappearance_triggers_new_discovery_and_delivery(self):
        """Break the only path by silencing a relay; the source re-discovers
        over the surviving topology and keeps delivering."""
        positions = {
            0: (0.0, 0.0),
            1: (200.0, 0.0),     # primary relay
            2: (200.0, 150.0),   # alternative relay
            3: (400.0, 0.0),     # destination
        }
        network = StaticNetwork(positions, srp_factory())
        network.start()
        network.send_data(0, 3)
        network.run(until=3.0)
        assert network.stats.data_delivered == 1
        # Silence node 1: drop everything it would transmit from now on by
        # moving it out of range (its MAC keeps its position provider).
        from repro.sim.mobility import StaticMobility
        from repro.sim.space import Position

        network.nodes[1].mobility = StaticMobility(Position(10_000.0, 10_000.0))
        network.send_data(0, 3)
        network.run(until=10.0)
        summary = network.summary()
        assert summary.data_delivered == 2
        assert summary.average_sequence_number == 0.0
