"""ProtocolConfig serialization: the Scenario-style to_dict/from_dict contract."""

import json

import pytest

from repro.protocols import PROTOCOLS, ProtocolSpec, protocol_factory, resolve_config
from repro.protocols.base import ProtocolConfig

CONFIG_SPECS = [
    spec for spec in PROTOCOLS.values() if spec.config_class is not None
]


@pytest.mark.parametrize("spec", CONFIG_SPECS, ids=lambda s: s.name)
class TestRoundTrip:
    def test_to_dict_from_dict_round_trips(self, spec: ProtocolSpec):
        config = spec.default_config()
        rebuilt = spec.config_class.from_dict(config.to_dict())
        assert rebuilt == config

    def test_to_dict_is_json_safe(self, spec: ProtocolSpec):
        payload = json.dumps(spec.default_config().to_dict(), sort_keys=True)
        rebuilt = spec.config_class.from_dict(json.loads(payload))
        assert rebuilt == spec.default_config()

    def test_unknown_keys_are_rejected(self, spec: ProtocolSpec):
        data = spec.default_config().to_dict()
        data["definitely_not_a_field"] = 1
        with pytest.raises(ValueError, match="definitely_not_a_field"):
            spec.config_class.from_dict(data)

    def test_partial_dict_fills_defaults(self, spec: ProtocolSpec):
        field_name, default_value = next(
            iter(spec.default_config().to_dict().items())
        )
        rebuilt = spec.config_class.from_dict({field_name: default_value})
        assert rebuilt == spec.default_config()


class TestRegistryConfigHandling:
    def test_every_paper_protocol_has_a_spec(self):
        assert {"SRP", "LDR", "AODV", "DSR", "OLSR", "LSR", "Oracle"} <= set(
            PROTOCOLS
        )

    def test_resolve_config_passes_instances_through(self):
        config = PROTOCOLS["OLSR"].default_config()
        assert resolve_config("OLSR", config) is config

    def test_resolve_config_from_dict(self):
        config = resolve_config("OLSR", {"incremental_routes": False})
        assert config.incremental_routes is False

    def test_configless_protocol_rejects_config(self):
        with pytest.raises(ValueError, match="takes no config"):
            protocol_factory("Oracle", {"anything": 1})

    def test_unknown_protocol_raises(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            protocol_factory("RIP")

    def test_non_dataclass_config_to_dict_raises(self):
        class Bare(ProtocolConfig):
            pass

        with pytest.raises(TypeError, match="dataclass"):
            Bare().to_dict()
