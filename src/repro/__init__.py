"""Reproduction of *Loop-Free Routing Using a Dense Label Set in Wireless
Networks* (Mosko & Garcia-Luna-Aceves, ICDCS 2004).

The package is organised as:

* :mod:`repro.core` — Split Label Routing (SLR): dense label sets, the SRP
  composite ordering, Algorithm 1 and the order-maintenance invariants.
* :mod:`repro.sim` — a discrete-event wireless network simulator (unit-disk
  radio, CSMA-style MAC, random-waypoint mobility) standing in for GloMoSim.
* :mod:`repro.protocols` — the paper's protocol SRP plus the AODV, DSR, LDR
  and OLSR baselines it is compared against.
* :mod:`repro.workloads` — CBR traffic and the paper's evaluation scenarios.
* :mod:`repro.metrics` — delivery ratio, network load, latency, MAC drops,
  sequence-number accounting and confidence intervals.
* :mod:`repro.experiments` — the harness regenerating Table I and Figures 3–7.
"""

__version__ = "1.0.0"

from . import core, experiments, metrics, protocols, sim, workloads

__all__ = [
    "core",
    "experiments",
    "metrics",
    "protocols",
    "sim",
    "workloads",
    "__version__",
]
