"""Workload generation: CBR traffic and the paper's evaluation scenarios."""

from .cbr import CbrFlow, CbrTrafficManager
from .scenario import PAPER_PAUSE_TIMES, PAPER_SCENARIO, Scenario, scaled_scenario

__all__ = [
    "CbrFlow",
    "CbrTrafficManager",
    "PAPER_PAUSE_TIMES",
    "PAPER_SCENARIO",
    "Scenario",
    "scaled_scenario",
]
