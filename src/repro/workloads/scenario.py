"""Scenario definitions: the evaluation setup of Section V of the paper.

A :class:`Scenario` captures everything that is *shared* between protocols in
one trial: terrain size, node count, mobility parameters (speed range and
pause time), the CBR traffic shape and the trial seed.  The same scenario fed
to different protocols yields identical mobility traces and traffic schedules
because both are generated from named random streams derived only from the
trial seed — this mirrors the paper's off-line generated mobility and packet
scripts.

``PAPER_SCENARIO`` holds the full parameters from the paper (100 nodes on a
2200 m x 600 m terrain, 30 CBR flows of 512-byte packets at 4 packets/s over a
2 Mbps channel, pause times 0–900 s over a 900 s simulation).
``scaled_scenario`` derives laptop-sized versions with the same structure for
tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Tuple

from ..sim.faults import FaultSpec
from ..sim.phy import PhyConfig
from ..sim.space import Terrain

__all__ = ["Scenario", "PAPER_SCENARIO", "PAPER_PAUSE_TIMES", "scaled_scenario"]

#: The eight pause times of the paper's evaluation (seconds).
PAPER_PAUSE_TIMES: Tuple[float, ...] = (0, 50, 100, 200, 300, 500, 700, 900)


@dataclass(frozen=True, slots=True)
class Scenario:
    """Parameters shared by every protocol in one trial."""

    node_count: int = 100
    terrain_width: float = 2200.0
    terrain_height: float = 600.0
    duration: float = 900.0
    # Mobility (random waypoint).
    min_speed: float = 0.0
    max_speed: float = 20.0
    pause_time: float = 0.0
    # Traffic (CBR).
    flow_count: int = 30
    packets_per_second: float = 4.0
    packet_size_bytes: int = 512
    mean_flow_duration: float = 60.0
    # Radio.
    phy: PhyConfig = field(default_factory=PhyConfig)
    # Reproducibility.
    seed: int = 1
    # Fault plan (repro.sim.faults); empty = the fault layer is never built.
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise ValueError(f"faults must be FaultSpec instances, got {spec!r}")
        if self.node_count < 2:
            raise ValueError("a scenario needs at least two nodes")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.flow_count < 0:
            raise ValueError("flow_count must be non-negative")
        if self.packets_per_second <= 0:
            raise ValueError("packets_per_second must be positive")

    @property
    def terrain(self) -> Terrain:
        """The rectangular simulation area."""
        return Terrain(self.terrain_width, self.terrain_height)

    def with_pause_time(self, pause_time: float) -> "Scenario":
        """The same scenario at a different mobility pause time."""
        return replace(self, pause_time=pause_time)

    def with_seed(self, seed: int) -> "Scenario":
        """The same scenario under a different trial seed."""
        return replace(self, seed=seed)

    def with_faults(self, faults: Tuple[FaultSpec, ...]) -> "Scenario":
        """The same scenario under a different fault plan."""
        return replace(self, faults=tuple(faults))

    def with_propagation_delay(self, seconds_per_metre: float) -> "Scenario":
        """The same scenario under the finite-propagation-delay channel."""
        return replace(
            self,
            phy=replace(self.phy, propagation_delay_s_per_m=seconds_per_metre),
        )

    @property
    def offered_load_pps(self) -> float:
        """Aggregate CBR sending rate (packets per second network-wide)."""
        return self.flow_count * self.packets_per_second

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict of every scenario field (phy config nested).

        The dict is the scenario's identity for job content keys and for the
        on-disk sweep store, so it must cover every field that can change a
        trial's outcome.
        """
        data: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "phy":
                value = {pf.name: getattr(value, pf.name) for pf in fields(PhyConfig)}
                # Written only when nonzero: instantaneous-propagation
                # scenarios keep the exact phy dict (and hence job content
                # keys) they had before the delay variant existed, while a
                # finite-delay scenario is a *different* scenario that never
                # collides with a committed store cell.
                if not value.get("propagation_delay_s_per_m"):
                    value.pop("propagation_delay_s_per_m", None)
            elif f.name == "faults":
                # Written only when a fault plan exists: fault-free scenarios
                # keep the exact dict (and hence job content keys) they had
                # before the fault layer existed.
                if not value:
                    continue
                value = [spec.to_dict() for spec in value]
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario written by :meth:`to_dict`."""
        kwargs = dict(data)
        phy = kwargs.get("phy")
        if isinstance(phy, Mapping):
            kwargs["phy"] = PhyConfig(**phy)
        faults = kwargs.get("faults")
        if faults:
            kwargs["faults"] = tuple(
                spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
                for spec in faults
            )
        known = {f.name for f in fields(cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**kwargs)


#: The paper's full-scale evaluation scenario (100 nodes, 30 flows, 900 s).
PAPER_SCENARIO = Scenario()


def scaled_scenario(
    *,
    node_count: int = 30,
    flow_count: int = 8,
    duration: float = 120.0,
    pause_time: float = 0.0,
    seed: int = 1,
    terrain_width: float = 1200.0,
    terrain_height: float = 400.0,
    max_speed: float = 20.0,
) -> Scenario:
    """A laptop-sized scenario with the same structure as the paper's.

    The density (nodes per unit area relative to radio range) and the offered
    load per node are kept in the same regime so qualitative protocol
    behaviour — route breaks under mobility, contention under load — is
    preserved while a trial finishes in seconds.
    """
    return Scenario(
        node_count=node_count,
        terrain_width=terrain_width,
        terrain_height=terrain_height,
        duration=duration,
        pause_time=pause_time,
        flow_count=flow_count,
        max_speed=max_speed,
        seed=seed,
    )
