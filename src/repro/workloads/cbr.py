"""Constant-bit-rate traffic generation.

The paper's workload: 30 simultaneous CBR flows of 512-byte packets at
4 packets/s.  Each flow lasts for an exponentially distributed time with a
mean of 60 s; when a flow ends, a new flow between a fresh random
source/destination pair starts, keeping the number of simultaneous flows
constant.  Flow endpoints and lifetimes come from the trial's ``traffic``
random stream, so every protocol in a trial sees the identical schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence

from ..sim.engine import Simulator
from ..sim.node import Node

__all__ = ["CbrFlow", "CbrTrafficManager"]

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class CbrFlow:
    """One constant-bit-rate flow between a source and a destination."""

    flow_id: int
    source: NodeId
    destination: NodeId
    start_time: float
    end_time: float
    packets_per_second: float
    packet_size_bytes: int

    @property
    def interval(self) -> float:
        """Seconds between consecutive packets."""
        return 1.0 / self.packets_per_second


class CbrTrafficManager:
    """Creates flows, keeps the target number active and injects packets."""

    def __init__(
        self,
        simulator: Simulator,
        nodes: Dict[NodeId, Node],
        rng: random.Random,
        *,
        flow_count: int,
        packets_per_second: float,
        packet_size_bytes: int,
        mean_flow_duration: float,
        end_time: float,
    ) -> None:
        if flow_count < 0:
            raise ValueError("flow_count must be non-negative")
        self._simulator = simulator
        self._nodes = nodes
        self._rng = rng
        self._flow_count = flow_count
        self._packets_per_second = packets_per_second
        self._packet_size_bytes = packet_size_bytes
        self._mean_flow_duration = mean_flow_duration
        self._end_time = end_time
        self._next_flow_id = 0
        #: When set, only flows whose source is in this set actually inject
        #: packets; every other flow runs as a "shadow" flow (see
        #: :meth:`restrict_to`).
        self._owned: "frozenset[NodeId] | None" = None
        self.flows: List[CbrFlow] = []

    # -- lifecycle ------------------------------------------------------------------

    def restrict_to(self, owned: "frozenset[NodeId]") -> None:
        """Originate packets only for flows sourced at ``owned`` nodes.

        The PDES process mode runs one full deterministic replica per
        worker; every worker must consume the shared ``traffic`` stream in
        the identical order so its owned flows draw identical endpoints and
        lifetimes.  Foreign flows therefore keep their entire schedule —
        creation, endpoint/lifetime draws, per-packet recursion and
        replacement flows — and only the ``originate_data`` call is
        suppressed.
        """
        self._owned = owned

    def start(self) -> None:
        """Create the initial set of simultaneous flows.

        Start times are staggered over the first few seconds so route
        discoveries do not all collide at t = 0 (the paper's flows also start
        as previous flows end, not all at once).
        """
        for _ in range(self._flow_count):
            start = self._rng.uniform(0.0, 5.0)
            self._simulator.schedule_at(start, self._start_new_flow)

    def _start_new_flow(self) -> None:
        now = self._simulator.now
        if now >= self._end_time:
            return
        source, destination = self._pick_endpoints()
        duration = self._rng.expovariate(1.0 / self._mean_flow_duration)
        flow = CbrFlow(
            flow_id=self._next_flow_id,
            source=source,
            destination=destination,
            start_time=now,
            end_time=min(now + duration, self._end_time),
            packets_per_second=self._packets_per_second,
            packet_size_bytes=self._packet_size_bytes,
        )
        self._next_flow_id += 1
        self.flows.append(flow)
        self._schedule_packet(flow, now)

    def _pick_endpoints(self) -> "tuple[NodeId, NodeId]":
        node_ids: Sequence[NodeId] = list(self._nodes)
        source = self._rng.choice(node_ids)
        destination = self._rng.choice(node_ids)
        while destination == source:
            destination = self._rng.choice(node_ids)
        return source, destination

    def _schedule_packet(self, flow: CbrFlow, when: float) -> None:
        if when >= self._end_time:
            # The simulation is over before the next packet; no replacement.
            return
        if when >= flow.end_time:
            # The flow is over; start a replacement at that time so the number
            # of simultaneous flows stays constant (scheduling it in the future
            # rather than instantly avoids a same-instant flow-creation loop
            # near the end of the trial).
            self._simulator.schedule_at(when, self._start_new_flow)
            return

        def send() -> None:
            if self._owned is None or flow.source in self._owned:
                self._nodes[flow.source].originate_data(
                    flow.destination, flow.packet_size_bytes, flow_id=flow.flow_id
                )
            self._schedule_packet(flow, self._simulator.now + flow.interval)

        self._simulator.schedule_at(when, send)
