"""Science gate: paper-derived invariants asserted over a completed store.

The paper's argument is a set of *qualitative orderings* — SRP matches or
beats the on-demand baselines, OLSR pays a far higher network load at every
pause time, and SRP's node sequence numbers stay identically zero — not a set
of absolute numbers.  Unit tests cannot see those orderings (they emerge only
from a whole sweep), so a protocol regression can flip a figure while every
test stays green.  This module turns each claim into a declarative invariant
evaluated against the :class:`~repro.experiments.runner.SweepResults` of a
completed (or partially completed) :class:`~repro.experiments.store.ResultsStore`:

* :class:`OrderingInvariant` — one protocol's metric is above another's,
  per pause time, judged on 95% confidence intervals
  (:func:`~repro.metrics.confidence.significantly_greater`) so noisy
  small-scale runs read as *inconclusive* rather than flapping;
* :class:`BoundInvariant` — every trial value of a metric stays inside a
  closed range (delivery ratios in [0, 1], loads and latencies nonnegative);
* :class:`ExactInvariant` — every trial value equals a constant (SRP's
  average sequence number is exactly 0, the paper's headline claim).

:func:`paper_invariants` registers the full set with their figure/claim
citations, :func:`evaluate_gate` runs a registry against results, and the CLI
(``python -m repro.experiments gate --out DIR``) exits nonzero with a
per-invariant report when any invariant is violated.  A cell that is missing
from the store makes the affected invariants *inconclusive*, never *pass*:
the gate only vouches for science it has actually seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..metrics.collectors import extract_metric
from ..metrics.confidence import significantly_greater
from ..metrics.report import interval_or_empty
from .runner import SweepResults

__all__ = [
    "PASS",
    "FAIL",
    "INCONCLUSIVE",
    "BoundInvariant",
    "ExactInvariant",
    "GateReport",
    "Invariant",
    "InvariantOutcome",
    "OrderingInvariant",
    "RecoveryInvariant",
    "evaluate_gate",
    "fault_invariants",
    "gate_registry",
    "paper_invariants",
]

#: Invariant statuses.  ``INCONCLUSIVE`` is deliberately distinct from both
#: others: a partial store or statistically indistinguishable comparison is
#: reported honestly instead of being waved through as a pass.
PASS = "pass"
FAIL = "fail"
INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True, slots=True)
class InvariantOutcome:
    """The result of evaluating one invariant against one sweep."""

    name: str
    status: str  #: one of PASS / FAIL / INCONCLUSIVE
    figure: str  #: the paper figure/table the claim comes from
    claim: str  #: the claim in prose, as cited in EXPERIMENTS.md
    details: Tuple[str, ...] = ()  #: per-pause observations / violations

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict for the structured gate report."""
        return {
            "name": self.name,
            "status": self.status,
            "figure": self.figure,
            "claim": self.claim,
            "details": list(self.details),
        }


def _combine(statuses: Sequence[str]) -> str:
    """Worst-of semantics: any FAIL fails, else any INCONCLUSIVE taints."""
    if FAIL in statuses:
        return FAIL
    if INCONCLUSIVE in statuses or not statuses:
        return INCONCLUSIVE
    return PASS


@dataclass(frozen=True, slots=True, kw_only=True)
class Invariant:
    """One paper claim, checkable against a sweep's results.

    Subclasses implement :meth:`evaluate`; ``figure`` and ``claim`` tie the
    check back to the paper so a violation report names the figure whose
    science regressed, not just a metric.
    """

    name: str
    figure: str
    claim: str

    def evaluate(self, results: SweepResults) -> InvariantOutcome:
        raise NotImplementedError

    def _outcome(
        self, statuses: Sequence[str], details: Sequence[str]
    ) -> InvariantOutcome:
        return InvariantOutcome(
            name=self.name,
            status=_combine(list(statuses)),
            figure=self.figure,
            claim=self.claim,
            details=tuple(details),
        )


@dataclass(frozen=True, slots=True, kw_only=True)
class OrderingInvariant(Invariant):
    """``greater``'s metric lies above ``lesser``'s, at each pause time.

    Judged on confidence intervals, per pause time:

    * ``lesser`` entirely above ``greater`` by more than the tolerance margin
      -> **fail** (the ordering the paper argues from has reversed);
    * ``greater`` entirely above ``lesser`` -> **pass**;
    * the intervals overlap -> statistically indistinguishable; **pass** for a
      "matches or beats" claim (``require_separation=False``), or
      **inconclusive** for a dominance claim that the paper states as a clear
      separation (``require_separation=True``) — never a hard fail, so noisy
      benchmark-scale runs do not flap.

    ``tolerance``/``rel_tolerance`` add slack on the *violation* side only: a
    "matches" claim is not falsified by a significant-but-tiny difference
    (single-trial sweeps have zero-width intervals, where every difference is
    technically significant).

    ``pooled`` compares the metric *averaged over all pause times* instead of
    per pause — Table I's claim form.  Heavy-tailed per-trial metrics (one
    route repair can dominate a single trial's mean latency) make per-pause
    orderings unstable at small scales; the pooled interval widens with the
    observed variance, so such claims degrade to inconclusive instead of
    flapping.
    """

    metric: str
    greater: str  #: protocol expected on top
    lesser: str  #: protocol expected underneath
    require_separation: bool = False
    tolerance: float = 0.0  #: absolute slack before a reversal counts
    rel_tolerance: float = 0.0  #: slack relative to the larger |mean|
    first_pause_only: bool = False  #: check only pause 0 (continuous mobility)
    pooled: bool = False  #: compare averages over all pauses (Table I form)
    confidence: float = 0.95

    def _comparisons(self, results: SweepResults):
        """``(label, greater values, lesser values, expected count)`` tuples."""
        if self.pooled:
            expected = results.trials * len(results.pause_times)
            yield (
                "all pauses",
                results.metric_over_all_pauses(self.greater, self.metric),
                results.metric_over_all_pauses(self.lesser, self.metric),
                expected,
            )
            return
        pauses = (
            list(results.pause_times)[:1]
            if self.first_pause_only
            else list(results.pause_times)
        )
        for pause in pauses:
            yield (
                f"pause {pause:g}",
                results.metric_values(self.greater, self.metric, pause),
                results.metric_values(self.lesser, self.metric, pause),
                results.trials,
            )

    def evaluate(self, results: SweepResults) -> InvariantOutcome:
        statuses: List[str] = []
        details: List[str] = []
        for label, greater_values, lesser_values, expected in self._comparisons(
            results
        ):
            if not greater_values or not lesser_values:
                statuses.append(INCONCLUSIVE)
                details.append(
                    f"{label}: no stored trials for "
                    f"{self.greater if not greater_values else self.lesser}"
                )
                continue
            partial = (
                len(greater_values) < expected or len(lesser_values) < expected
            )
            greater_ci = interval_or_empty(greater_values, self.confidence)
            lesser_ci = interval_or_empty(lesser_values, self.confidence)
            margin = self.tolerance + self.rel_tolerance * max(
                abs(greater_ci.mean), abs(lesser_ci.mean)
            )
            if significantly_greater(lesser_ci, greater_ci, margin=margin):
                statuses.append(FAIL)
                details.append(
                    f"{label}: {self.lesser} {self.metric} ({lesser_ci}) "
                    f"exceeds {self.greater} ({greater_ci}) "
                    f"beyond margin {margin:g} — ordering reversed"
                )
            elif significantly_greater(greater_ci, lesser_ci):
                statuses.append(INCONCLUSIVE if partial else PASS)
                details.append(
                    f"{label}: {self.greater} {greater_ci} > "
                    f"{self.lesser} {lesser_ci}"
                    + (" (partial cell)" if partial else "")
                )
            elif self.require_separation:
                statuses.append(INCONCLUSIVE)
                details.append(
                    f"{label}: intervals overlap "
                    f"({self.greater} {greater_ci} vs {self.lesser} {lesser_ci}); "
                    "claimed separation not established"
                )
            else:
                statuses.append(INCONCLUSIVE if partial else PASS)
                details.append(
                    f"{label}: statistically tied "
                    f"({self.greater} {greater_ci} vs {self.lesser} {lesser_ci})"
                    + (" (partial cell)" if partial else "")
                )
        return self._outcome(statuses, details)


@dataclass(frozen=True, slots=True, kw_only=True)
class BoundInvariant(Invariant):
    """Every stored trial value of ``metric`` lies within [lower, upper]."""

    metric: str
    protocols: Tuple[str, ...]
    lower: Optional[float] = None
    upper: Optional[float] = None

    def evaluate(self, results: SweepResults) -> InvariantOutcome:
        violations: List[str] = []
        seen = 0
        expected = 0
        for protocol in self.protocols:
            for pause in results.pause_times:
                expected += results.trials
                values = results.metric_values(protocol, self.metric, pause)
                seen += len(values)
                for value in values:
                    below = self.lower is not None and value < self.lower
                    above = self.upper is not None and value > self.upper
                    if below or above:
                        violations.append(
                            f"{protocol} pause {pause:g}: {self.metric}={value:g} "
                            f"outside [{self.lower}, {self.upper}]"
                        )
        if violations:
            return self._outcome([FAIL], violations)
        if seen < expected:
            return self._outcome(
                [INCONCLUSIVE], [f"only {seen}/{expected} trial values stored"]
            )
        return self._outcome([PASS], [f"{seen} trial values in bounds"])


@dataclass(frozen=True, slots=True, kw_only=True)
class ExactInvariant(Invariant):
    """Every stored trial value of ``metric`` equals ``expected`` exactly.

    The flagship instance is SRP's sequence number: the paper's central claim
    is that SRP *never* uses one, so the average over any trial must be
    identically zero — a single nonzero cell is a protocol bug, not noise.
    """

    metric: str
    protocol: str
    expected: float = 0.0
    tolerance: float = 0.0

    def evaluate(self, results: SweepResults) -> InvariantOutcome:
        violations: List[str] = []
        seen = 0
        expected_cells = len(results.pause_times) * results.trials
        for pause in results.pause_times:
            for trial in range(results.trials):
                summary = results.summaries.get((self.protocol, pause, trial))
                if summary is None:
                    continue
                seen += 1
                value = extract_metric(summary, self.metric)
                if abs(value - self.expected) > self.tolerance:
                    violations.append(
                        f"{self.protocol} pause {pause:g} trial {trial}: "
                        f"{self.metric}={value:g} != {self.expected:g}"
                    )
        if violations:
            return self._outcome([FAIL], violations)
        if seen < expected_cells:
            return self._outcome(
                [INCONCLUSIVE], [f"only {seen}/{expected_cells} cells stored"]
            )
        return self._outcome(
            [PASS], [f"{seen} cells all equal {self.expected:g}"]
        )


@dataclass(frozen=True, slots=True, kw_only=True)
class RecoveryInvariant(Invariant):
    """After the last fault heals, delivery recovers: the post-heal delivery
    ratio is no worse than the during-fault ratio minus ``tolerance``.

    Evaluated per (protocol, pause, trial) cell on the resilience counters a
    faulted scenario records (:mod:`repro.sim.faults`).  Cells with no
    fault-phase traffic — fault-free sweeps, or fault windows that happened
    to carry no offered load — count as inconclusive, never as a pass: the
    invariant only vouches for recoveries it has actually observed.
    """

    protocols: Tuple[str, ...]
    tolerance: float = 0.10

    def evaluate(self, results: SweepResults) -> InvariantOutcome:
        violations: List[str] = []
        observed = 0
        skipped = 0
        expected = len(self.protocols) * len(results.pause_times) * results.trials
        for protocol in self.protocols:
            for pause in results.pause_times:
                for trial in range(results.trials):
                    summary = results.summaries.get((protocol, pause, trial))
                    if summary is None:
                        continue
                    if (
                        summary.data_sent_during_fault == 0
                        or summary.data_sent_post_fault == 0
                    ):
                        skipped += 1
                        continue
                    observed += 1
                    during = summary.delivery_ratio_during_fault
                    post = summary.delivery_ratio_post_fault
                    if post + self.tolerance < during:
                        violations.append(
                            f"{protocol} pause {pause:g} trial {trial}: "
                            f"post-heal delivery {post:.3f} below during-fault "
                            f"{during:.3f} - {self.tolerance:g} — no recovery"
                        )
        if violations:
            return self._outcome([FAIL], violations)
        if observed == 0:
            return self._outcome(
                [INCONCLUSIVE],
                ["no cells with fault-phase traffic (fault-free sweep?)"],
            )
        details = [f"{observed} cells recovered within tolerance"]
        if skipped or observed + skipped < expected:
            details.append(
                f"{skipped} cells without fault-phase traffic, "
                f"{expected - observed - skipped} cells missing"
            )
            return self._outcome([INCONCLUSIVE], details)
        return self._outcome([PASS], details)


def paper_invariants() -> Tuple[Invariant, ...]:
    """The registered paper-derived invariants, in report order.

    Each entry cites the figure/table it protects; the same list is documented
    in EXPERIMENTS.md ("Science gate").  Claims hold at every scale from
    ``smoke`` upward — tolerances encode the paper's "matches" language so
    single-trial sweeps do not flap on hair's-breadth differences.
    """
    invariants: List[Invariant] = [
        ExactInvariant(
            name="srp-sequence-numbers-zero",
            figure="Fig. 7",
            claim="SRP never uses a sequence number: the average node "
            "sequence number is identically 0 in every trial",
            metric="sequence_number",
            protocol="SRP",
        ),
        OrderingInvariant(
            name="aodv-seqno-above-srp-at-pause-0",
            figure="Fig. 7",
            claim="AODV's sequence numbers grow under continuous mobility "
            "while SRP's stay at zero",
            metric="sequence_number",
            greater="AODV",
            lesser="SRP",
            require_separation=True,
            first_pause_only=True,
        ),
    ]
    for baseline in ("SRP", "LDR", "AODV", "DSR"):
        invariants.append(
            OrderingInvariant(
                name=f"olsr-load-above-{baseline.lower()}",
                figure="Fig. 5 / Table I",
                claim="OLSR's proactive flooding costs more control "
                f"overhead than {baseline} at every pause time",
                metric="network_load",
                greater="OLSR",
                lesser=baseline,
                require_separation=True,
            )
        )
    for baseline in ("LDR", "AODV", "DSR"):
        invariants.append(
            OrderingInvariant(
                name=f"srp-delivery-no-worse-than-{baseline.lower()}",
                figure="Fig. 4 / Table I",
                claim=f"SRP's delivery ratio matches or beats {baseline}'s "
                "at every pause time",
                metric="delivery_ratio",
                greater="SRP",
                lesser=baseline,
                tolerance=0.02,  # "matches": within 2 percentage points
            )
        )
    for baseline in ("LDR", "AODV"):
        invariants.append(
            OrderingInvariant(
                name=f"srp-latency-no-worse-than-{baseline.lower()}",
                figure="Fig. 6 / Table I",
                claim=f"SRP's data latency matches or beats {baseline}'s "
                "at every pause time",
                metric="latency",
                greater=baseline,  # lower latency is better: SRP must not
                lesser="SRP",  # significantly exceed the baseline
                rel_tolerance=0.5,  # "matches": within 50% of the larger mean
            )
        )
        invariants.append(
            OrderingInvariant(
                name=f"srp-drops-no-worse-than-{baseline.lower()}",
                figure="Fig. 3",
                claim=f"SRP suffers no more MAC-layer drops than {baseline} "
                "at any pause time",
                metric="mac_drops",
                greater=baseline,  # fewer drops is better
                lesser="SRP",
                tolerance=0.5,  # absolute slack in drops/node
                rel_tolerance=0.5,
            )
        )
    invariants.append(
        OrderingInvariant(
            name="olsr-latency-not-below-srp",
            figure="Table I / Fig. 6",
            claim="Averaged over all pause times, OLSR's end-to-end latency "
            "is no better than SRP's (Table I shows it higher)",
            metric="latency",
            greater="OLSR",
            lesser="SRP",
            # Pooled, Table-I form: per-trial latency is heavy-tailed (one
            # route repair can dominate a single trial's mean), so per-pause
            # orderings are unstable at small scales — the pooled interval
            # widens with that variance instead of flapping.
            pooled=True,
        )
    )
    invariants.extend(
        [
            BoundInvariant(
                name="delivery-ratio-in-unit-interval",
                figure="Fig. 4 / Table I",
                claim="Delivery ratios are fractions: every protocol's ratio "
                "lies in [0, 1] in every trial",
                metric="delivery_ratio",
                protocols=("SRP", "LDR", "AODV", "DSR", "OLSR"),
                lower=0.0,
                upper=1.0,
            ),
            BoundInvariant(
                name="network-load-nonnegative",
                figure="Fig. 5 / Table I",
                claim="Control overhead per delivered packet is nonnegative "
                "for every protocol",
                metric="network_load",
                protocols=("SRP", "LDR", "AODV", "DSR", "OLSR"),
                lower=0.0,
            ),
            BoundInvariant(
                name="latency-nonnegative",
                figure="Fig. 6 / Table I",
                claim="End-to-end latencies are nonnegative in every trial",
                metric="latency",
                protocols=("SRP", "LDR", "AODV", "DSR", "OLSR"),
                lower=0.0,
            ),
            BoundInvariant(
                name="sequence-numbers-nonnegative",
                figure="Fig. 7",
                claim="Average node sequence numbers never go negative",
                metric="sequence_number",
                protocols=("SRP", "LDR", "AODV"),
                lower=0.0,
            ),
        ]
    )
    return tuple(invariants)


def fault_invariants() -> Tuple[Invariant, ...]:
    """Invariants asserted over *faulted* sweeps (``--faults PRESET`` runs).

    The chaos layer's science: protocols must survive injected node churn,
    blackouts and partitions — delivery recovers once the faults heal, the
    resilience counters stay physical, and SRP's headline property (no
    sequence numbers, Fig. 7 / Definition 7) holds even across crash/recover
    cycles, where a lesser design would be forced to bump a stored counter.
    """
    all_protocols = ("SRP", "LDR", "AODV", "DSR", "OLSR")
    return (
        RecoveryInvariant(
            name="post-heal-delivery-recovers",
            figure="chaos / Fig. 4",
            claim="Once the last injected fault heals, every protocol's "
            "delivery ratio recovers to at least its during-fault level "
            "(within 10 percentage points)",
            protocols=all_protocols,
            tolerance=0.10,
        ),
        ExactInvariant(
            name="srp-seqno-zero-under-churn",
            figure="chaos / Fig. 7",
            claim="SRP's average node sequence number stays identically 0 "
            "even when nodes crash and recover mid-trial (Definition 7: "
            "recovery re-floors the ordering, never a counter bump)",
            metric="sequence_number",
            protocol="SRP",
        ),
        BoundInvariant(
            name="fault-delivery-ratios-in-unit-interval",
            figure="chaos",
            claim="During-fault delivery ratios are fractions in [0, 1]",
            metric="delivery_during_fault",
            protocols=all_protocols,
            lower=0.0,
            upper=1.0,
        ),
        BoundInvariant(
            name="post-fault-delivery-ratios-in-unit-interval",
            figure="chaos",
            claim="Post-heal delivery ratios are fractions in [0, 1]",
            metric="delivery_post_fault",
            protocols=all_protocols,
            lower=0.0,
            upper=1.0,
        ),
        BoundInvariant(
            name="route-recovery-time-physical",
            figure="chaos",
            claim="Route-recovery time is -1 (no post-heal delivery) or a "
            "nonnegative latency measured from the heal instant",
            metric="route_recovery_time",
            protocols=all_protocols,
            lower=-1.0,
        ),
        BoundInvariant(
            name="heal-control-burst-nonnegative",
            figure="chaos",
            claim="The control-packet burst counted in the post-heal window "
            "is a nonnegative count",
            metric="heal_control_burst",
            protocols=all_protocols,
            lower=0.0,
        ),
    )


#: Protocols a live soak may run; Oracle needs global topology the live
#: runtime deliberately cannot provide.
LIVE_PROTOCOLS = ("SRP", "LDR", "AODV", "DSR", "OLSR", "LSR")


def live_invariants(
    protocols: Optional[Sequence[str]] = None,
    *,
    delivery_floor: float = 0.5,
) -> Tuple[Invariant, ...]:
    """Invariants asserted over live-runtime soaks (``live`` runs).

    A live store holds one trial per protocol at pause 0 on a static,
    connected topology, so the claims are absolute floors rather than the
    paper's cross-protocol orderings: routing over a connected graph must
    actually deliver (the floor is the CLI's ``--delivery-floor``), and the
    measured physics must stay physical.  The flood-control violation
    counters are not summary metrics; the ``live`` command asserts them at
    zero itself, before the store is even written.
    """
    names = tuple(protocols) if protocols is not None else LIVE_PROTOCOLS
    return (
        BoundInvariant(
            name="live-delivery-floor",
            figure="live soak",
            claim="On a static connected topology every live router daemon "
            f"delivers at least {delivery_floor:g} of offered CBR traffic",
            metric="delivery_ratio",
            protocols=names,
            lower=delivery_floor,
            upper=1.0,
        ),
        BoundInvariant(
            name="live-latency-physical",
            figure="live soak",
            claim="Live end-to-end latency is a nonnegative wall-clock "
            "measurement (epoch-aligned across router processes)",
            metric="latency",
            protocols=names,
            lower=0.0,
        ),
        BoundInvariant(
            name="live-load-physical",
            figure="live soak",
            claim="Live normalised routing load is a nonnegative count ratio",
            metric="network_load",
            protocols=names,
            lower=0.0,
        ),
    )


#: Named invariant registries the CLI can assert (``gate --registry``).
GATE_REGISTRIES = {
    "paper": paper_invariants,
    "faults": fault_invariants,
    "live": live_invariants,
}


def gate_registry(name: str) -> Tuple[Invariant, ...]:
    """The registry called ``name`` (``paper``, ``faults`` or ``live``)."""
    try:
        return GATE_REGISTRIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown gate registry {name!r}; expected one of "
            f"{sorted(GATE_REGISTRIES)}"
        ) from None


@dataclass
class GateReport:
    """Every invariant's outcome over one store, plus store completeness."""

    outcomes: List[InvariantOutcome]
    completed_cells: int
    planned_cells: int
    scale: Optional[str] = None
    store: Optional[str] = None

    def by_status(self, status: str) -> List[InvariantOutcome]:
        return [outcome for outcome in self.outcomes if outcome.status == status]

    @property
    def failed(self) -> List[InvariantOutcome]:
        return self.by_status(FAIL)

    @property
    def inconclusive(self) -> List[InvariantOutcome]:
        return self.by_status(INCONCLUSIVE)

    @property
    def passed(self) -> List[InvariantOutcome]:
        return self.by_status(PASS)

    def exit_code(self, *, strict: bool = False) -> int:
        """``1`` on any violation (or, with ``strict``, any inconclusive)."""
        if self.failed:
            return 1
        if strict and self.inconclusive:
            return 1
        return 0

    def to_dict(self) -> Dict[str, Any]:
        """The structured report (what ``gate --json`` writes)."""
        return {
            "store": self.store,
            "scale": self.scale,
            "completed_cells": self.completed_cells,
            "planned_cells": self.planned_cells,
            "passed": len(self.passed),
            "failed": len(self.failed),
            "inconclusive": len(self.inconclusive),
            "invariants": [outcome.to_dict() for outcome in self.outcomes],
        }

    def to_text(self, *, verbose: bool = False) -> str:
        """The human report: one line per invariant, details on anomalies."""
        lines = []
        header = "Science gate"
        if self.store:
            header += f": {self.store}"
        if self.scale:
            header += f" (sweep '{self.scale}', "
        else:
            header += " ("
        header += f"{self.completed_cells}/{self.planned_cells} cells)"
        lines.append(header)
        for outcome in self.outcomes:
            lines.append(
                f"  {outcome.status.upper():<13} {outcome.name:<36} "
                f"[{outcome.figure}]"
            )
            if outcome.status != PASS or verbose:
                for detail in outcome.details:
                    lines.append(f"                  {detail}")
        lines.append(
            f"{len(self.outcomes)} invariants: {len(self.passed)} passed, "
            f"{len(self.failed)} failed, {len(self.inconclusive)} inconclusive"
        )
        if self.failed:
            lines.append(
                "VIOLATED: " + ", ".join(outcome.name for outcome in self.failed)
            )
        return "\n".join(lines)


def evaluate_gate(
    results: SweepResults,
    invariants: Optional[Sequence[Invariant]] = None,
    *,
    scale: Optional[str] = None,
    store: Optional[str] = None,
) -> GateReport:
    """Evaluate a registry of invariants (default: the paper's) over results."""
    registry = paper_invariants() if invariants is None else tuple(invariants)
    planned = len(results.pause_times) * results.trials * len(results.protocols)
    return GateReport(
        outcomes=[invariant.evaluate(results) for invariant in registry],
        completed_cells=len(results.summaries),
        planned_cells=planned,
        scale=scale,
        store=store,
    )
