"""Trial jobs: the unit of work the sweep engine plans, runs and caches.

The paper's evaluation is a triple loop — protocol x pause time x trial — in
which every cell is an independent, deterministic simulation: the outcome is a
pure function of (scenario, protocol), and the scenario is itself derived only
from the base scenario, the pause time and the trial seed.  :class:`TrialJob`
makes that cell explicit, and :func:`plan_sweep` emits the full job list for a
sweep up front, so executors can run cells in any order (serially, across a
process pool, or resumed from a partial on-disk store) and still assemble
bit-identical :class:`~repro.experiments.runner.SweepResults`.

Each job carries a *content key*: a stable hash of everything that determines
its result.  The key names the job's cache entry in
:class:`~repro.experiments.store.ResultsStore`, so a re-planned sweep finds
its completed cells again and a changed parameter (node count, seed, phy
constant, ...) changes the key and forces a re-run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..workloads.scenario import Scenario

__all__ = ["TrialJob", "plan_sweep", "sweep_shape"]


@dataclass(frozen=True, slots=True)
class TrialJob:
    """One (protocol, pause time, trial) cell of a sweep.

    ``scenario`` already has the pause time and the trial seed folded in, so
    running the job is simply ``run_trial(scenario, protocol_factory(protocol))``
    — no further derivation, hence no ordering dependence between jobs.
    """

    protocol: str
    scenario: Scenario
    pause_time: float
    trial: int
    seed: int
    # Memoised digest: every store lookup (resume skims, distributed steal
    # cycles, missing() polls) keys on it, and serialising the scenario plus
    # sha256 per call dominated those paths at 1k-cell scale.
    _key: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def content_key(self) -> str:
        """A stable hex digest of everything that determines this job's result."""
        if self._key is None:
            payload = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]
            object.__setattr__(self, "_key", digest)  # frozen-safe memo
        return self._key

    @property
    def cell(self) -> Tuple[str, float, int]:
        """The (protocol, pause time, trial) index of this job in a SweepResults."""
        return (self.protocol, self.pause_time, self.trial)

    def cell_dict(self) -> Dict[str, Any]:
        """The cell identity as JSON-safe metadata.

        Carried in distributed workers' lease files so ``status`` can say
        *what* a worker is running, not just which opaque content key.
        """
        return {
            "protocol": self.protocol,
            "pause_time": self.pause_time,
            "trial": self.trial,
        }

    @property
    def cell_label(self) -> str:
        """The cell as one short human-readable token (progress/status lines)."""
        return f"{self.protocol} pause={self.pause_time:g} trial={self.trial}"

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; also the canonical input of :attr:`content_key`."""
        return {
            "protocol": self.protocol,
            "scenario": self.scenario.to_dict(),
            "pause_time": self.pause_time,
            "trial": self.trial,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialJob":
        """Rebuild a job written by :meth:`to_dict`."""
        return cls(
            protocol=data["protocol"],
            scenario=Scenario.from_dict(data["scenario"]),
            pause_time=data["pause_time"],
            trial=data["trial"],
            seed=data["seed"],
        )


def plan_sweep(
    base_scenario: Scenario,
    protocols: Sequence[str],
    *,
    pause_times: Sequence[float],
    trials: int = 1,
) -> List[TrialJob]:
    """The full job list of one sweep, in the legacy serial-loop order.

    Trial ``k`` at pause time ``p`` uses seed ``base_scenario.seed + k`` with
    ``p`` folded into the scenario, so all protocols in that cell share
    mobility and traffic exactly, as in the paper.  The emitted order (pause,
    then trial, then protocol) matches what the monolithic ``run_sweep`` loop
    ran, so serial progress output reads the same — but nothing downstream
    depends on it.
    """
    jobs: List[TrialJob] = []
    for pause_time in pause_times:
        for trial in range(trials):
            scenario = base_scenario.with_pause_time(pause_time).with_seed(
                base_scenario.seed + trial
            )
            for protocol in protocols:
                jobs.append(
                    TrialJob(
                        protocol=protocol,
                        scenario=scenario,
                        pause_time=pause_time,
                        trial=trial,
                        seed=scenario.seed,
                    )
                )
    return jobs


def sweep_shape(jobs: Sequence[TrialJob]) -> Tuple[List[str], List[float], int]:
    """(protocols, pause times, trials) recovered from a job list.

    Orders follow first appearance in ``jobs``, which for :func:`plan_sweep`
    output reproduces the planner's input orders.
    """
    protocols: List[str] = []
    pause_times: List[float] = []
    trials = 0
    for job in jobs:
        if job.protocol not in protocols:
            protocols.append(job.protocol)
        if job.pause_time not in pause_times:
            pause_times.append(job.pause_time)
        trials = max(trials, job.trial + 1)
    return protocols, pause_times, trials
