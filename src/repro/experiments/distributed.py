"""Work-stealing distributed sweep backend: many workers, one shared store.

The job pipeline's contract — every cell a pure function of a picklable
:class:`~repro.experiments.jobs.TrialJob`, results keyed by content hash —
is exactly what a multi-host work queue needs, and the filesystem the store
already lives on is the only coordination channel required.
:class:`DistributedBackend` turns any number of ``worker`` processes sharing
one store directory (NFS mount, pod volume, plain local dir) into one sweep:

* a worker *claims* a cell by atomically publishing
  ``claims/<key>.lease`` (temp write + ``link(2)``, which fails on an
  existing target) — of any number of racing claimants exactly one wins;
* while running the cell it *heartbeats* the lease; a worker that dies
  mid-trial leaves a lease whose heartbeat lapses past ``lease_ttl``, and
  any other worker then reclaims the cell (rename-to-graveyard settles
  reclaim races; a verify-after-claim re-read settles the rest);
* completed cells are written through the store's atomic
  one-JSON-file-per-cell path, so a killed worker never leaves a torn cell
  behind — and because cells are content-addressed and jobs deterministic,
  N workers converge on a store **cell-for-cell identical** to a serial
  run's, with zero duplicated work beyond lease races.

Workers need not even share a directory: per-worker stores of the same sweep
merge losslessly afterwards via ``python -m repro.experiments merge``.  The
science gate and trajectory tooling then run over the union, so paper-scale
confidence intervals come from the fleet, not from one nightly machine.

Time is injectable (``clock``/``sleep``) so lease expiry and reclaim races
are testable with a deterministic fake clock.
"""

from __future__ import annotations

import os
import re
import socket
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.stats import TrialSummary
from .executor import (
    RUN_HOOK_ENV,
    CompletionReporter,
    FaultPolicy,
    SweepBackend,
    resolve_run_hook,
    run_job_guarded,
)
from .jobs import TrialJob
from .store import FailureRecord, ResultsStore

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DistributedBackend",
    "default_worker_id",
    "store_status",
]

#: Leases older than this (no heartbeat) are considered abandoned.  Generous
#: relative to heartbeat cadence (ttl/4) so one slow NFS write never gets a
#: live worker's cell stolen, small enough that a crashed worker's cells are
#: back in circulation within a minute.
DEFAULT_LEASE_TTL = 60.0


#: Worker ids become filesystem names (``workers/<id>.json``,
#: ``claims/<key>.reaped-by-<id>``), so they must stay path-safe.
_WORKER_ID_PATTERN = re.compile(r"[A-Za-z0-9._-]+\Z")


def validate_worker_id(worker_id: str) -> str:
    """``worker_id`` unchanged, or ``ValueError`` if it cannot name files."""
    if not _WORKER_ID_PATTERN.match(worker_id) or worker_id in (".", ".."):
        raise ValueError(
            f"worker id {worker_id!r} is not filesystem-safe; use letters, "
            "digits, dots, dashes and underscores only"
        )
    if worker_id.endswith(".lease") or ".reaped-by-" in worker_id:
        # Would make this worker's graveyard names collide with the store's
        # lease-file naming scheme.
        raise ValueError(
            f"worker id {worker_id!r} is not filesystem-safe; it collides "
            "with the store's lease naming"
        )
    return worker_id


def default_worker_id() -> str:
    """A worker identity unique across hosts sharing one store."""
    host = re.sub(r"[^A-Za-z0-9._-]", "-", socket.gethostname()) or "host"
    return f"{host}-{os.getpid()}"


def _guarded_pool_run(
    job: TrialJob,
    policy: FaultPolicy,
    run: Optional[Callable[[TrialJob], TrialSummary]],
    run_spec: Optional[str],
) -> Tuple[TrialJob, Optional[TrialSummary], Optional[FailureRecord]]:
    """Pool-worker wrapper for the hybrid loop: run guarded, tag the outcome
    (module-level so it pickles; mirrors the executor's ``_pool_run_job``)."""
    if run is None:
        run = resolve_run_hook(run_spec)
    summary, failure = run_job_guarded(job, policy=policy, run=run)
    return job, summary, failure


class DistributedBackend(SweepBackend):
    """Run jobs cooperatively with other workers against one shared store.

    Each scan cycle re-reads the store (other workers complete cells at any
    time), loads finished cells, and tries to claim one unclaimed missing
    cell to run.  When every remaining cell is leased to a live worker, the
    backend sleeps ``poll_interval`` and rescans; it returns only once it
    holds a summary for *every* job it was given, so ``execute_jobs`` keeps
    its contract regardless of which worker ran what.
    """

    def __init__(
        self,
        worker_id: Optional[str] = None,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float = 1.0,
        heartbeat_interval: Optional[float] = None,
        jobs: int = 1,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
        run: Optional[Callable[[TrialJob], TrialSummary]] = None,
        policy: Optional[FaultPolicy] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if poll_interval <= 0:
            # sleep(0) would turn the wait-for-others loop into a busy spin
            # hammering the shared directory.
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.worker_id = validate_worker_id(worker_id or default_worker_id())
        self.lease_ttl = lease_ttl
        self.poll_interval = poll_interval
        #: Hybrid worker pool: with jobs > 1 this worker fans the cells it
        #: claims over a local ProcessPoolExecutor, so one beefy host
        #: contributes N cores to the fleet without N lease-polling
        #: processes (the claim/heartbeat/release bookkeeping stays in this
        #: process; ``run`` must then be picklable).
        self.jobs = jobs
        self.heartbeat_interval = heartbeat_interval or max(lease_ttl / 4.0, 0.05)
        self.clock = clock
        self.sleep = sleep
        #: Trial function override; ``None`` defers to the ``REPRO_RUN_HOOK``
        #: resolution (captured below for the pooled path's workers).
        self.run = run
        self.policy = policy if policy is not None else FaultPolicy()
        self._run_spec = os.environ.get(RUN_HOOK_ENV)
        self._claim_count = 0
        #: wall-clock start of the current run_pending pass; quarantine
        #: records at least this fresh (minus a lease TTL of slack) are
        #: adopted as settled instead of retried.
        self._started = 0.0
        #: content keys of cells this worker ran itself (provenance record).
        self.ran_keys: List[str] = []

    # -- claiming ----------------------------------------------------------------------

    def _next_nonce(self) -> str:
        self._claim_count += 1
        return f"{self.worker_id}:{self._claim_count}"

    def _acquire(self, store: ResultsStore, job: TrialJob) -> bool:
        """Try to become the unique owner of ``job``'s cell.

        Atomic lease publish first; failing that, a stale lease (its worker missed
        ``lease_ttl`` of heartbeats) is reclaimed.  Either way ownership is
        only trusted after re-reading the lease and comparing the whole
        document — the re-read collapses every rename/restore race to at
        most one worker that proceeds to run.
        """
        key = job.content_key
        now = self.clock()
        nonce = self._next_nonce()
        cell = job.cell_dict()
        claim = store.try_claim(key, self.worker_id, now=now, nonce=nonce, cell=cell)
        if claim is None:
            existing = store.read_claim(key)
            if existing is None or not store.claim_is_stale(
                existing, ttl=self.lease_ttl, now=now
            ):
                return False
            claim = store.reclaim_stale(
                key,
                self.worker_id,
                ttl=self.lease_ttl,
                now=now,
                nonce=nonce,
                cell=cell,
            )
            if claim is None:
                return False
        return store.read_claim(key) == claim

    def _start_heartbeat(
        self, store: ResultsStore, key: str
    ) -> Tuple[threading.Event, threading.Thread]:
        """Keep ``key``'s lease live until the returned event is set."""
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_interval):
                if store.refresh_claim(key, self.worker_id, now=self.clock()) is None:
                    return  # lease stolen or gone; stop advertising ownership

        heartbeat = threading.Thread(
            target=beat, name=f"heartbeat-{self.worker_id}-{key}", daemon=True
        )
        heartbeat.start()
        return stop, heartbeat

    def _run_leased(
        self, store: ResultsStore, job: TrialJob
    ) -> Tuple[Optional[TrialSummary], Optional[FailureRecord]]:
        """Run the claimed job guarded, under a heartbeat so the lease stays
        live for however long the simulation (and any retries) takes."""
        stop, heartbeat = self._start_heartbeat(store, job.content_key)
        try:
            return run_job_guarded(
                job,
                policy=self.policy,
                run=self.run if self.run is not None else resolve_run_hook(),
                worker=self.worker_id,
                sleep=self.sleep,
                clock=self.clock,
            )
        finally:
            stop.set()
            heartbeat.join()

    def _adopt_failure(
        self, store: ResultsStore, job: TrialJob, report: CompletionReporter
    ) -> bool:
        """Adopt another worker's *fresh* quarantine of this cell as settled.

        A record written within this pass (with a lease TTL of clock slack)
        means a peer just exhausted the fault policy on the cell — re-running
        it here would likely fail the same way and would double-count the
        failure.  Older records are from a previous run: ``resume`` semantics
        say retry those, so they are ignored and the cell is claimed anew
        (a success then clears the record via ``store.put``).
        """
        record = store.get_failure(job.content_key)
        if record is None or record.recorded_at < self._started - self.lease_ttl:
            return False
        report(job, cached=False, worker=self.worker_id, failed=True)
        return True

    def _adopt_or_acquire(self, store, job):
        """One cell's claim step, shared by the serial and pooled loops.

        Returns ``("cached", summary)`` when the cell is already on disk
        (adopted, no lease held), ``("acquired", None)`` when this worker
        now holds the cell's lease and must run it (the
        completed-in-the-window case was re-checked *under* the lease —
        safe because every runner publishes its cell before releasing),
        or ``None`` when the cell is leased to someone else.
        """
        summary = store.get(job)
        if summary is not None:
            return ("cached", summary)
        if not self._acquire(store, job):
            return None
        summary = store.get(job)
        if summary is not None:
            store.release_claim(job.content_key, self.worker_id)
            return ("cached", summary)
        return ("acquired", None)

    def reap_abandoned(self, store: ResultsStore) -> int:
        """Housekeeping: remove every lease whose owner's heartbeat lapsed.

        Covers leases the steal loop itself never revisits — above all a
        worker that died *between* writing its cell and releasing the lease,
        whose completed cell other workers adopt straight from the store
        cache skim — plus graveyard litter from reapers that died mid-reap.
        Returns the number of leases reaped.
        """
        now = self.clock()
        reaped = 0
        for key, claim in store.claims().items():
            if store.claim_is_stale(claim, ttl=self.lease_ttl, now=now):
                if store.reap_stale_lease(
                    key, self.worker_id, ttl=self.lease_ttl, now=now
                ):
                    reaped += 1
        store.reap_graveyard(ttl=self.lease_ttl, now=now)
        return reaped

    # -- the steal loop ----------------------------------------------------------------

    def run_pending(
        self,
        jobs: Sequence[TrialJob],
        *,
        store: Optional[ResultsStore],
        report: CompletionReporter,
    ) -> Dict[TrialJob, TrialSummary]:
        if store is None:
            raise ValueError(
                "DistributedBackend coordinates through the store; "
                "execute_jobs(..., store=...) is required"
            )
        self._started = self.clock()
        if self.jobs > 1:
            return self._run_pending_pooled(jobs, store=store, report=report)
        outcomes: Dict[TrialJob, TrialSummary] = {}
        remaining: Dict[str, TrialJob] = {job.content_key: job for job in jobs}
        # Each worker scans from a different starting point so concurrent
        # workers mostly claim different cells instead of racing every lease.
        order = list(remaining)
        if order:
            offset = hash(self.worker_id) % len(order)
            order = order[offset:] + order[:offset]

        while remaining:
            progressed = False
            ran_before = len(self.ran_keys)
            store.invalidate_key_cache()
            # Tidy abandoned leases first — including ones for cells that
            # are already complete (their dead owner never released), which
            # the claim loop below would otherwise never look at again.
            self.reap_abandoned(store)
            for key in order:
                job = remaining.get(key)
                if job is None:
                    continue
                if self._adopt_failure(store, job, report):
                    del remaining[key]
                    progressed = True
                    continue
                takeover = self._adopt_or_acquire(store, job)
                if takeover is None:
                    continue
                state, summary = takeover
                if state == "acquired":
                    try:
                        summary, failure = self._run_leased(store, job)
                        # Publish before releasing: other workers re-check
                        # under a freshly-acquired lease and trust that a
                        # released cell is settled on disk.  A quarantined
                        # cell is settled too — its failure record lands
                        # before the lease goes, so the release never
                        # re-opens the cell to the fleet unrecorded.
                        if summary is not None:
                            store.put(job, summary)
                        elif failure is not None:
                            store.put_failure(failure)
                    finally:
                        store.release_claim(key, self.worker_id)
                    if summary is None:
                        del remaining[key]
                        report(job, cached=False, worker=self.worker_id, failed=True)
                        progressed = True
                        continue
                    self.ran_keys.append(key)
                outcomes[job] = summary
                del remaining[key]
                report(job, cached=state == "cached", worker=self.worker_id)
                progressed = True
            if len(self.ran_keys) > ran_before:
                # Provenance for `status`, refreshed once per steal cycle —
                # per cell it would rewrite a growing list (O(n^2) bytes)
                # onto the shared filesystem for a purely cosmetic record.
                store.record_worker_cells(
                    self.worker_id, self.ran_keys, now=self.clock()
                )
            if remaining and not progressed:
                # Everything left is leased to someone alive; wait for cells
                # to land (or for a lease to go stale) and rescan.
                self.sleep(self.poll_interval)
        return outcomes

    def _run_pending_pooled(
        self,
        jobs: Sequence[TrialJob],
        *,
        store: ResultsStore,
        report: CompletionReporter,
    ) -> Dict[TrialJob, TrialSummary]:
        """The steal loop with claimed cells fanned over a local process pool.

        Same protocol as the serial loop — claim via lease, heartbeat while
        running, write-through, release — except that up to ``self.jobs``
        claimed cells run concurrently in worker processes while this
        process keeps all the lease bookkeeping (one heartbeat thread per
        in-flight cell).  Equivalence is inherited: cells remain pure
        functions of their jobs, so the store converges byte-identical to a
        serial worker's.
        """
        outcomes: Dict[TrialJob, TrialSummary] = {}
        remaining: Dict[str, TrialJob] = {job.content_key: job for job in jobs}
        order = list(remaining)
        if order:
            offset = hash(self.worker_id) % len(order)
            order = order[offset:] + order[:offset]
        #: future -> (key, job, heartbeat stop event, heartbeat thread)
        in_flight: Dict[
            Any, Tuple[str, TrialJob, threading.Event, threading.Thread]
        ] = {}

        def settle(future: Any) -> None:
            key, job, stop, heartbeat = in_flight.pop(future)
            stop.set()
            heartbeat.join()
            try:
                _, summary, failure = future.result()
                # Publish before releasing, exactly like the serial loop:
                # other workers re-check under a freshly-acquired lease and
                # trust that a released cell is settled on disk — completed
                # or quarantined, never silently re-opened.
                if summary is not None:
                    store.put(job, summary)
                elif failure is not None:
                    store.put_failure(failure)
            finally:
                store.release_claim(key, self.worker_id)
            remaining.pop(key, None)
            if summary is None:
                report(job, cached=False, worker=self.worker_id, failed=True)
                return
            self.ran_keys.append(key)
            outcomes[job] = summary
            report(job, cached=False, worker=self.worker_id)

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            try:
                while remaining or in_flight:
                    progressed = False
                    ran_before = len(self.ran_keys)
                    store.invalidate_key_cache()
                    self.reap_abandoned(store)
                    busy_keys = {entry[0] for entry in in_flight.values()}
                    for key in order:
                        job = remaining.get(key)
                        if job is None or key in busy_keys:
                            continue
                        if self._adopt_failure(store, job, report):
                            del remaining[key]
                            progressed = True
                            continue
                        if len(in_flight) >= self.jobs:
                            # Pool full: only adopt cells already on disk.
                            summary = store.get(job)
                            if summary is None:
                                continue
                            takeover = ("cached", summary)
                        else:
                            takeover = self._adopt_or_acquire(store, job)
                            if takeover is None:
                                continue
                        state, summary = takeover
                        if state == "acquired":
                            stop, heartbeat = self._start_heartbeat(store, key)
                            future = pool.submit(
                                _guarded_pool_run,
                                job,
                                self.policy,
                                self.run,
                                self._run_spec,
                            )
                            in_flight[future] = (key, job, stop, heartbeat)
                            busy_keys.add(key)
                            progressed = True
                            continue
                        outcomes[job] = summary
                        del remaining[key]
                        report(job, cached=True, worker=self.worker_id)
                        progressed = True
                    if in_flight:
                        done, _ = wait(
                            set(in_flight),
                            timeout=self.poll_interval,
                            return_when=FIRST_COMPLETED,
                        )
                        for future in done:
                            settle(future)
                            progressed = True
                    if len(self.ran_keys) > ran_before:
                        store.record_worker_cells(
                            self.worker_id, self.ran_keys, now=self.clock()
                        )
                    if remaining and not in_flight and not progressed:
                        # Everything left is leased to other live workers.
                        self.sleep(self.poll_interval)
            finally:
                # A failed cell must not leave its sibling leases dangling
                # until the TTL: stop heartbeats and release everything this
                # worker still holds.
                for future, (key, _job, stop, heartbeat) in list(in_flight.items()):
                    stop.set()
                    heartbeat.join()
                    future.cancel()
                    store.release_claim(key, self.worker_id)
                    del in_flight[future]
        return outcomes


def store_status(
    store: ResultsStore,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """A structured snapshot of a (possibly shared) store: cells complete and
    torn, live/stale claims, and per-worker completion counts.

    Backs ``python -m repro.experiments status``; reads every planned cell,
    so torn files are detected, not just counted as present.
    """
    now = time.time() if now is None else now
    meta = store.require_meta()
    jobs = store.planned_jobs()
    store.invalidate_key_cache()
    planned = {job.content_key: job for job in jobs}
    completed = sum(1 for job in jobs if store.get(job) is not None)

    failures = []
    for key, record in store.failure_records().items():
        job = planned.get(key)
        failures.append(
            {
                "key": key,
                "error": record.error,
                "message": record.message,
                "attempts": record.attempts,
                "worker": record.worker,
                "label": job.cell_label if job is not None else None,
            }
        )

    claims = []
    for key, claim in sorted(store.claims().items()):
        heartbeat = claim.get("heartbeat", claim.get("claimed_at"))
        job = planned.get(key)
        claims.append(
            {
                "key": key,
                "worker": claim.get("worker"),
                "cell": claim.get("cell"),
                "label": job.cell_label if job is not None else None,
                "age": None if heartbeat is None else max(0.0, now - heartbeat),
                "stale": store.claim_is_stale(claim, ttl=lease_ttl, now=now),
                # A lease for a cell already on disk (or planned by no job):
                # its worker died between put and release; reapable noise.
                "orphaned": job is None or job in store,
            }
        )

    workers = []
    for worker_id, record in sorted(store.worker_records().items()):
        keys = [k for k in record.get("completed", ()) if k in planned]
        workers.append(
            {
                "worker": worker_id,
                "completed": len(keys),
                "updated": record.get("updated"),
            }
        )

    return {
        "root": store.root.as_posix(),
        "scale": meta["scale"],
        "planned_cells": len(jobs),
        "completed_cells": completed,
        "torn_cells": store.torn_keys(),
        "failed_cells": failures,
        "claims": claims,
        "workers": workers,
    }
