"""Experiment harness regenerating the paper's Table I and Figures 3–7.

Organised as a job pipeline since PR 2: :mod:`~repro.experiments.jobs` plans a
sweep as independent :class:`TrialJob` cells, :mod:`~repro.experiments.executor`
runs them serially or over a process pool, :mod:`~repro.experiments.store`
persists completed cells so interrupted sweeps resume, and
``python -m repro.experiments`` drives it all from the command line.

Since PR 3 the results are also *asserted*: :mod:`~repro.experiments.gate`
holds the science gate — the paper's qualitative claims as declarative
invariants over a completed store — and :mod:`~repro.experiments.trajectory`
merges stores from successive runs and tracks per-figure metrics across them.

Since PR 5 the *performance* of a trial is first-class too:
:mod:`~repro.experiments.profile` runs one instrumented trial and breaks its
cost down by architectural layer, so optimization work starts from data (and
``BENCH_5.json`` at the repo root records the wall-clock trajectory).
"""

from .distributed import (
    DEFAULT_LEASE_TTL,
    DistributedBackend,
    default_worker_id,
    store_status,
)
from .executor import (
    ExecutionProgress,
    ProcessPoolBackend,
    SerialBackend,
    SweepBackend,
    execute_jobs,
    run_job,
)
from .gate import (
    BoundInvariant,
    ExactInvariant,
    GateReport,
    Invariant,
    InvariantOutcome,
    OrderingInvariant,
    evaluate_gate,
    paper_invariants,
)
from .jobs import TrialJob, plan_sweep, sweep_shape
from .profile import LayerCost, TrialProfile, profile_trial
from .paper import (
    EXPERIMENTS,
    PAPER_PROTOCOLS,
    SCALE_NAMES,
    SEQUENCE_NUMBER_PROTOCOLS,
    EvaluationScale,
    ExperimentDefinition,
    figure,
    figure_text,
    resolve_scale,
    run_evaluation,
    table1,
    table1_text,
)
from .runner import SweepResults, collect_sweep, run_sweep
from .store import ResultsStore, TornCellWarning
from .trajectory import (
    MergeReport,
    TrajectoryPoint,
    merge_stores,
    metric_trajectories,
    sparkline,
    union_results,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "EXPERIMENTS",
    "PAPER_PROTOCOLS",
    "SCALE_NAMES",
    "SEQUENCE_NUMBER_PROTOCOLS",
    "BoundInvariant",
    "DistributedBackend",
    "EvaluationScale",
    "ExactInvariant",
    "ExecutionProgress",
    "ExperimentDefinition",
    "GateReport",
    "Invariant",
    "InvariantOutcome",
    "LayerCost",
    "MergeReport",
    "OrderingInvariant",
    "ProcessPoolBackend",
    "ResultsStore",
    "SerialBackend",
    "SweepBackend",
    "SweepResults",
    "TornCellWarning",
    "TrajectoryPoint",
    "TrialJob",
    "TrialProfile",
    "collect_sweep",
    "default_worker_id",
    "evaluate_gate",
    "execute_jobs",
    "figure",
    "figure_text",
    "merge_stores",
    "metric_trajectories",
    "paper_invariants",
    "plan_sweep",
    "profile_trial",
    "resolve_scale",
    "run_evaluation",
    "run_job",
    "run_sweep",
    "sparkline",
    "store_status",
    "sweep_shape",
    "table1",
    "table1_text",
    "union_results",
]
