"""Experiment harness regenerating the paper's Table I and Figures 3–7.

Organised as a job pipeline since PR 2: :mod:`~repro.experiments.jobs` plans a
sweep as independent :class:`TrialJob` cells, :mod:`~repro.experiments.executor`
runs them serially or over a process pool, :mod:`~repro.experiments.store`
persists completed cells so interrupted sweeps resume, and
``python -m repro.experiments`` drives it all from the command line.

Since PR 3 the results are also *asserted*: :mod:`~repro.experiments.gate`
holds the science gate — the paper's qualitative claims as declarative
invariants over a completed store — and :mod:`~repro.experiments.trajectory`
merges stores from successive runs and tracks per-figure metrics across them.
"""

from .executor import ExecutionProgress, execute_jobs, run_job
from .gate import (
    BoundInvariant,
    ExactInvariant,
    GateReport,
    Invariant,
    InvariantOutcome,
    OrderingInvariant,
    evaluate_gate,
    paper_invariants,
)
from .jobs import TrialJob, plan_sweep, sweep_shape
from .paper import (
    EXPERIMENTS,
    PAPER_PROTOCOLS,
    SCALE_NAMES,
    SEQUENCE_NUMBER_PROTOCOLS,
    EvaluationScale,
    ExperimentDefinition,
    figure,
    figure_text,
    resolve_scale,
    run_evaluation,
    table1,
    table1_text,
)
from .runner import SweepResults, collect_sweep, run_sweep
from .store import ResultsStore
from .trajectory import (
    MergeReport,
    TrajectoryPoint,
    merge_stores,
    metric_trajectories,
    sparkline,
)

__all__ = [
    "EXPERIMENTS",
    "PAPER_PROTOCOLS",
    "SCALE_NAMES",
    "SEQUENCE_NUMBER_PROTOCOLS",
    "BoundInvariant",
    "EvaluationScale",
    "ExactInvariant",
    "ExecutionProgress",
    "ExperimentDefinition",
    "GateReport",
    "Invariant",
    "InvariantOutcome",
    "MergeReport",
    "OrderingInvariant",
    "ResultsStore",
    "SweepResults",
    "TrajectoryPoint",
    "TrialJob",
    "collect_sweep",
    "evaluate_gate",
    "execute_jobs",
    "figure",
    "figure_text",
    "merge_stores",
    "metric_trajectories",
    "paper_invariants",
    "plan_sweep",
    "resolve_scale",
    "run_evaluation",
    "run_job",
    "run_sweep",
    "sparkline",
    "sweep_shape",
    "table1",
    "table1_text",
]
