"""Experiment harness regenerating the paper's Table I and Figures 3–7.

Organised as a job pipeline since PR 2: :mod:`~repro.experiments.jobs` plans a
sweep as independent :class:`TrialJob` cells, :mod:`~repro.experiments.executor`
runs them serially or over a process pool, :mod:`~repro.experiments.store`
persists completed cells so interrupted sweeps resume, and
``python -m repro.experiments`` drives it all from the command line.
"""

from .executor import ExecutionProgress, execute_jobs, run_job
from .jobs import TrialJob, plan_sweep, sweep_shape
from .paper import (
    EXPERIMENTS,
    PAPER_PROTOCOLS,
    SCALE_NAMES,
    SEQUENCE_NUMBER_PROTOCOLS,
    EvaluationScale,
    ExperimentDefinition,
    figure,
    figure_text,
    resolve_scale,
    run_evaluation,
    table1,
    table1_text,
)
from .runner import SweepResults, collect_sweep, run_sweep
from .store import ResultsStore

__all__ = [
    "EXPERIMENTS",
    "PAPER_PROTOCOLS",
    "SCALE_NAMES",
    "SEQUENCE_NUMBER_PROTOCOLS",
    "EvaluationScale",
    "ExecutionProgress",
    "ExperimentDefinition",
    "ResultsStore",
    "SweepResults",
    "TrialJob",
    "collect_sweep",
    "execute_jobs",
    "figure",
    "figure_text",
    "plan_sweep",
    "resolve_scale",
    "run_evaluation",
    "run_job",
    "run_sweep",
    "sweep_shape",
    "table1",
    "table1_text",
]
