"""Experiment harness regenerating the paper's Table I and Figures 3–7."""

from .paper import (
    EXPERIMENTS,
    PAPER_PROTOCOLS,
    SEQUENCE_NUMBER_PROTOCOLS,
    EvaluationScale,
    ExperimentDefinition,
    figure,
    figure_text,
    run_evaluation,
    table1,
    table1_text,
)
from .runner import SweepResults, run_sweep

__all__ = [
    "EXPERIMENTS",
    "PAPER_PROTOCOLS",
    "SEQUENCE_NUMBER_PROTOCOLS",
    "EvaluationScale",
    "ExperimentDefinition",
    "figure",
    "figure_text",
    "run_evaluation",
    "table1",
    "table1_text",
    "SweepResults",
    "run_sweep",
]
