"""The paper's evaluation: Table I and Figures 3–7 as runnable experiments.

Each experiment knows which metric it plots, which protocols appear in it and
how to render its output; all of them share one protocol x pause-time x trial
sweep, so regenerating the whole evaluation costs a single call to
:func:`run_evaluation` (the per-figure benchmark targets each run a reduced
sweep of their own).

Scale: the paper uses 100 nodes, 30 flows, 900 s, 8 pause times and 10 trials
on GloMoSim.  ``EvaluationScale`` lets callers choose between the full
``paper`` scale (hours of CPU serially — hence the parallel, resumable sweep
engine), the reduced ``paper-tier`` scale (the paper's full 5 x 8 shape at
nightly-CI cost) and the ``benchmark`` / ``smoke`` scales used by the
pytest-benchmark harness and the test-suite, which keep the same structure at
laptop cost.  ``EXPERIMENTS.md`` (repo root) records the benchmark-scale
numbers per figure/table and the ``python -m repro.experiments`` commands that
regenerate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..metrics.confidence import ConfidenceInterval
from ..metrics.report import (
    MetricSeries,
    format_series,
    format_table,
    interval_or_empty,
    series_from_results,
)
from ..workloads.scenario import (
    PAPER_PAUSE_TIMES,
    PAPER_SCENARIO,
    Scenario,
    scaled_scenario,
)
from .executor import ExecutionProgress, execute_jobs
from .jobs import plan_sweep
from .runner import SweepResults, collect_sweep
from .store import ResultsStore

__all__ = [
    "EvaluationScale",
    "PAPER_PROTOCOLS",
    "SEQUENCE_NUMBER_PROTOCOLS",
    "EXPERIMENTS",
    "ExperimentDefinition",
    "SCALE_NAMES",
    "resolve_scale",
    "run_evaluation",
    "table1",
    "figure",
]

#: The five protocols of Table I and Figures 3–6.
PAPER_PROTOCOLS: Sequence[str] = ("SRP", "LDR", "AODV", "DSR", "OLSR")
#: Fig. 7 compares sequence-number growth for the three protocols that use one.
SEQUENCE_NUMBER_PROTOCOLS: Sequence[str] = ("SRP", "LDR", "AODV")


@dataclass(frozen=True, slots=True)
class EvaluationScale:
    """How large a sweep to run."""

    name: str
    scenario: Scenario
    pause_times: Sequence[float]
    trials: int

    @property
    def job_count(self) -> int:
        """Simulations in one sweep of this scale (five-protocol default)."""
        return len(self.pause_times) * self.trials * len(PAPER_PROTOCOLS)

    @classmethod
    def paper(cls) -> "EvaluationScale":
        """The full parameters from Section V (hours of CPU time)."""
        return cls("paper", PAPER_SCENARIO, PAPER_PAUSE_TIMES, trials=10)

    @classmethod
    def paper_tier(cls) -> "EvaluationScale":
        """The paper's full 5-protocol x 8-pause-time shape at nightly-CI cost.

        Half the paper's node count on a half-area terrain (same density),
        one fifth the duration with pause times scaled to match, two trials:
        every mechanism of the full evaluation is active, in about an hour of
        single-core CPU (minutes across a worker pool).
        """
        return cls(
            "paper-tier",
            scaled_scenario(
                node_count=50,
                flow_count=15,
                duration=180.0,
                terrain_width=1100.0,
                terrain_height=600.0,
            ),
            # The paper's eight pause times scaled by duration (180/900).
            pause_times=tuple(p * 180.0 / 900.0 for p in PAPER_PAUSE_TIMES),
            trials=2,
        )

    @classmethod
    def benchmark(cls) -> "EvaluationScale":
        """The laptop-sized sweep used by the benchmark harness."""
        return cls(
            "benchmark",
            scaled_scenario(node_count=30, flow_count=8, duration=60.0),
            pause_times=(0.0, 30.0, 60.0),
            trials=2,
        )

    @classmethod
    def smoke(cls) -> "EvaluationScale":
        """The smallest sweep that still exercises every code path (tests)."""
        return cls(
            "smoke",
            scaled_scenario(
                node_count=16,
                flow_count=3,
                duration=25.0,
                terrain_width=900.0,
                terrain_height=300.0,
            ),
            pause_times=(0.0, 25.0),
            trials=1,
        )


@dataclass(frozen=True, slots=True)
class ExperimentDefinition:
    """One table or figure of the evaluation section."""

    experiment_id: str
    title: str
    metric: str
    protocols: Sequence[str]
    description: str


#: The per-experiment index (mirrored in EXPERIMENTS.md at the repo root).
EXPERIMENTS: Dict[str, ExperimentDefinition] = {
    "table1": ExperimentDefinition(
        "table1",
        "Table I: performance averaged over all pause times",
        "delivery_ratio",  # Table I shows three metrics; see `table1` below.
        PAPER_PROTOCOLS,
        "Delivery ratio, network load and latency averaged over every pause "
        "time, with 95% confidence intervals.",
    ),
    "fig3": ExperimentDefinition(
        "fig3",
        "Fig. 3: average MAC layer drops vs. pause time",
        "mac_drops",
        PAPER_PROTOCOLS,
        "Per-node MAC-layer drops (queue overflow plus retry exhaustion).",
    ),
    "fig4": ExperimentDefinition(
        "fig4",
        "Fig. 4: delivery ratio vs. pause time",
        "delivery_ratio",
        PAPER_PROTOCOLS,
        "CBR packets received divided by CBR packets sent.",
    ),
    "fig5": ExperimentDefinition(
        "fig5",
        "Fig. 5: network load vs. pause time",
        "network_load",
        PAPER_PROTOCOLS,
        "Control packets transmitted per delivered CBR packet (semi-log in "
        "the paper).",
    ),
    "fig6": ExperimentDefinition(
        "fig6",
        "Fig. 6: data latency vs. pause time",
        "latency",
        PAPER_PROTOCOLS,
        "Mean end-to-end lifetime of delivered CBR packets.",
    ),
    "fig7": ExperimentDefinition(
        "fig7",
        "Fig. 7: average node sequence number vs. pause time",
        "sequence_number",
        SEQUENCE_NUMBER_PROTOCOLS,
        "Average growth of node sequence numbers; SRP stays at exactly zero.",
    ),
}

#: Table I's columns map onto these metrics.
TABLE1_METRICS: Sequence[str] = ("delivery_ratio", "network_load", "latency")


#: CLI scale names -> factories (the job pipeline's user-facing vocabulary).
SCALE_NAMES: Dict[str, Callable[[], EvaluationScale]] = {
    "smoke": EvaluationScale.smoke,
    "benchmark": EvaluationScale.benchmark,
    "paper-tier": EvaluationScale.paper_tier,
    "paper": EvaluationScale.paper,
}


def resolve_scale(
    name: str,
    *,
    trials: Optional[int] = None,
) -> EvaluationScale:
    """An :class:`EvaluationScale` by CLI name, optionally overriding trials."""
    try:
        scale = SCALE_NAMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; expected one of {sorted(SCALE_NAMES)}"
        ) from None
    if trials is not None:
        scale = EvaluationScale(scale.name, scale.scenario, scale.pause_times, trials)
    return scale


def run_evaluation(
    scale: Optional[EvaluationScale] = None,
    *,
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
    progress: Optional[Callable[[ExecutionProgress], None]] = None,
) -> SweepResults:
    """Run the shared sweep every table/figure is derived from.

    Thin wrapper over the job pipeline: ``workers`` selects the serial
    (``<= 1``) or process-pool backend, ``store`` makes the run persistent and
    resumable, and ``progress`` receives structured
    :class:`~repro.experiments.executor.ExecutionProgress` events.  Results at
    a fixed scale are bit-identical whatever the backend.
    """
    scale = scale or EvaluationScale.benchmark()
    jobs = plan_sweep(
        scale.scenario,
        protocols,
        pause_times=scale.pause_times,
        trials=scale.trials,
    )
    outcomes = execute_jobs(jobs, workers=workers, store=store, progress=progress)
    return collect_sweep(
        outcomes,
        pause_times=scale.pause_times,
        trials=scale.trials,
        protocols=protocols,
    )


def table1(results: SweepResults) -> Dict[str, Dict[str, ConfidenceInterval]]:
    """Table I: per-protocol averages over all pause times for three metrics."""
    table: Dict[str, Dict[str, ConfidenceInterval]] = {}
    for protocol in results.protocols:
        table[protocol] = {
            metric: interval_or_empty(
                results.metric_over_all_pauses(protocol, metric)
            )
            for metric in TABLE1_METRICS
        }
    return table


def table1_text(results: SweepResults) -> str:
    """Table I rendered as fixed-width text."""
    return format_table(
        table1(results),
        title=EXPERIMENTS["table1"].title,
        metric_order=TABLE1_METRICS,
    )


def figure(experiment_id: str, results: SweepResults) -> MetricSeries:
    """The series behind one of Figures 3–7."""
    definition = EXPERIMENTS[experiment_id]
    if not experiment_id.startswith("fig"):
        raise ValueError(f"{experiment_id!r} is not a figure; use table1()")
    data = {
        protocol: results.metric_by_pause(protocol, definition.metric)
        for protocol in definition.protocols
        if protocol in results.protocols
    }
    return series_from_results(
        definition.title, "pause time (s)", results.pause_times, data
    )


def figure_text(experiment_id: str, results: SweepResults) -> str:
    """One figure's series rendered as fixed-width text."""
    return format_series(figure(experiment_id, results))
