"""Command-line sweep engine: ``python -m repro.experiments``.

The first-class way to run — and police — the paper's evaluation.  The
subcommands drive the plan -> execute -> collect -> assert pipeline against a
persistent on-disk store:

``run``
    Plan the sweep for a scale, run every cell not already in the store
    (serially or across ``--jobs`` worker processes), and write the assembled
    ``results.json``.  Safe to re-run: completed cells are never recomputed.
``resume``
    Continue an interrupted sweep from its store directory alone — the sweep's
    parameters are read back from ``sweep.json``, so no scale flags needed.
``report``
    Render Table I and Figures 3-7 from the cells on disk, without running
    any simulation.
``gate``
    Evaluate the registered paper-derived invariants (the *science gate*)
    against the store and exit nonzero, naming the violated invariants, when
    the reproduction no longer supports the paper's claims.
``merge``
    Union several stores of the same sweep into one compacted store (e.g. a
    timed-out nightly artifact plus the night that finished it).
``trajectory``
    Read several stores in order (one per run/commit) and print per-figure
    metric trajectories as ASCII sparklines, optionally dumping JSON.

Examples::

    python -m repro.experiments run --scale smoke --jobs 2 --out sweep-smoke
    python -m repro.experiments run --scale paper --jobs 8 --out sweep-paper
    python -m repro.experiments resume --out sweep-paper --jobs 8
    python -m repro.experiments report --out sweep-paper --experiment fig4
    python -m repro.experiments gate --out sweep-paper --json gate.json
    python -m repro.experiments merge --out merged night-1 night-2
    python -m repro.experiments trajectory night-* --experiment fig5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .executor import ExecutionProgress, execute_jobs
from .gate import evaluate_gate, paper_invariants
from .jobs import TrialJob, plan_sweep
from .paper import (
    EXPERIMENTS,
    PAPER_PROTOCOLS,
    SCALE_NAMES,
    figure_text,
    resolve_scale,
    table1_text,
)
from .runner import collect_sweep
from .store import ResultsStore
from .trajectory import (
    merge_stores,
    metric_trajectories,
    trajectories_to_dict,
    trajectories_to_text,
)

__all__ = ["main"]


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "eta --"
    if seconds >= 3600:
        return f"eta {seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"eta {seconds / 60:.1f}m"
    return f"eta {seconds:.0f}s"


def _print_progress(event: ExecutionProgress) -> None:
    job = event.job
    state = "cached" if event.cached else f"{event.elapsed:7.1f}s"
    print(
        f"  [{event.completed:>4}/{event.total}] {job.protocol:<5} "
        f"pause={job.pause_time:<6g} trial={job.trial:<3} "
        f"({state}, {_format_eta(event.eta)})",
        flush=True,
    )


def _execute_and_collect(
    store: ResultsStore,
    jobs: List[TrialJob],
    *,
    pause_times: Sequence[float],
    trials: int,
    protocols: Sequence[str],
    workers: int,
    quiet: bool,
) -> int:
    cached = len(jobs) - len(store.missing(jobs))
    print(
        f"Executing {len(jobs)} trial jobs "
        f"({cached} already in store, {len(jobs) - cached} to run, "
        f"{workers} worker{'s' if workers != 1 else ''})..."
    )
    started = time.monotonic()
    outcomes = execute_jobs(
        jobs,
        workers=workers,
        store=store,
        progress=None if quiet else _print_progress,
    )
    elapsed = time.monotonic() - started
    results = collect_sweep(
        outcomes, pause_times=pause_times, trials=trials, protocols=protocols
    )
    store.write_results(results)
    print(
        f"Sweep complete in {elapsed:.1f} s: {len(outcomes)} cells in "
        f"{store.root} (results.json written)."
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.scale, trials=args.trials)
    protocols: Sequence[str] = tuple(args.protocols or PAPER_PROTOCOLS)
    store = ResultsStore(args.out)
    try:
        store.ensure_meta(
            scale=scale.name,
            scenario=scale.scenario,
            protocols=protocols,
            pause_times=scale.pause_times,
            trials=scale.trials,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        # Distinct from argparse's exit 2: the CI nightly keys its
        # wipe-and-retry fallback on "store holds a different sweep"
        # specifically, which must not trigger on a usage error.
        return 3
    jobs = plan_sweep(
        scale.scenario,
        protocols,
        pause_times=scale.pause_times,
        trials=scale.trials,
    )
    print(
        f"Sweep '{scale.name}': {scale.scenario.node_count} nodes, "
        f"{len(protocols)} protocols x {len(scale.pause_times)} pause times "
        f"x {scale.trials} trials = {len(jobs)} simulations -> {store.root}"
    )
    return _execute_and_collect(
        store,
        jobs,
        pause_times=scale.pause_times,
        trials=scale.trials,
        protocols=protocols,
        workers=args.jobs,
        quiet=args.quiet,
    )


def _cmd_resume(args: argparse.Namespace) -> int:
    store = ResultsStore(args.out)
    try:
        meta = store.require_meta()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    jobs = store.planned_jobs()
    print(
        f"Resuming sweep '{meta['scale']}' from {store.root}: "
        f"{len(jobs) - len(store.missing(jobs))}/{len(jobs)} cells already done."
    )
    return _execute_and_collect(
        store,
        jobs,
        pause_times=meta["pause_times"],
        trials=meta["trials"],
        protocols=meta["protocols"],
        workers=args.jobs,
        quiet=args.quiet,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultsStore(args.out)
    try:
        results = store.load_results()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    total = len(store.planned_jobs())
    done = len(results.summaries)
    if done < total:
        print(
            f"note: store holds {done}/{total} cells; "
            "reporting the completed subset (run `resume` to finish)",
            file=sys.stderr,
        )
    wanted = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in wanted:
        print("=" * 72)
        if experiment_id == "table1":
            print(table1_text(results))
        else:
            print(figure_text(experiment_id, results))
        print()
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    if args.list:
        for invariant in paper_invariants():
            print(f"{invariant.name:<36} [{invariant.figure}] {invariant.claim}")
        return 0
    if args.out is None:
        print("error: gate needs --out DIR (or --list)", file=sys.stderr)
        return 2
    store = ResultsStore(args.out)
    try:
        meta = store.require_meta()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.scale is not None and meta["scale"] != args.scale:
        print(
            f"error: {store.root} holds a {meta['scale']!r} sweep, "
            f"not {args.scale!r}; gate would assert over the wrong science",
            file=sys.stderr,
        )
        return 2
    results = store.load_results()
    report = evaluate_gate(
        results, scale=meta["scale"], store=store.root.as_posix()
    )
    print(report.to_text(verbose=args.verbose))
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=1), encoding="utf-8"
        )
        print(f"(structured report written to {args.json})")
    return report.exit_code(strict=args.strict)


def _cmd_merge(args: argparse.Namespace) -> int:
    destination = ResultsStore(args.out)
    sources = [ResultsStore(path) for path in args.stores]
    try:
        report = merge_stores(destination, sources)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for source, copied in report.copied.items():
        print(f"  {source}: {copied} cells copied")
    state = "complete" if report.complete else "still incomplete"
    print(
        f"Merged {len(sources)} store{'s' if len(sources) != 1 else ''} into "
        f"{report.destination}: {report.completed_cells}/{report.planned_cells} "
        f"cells ({state})."
    )
    return 0


def _cmd_trajectory(args: argparse.Namespace) -> int:
    stores = [ResultsStore(path) for path in args.stores]
    wanted = None if args.experiment == "all" else [args.experiment]
    try:
        trajectories = metric_trajectories(stores, wanted)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(trajectories_to_text(trajectories))
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(trajectories_to_dict(trajectories), indent=1),
            encoding="utf-8",
        )
        print(f"(structured trajectories written to {args.json})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_arg(p: argparse.ArgumentParser, required: bool = False) -> None:
        p.add_argument(
            "--out",
            required=required,
            default=None,
            help="results-store directory (default: sweep-<scale>)",
        )

    def add_exec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes (1 = serial in-process; default: 1)",
        )
        p.add_argument(
            "--quiet", action="store_true", help="suppress per-cell progress lines"
        )

    run = sub.add_parser("run", help="plan and run a sweep (reusing stored cells)")
    run.add_argument(
        "--scale",
        choices=tuple(SCALE_NAMES),
        default="smoke",
        help="how large a sweep to run (default: smoke)",
    )
    run.add_argument(
        "--trials", type=int, default=None, help="override trials per pause time"
    )
    run.add_argument(
        "--protocols",
        nargs="+",
        metavar="PROTO",
        default=None,
        help=f"protocol subset (default: {' '.join(PAPER_PROTOCOLS)})",
    )
    add_store_arg(run)
    add_exec_args(run)
    run.set_defaults(func=_cmd_run)

    resume = sub.add_parser(
        "resume", help="continue an interrupted sweep from its store directory"
    )
    add_store_arg(resume, required=True)
    add_exec_args(resume)
    resume.set_defaults(func=_cmd_resume)

    report = sub.add_parser(
        "report", help="render Table I / Figures 3-7 from the store, no simulation"
    )
    add_store_arg(report, required=True)
    report.add_argument(
        "--experiment",
        choices=("all",) + tuple(EXPERIMENTS),
        default="all",
        help="regenerate one table/figure only (default: all)",
    )
    report.set_defaults(func=_cmd_report)

    gate = sub.add_parser(
        "gate",
        help="assert the paper-derived invariants over a store "
        "(nonzero exit on violation)",
    )
    add_store_arg(gate)
    gate.add_argument(
        "--scale",
        choices=tuple(SCALE_NAMES),
        default=None,
        help="require the store to hold a sweep of this scale",
    )
    gate.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the structured per-invariant report to PATH",
    )
    gate.add_argument(
        "--strict",
        action="store_true",
        help="also fail on inconclusive invariants (partial stores, "
        "overlapping intervals)",
    )
    gate.add_argument(
        "--verbose",
        action="store_true",
        help="print per-pause details for passing invariants too",
    )
    gate.add_argument(
        "--list",
        action="store_true",
        help="list the registered invariants with their paper citations "
        "and exit (no store needed)",
    )
    gate.set_defaults(func=_cmd_gate)

    merge = sub.add_parser(
        "merge",
        help="union stores of the same sweep into one compacted store",
    )
    merge.add_argument(
        "--out", required=True, help="destination store (created if missing)"
    )
    merge.add_argument(
        "stores", nargs="+", metavar="STORE", help="source store directories"
    )
    merge.set_defaults(func=_cmd_merge)

    trajectory = sub.add_parser(
        "trajectory",
        help="per-figure metric trajectories across several stores "
        "(oldest first)",
    )
    trajectory.add_argument(
        "stores", nargs="+", metavar="STORE", help="store directories, oldest first"
    )
    trajectory.add_argument(
        "--experiment",
        choices=("all",) + tuple(EXPERIMENTS),
        default="all",
        help="restrict to one table/figure (default: all)",
    )
    trajectory.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the structured trajectories to PATH",
    )
    trajectory.set_defaults(func=_cmd_trajectory)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "out", None) is None and args.command == "run":
        args.out = f"sweep-{args.scale}"
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into e.g. `head`; completed cells are already on disk.
        sys.exit(0)
    except KeyboardInterrupt:
        print("\ninterrupted; completed cells are on disk — continue with "
              "`python -m repro.experiments resume --out DIR`", file=sys.stderr)
        sys.exit(130)
