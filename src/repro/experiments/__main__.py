"""Command-line sweep engine: ``python -m repro.experiments``.

The first-class way to run — and police — the paper's evaluation.  The
subcommands drive the plan -> execute -> collect -> assert pipeline against a
persistent on-disk store:

``run``
    Plan the sweep for a scale, run every cell not already in the store
    (serially or across ``--jobs`` worker processes), and write the assembled
    ``results.json``.  Safe to re-run: completed cells are never recomputed.
    ``--faults PRESET`` injects a deterministic fault schedule (node churn,
    partitions, blackouts — see ``repro.sim.faults``) into every cell;
    ``--trial-timeout`` / ``--retries`` / ``--retry-backoff`` bound each
    trial with a watchdog and quarantine cells that keep failing instead of
    aborting the sweep.
``resume``
    Continue an interrupted sweep from its store directory alone — the sweep's
    parameters are read back from ``sweep.json``, so no scale flags needed.
``worker``
    Join a *distributed* sweep: work-steal cells from a shared store via
    lease files, run them, and write results into the same store.  Start any
    number of workers on any number of hosts against one directory; they
    converge on a store cell-for-cell identical to a serial run's.  A worker
    that dies mid-cell leaves a lease that goes stale after ``--lease-ttl``
    and is reclaimed by the survivors.
``status``
    Show a (possibly shared) store's progress: cells complete/torn, live and
    stale leases, and per-worker completion counts.
``report``
    Render Table I and Figures 3-7 from the cells on disk, without running
    any simulation.
``profile``
    Run one instrumented trial and print (optionally dump as JSON) its
    per-layer CPU/allocation breakdown — the data every perf change should
    start from.  ``--fast-paths off`` profiles the reference slow path for
    before/after tables.
``gate``
    Evaluate the registered paper-derived invariants (the *science gate*)
    against the store and exit nonzero, naming the violated invariants, when
    the reproduction no longer supports the paper's claims.
``live``
    Run the routing protocols as *live* router daemons — real asyncio
    timers instead of the simulator's virtual clock — soak them with CBR
    traffic on a static topology, and assert the live gate (delivery floor,
    physical metrics, zero flood-control violations).  ``--transport
    loopback`` runs every router on one event loop (deterministic, CI-safe);
    ``--transport udp`` launches one OS process per router exchanging real
    UDP datagrams.  Metrics land in the same results-store format as ``run``
    sweeps, so ``report``/``gate`` tooling reads them unchanged.
``merge``
    Union several stores of the same sweep into one compacted store (e.g. a
    timed-out nightly artifact plus the night that finished it).
``trajectory``
    Read several stores in order (one per run/commit) and print per-figure
    metric trajectories as ASCII sparklines, optionally dumping JSON.

Examples::

    python -m repro.experiments profile --scale smoke --protocol OLSR --json p.json
    python -m repro.experiments live --protocols LSR AODV --time-scale 0.05
    python -m repro.experiments live --transport udp --routers 5 --out live-udp
    python -m repro.experiments run --scale smoke --jobs 2 --out sweep-smoke
    python -m repro.experiments run --scale paper --jobs 8 --out sweep-paper
    python -m repro.experiments resume --out sweep-paper --jobs 8
    python -m repro.experiments worker --store /mnt/sweep --scale paper --worker-id h1
    python -m repro.experiments status --out /mnt/sweep
    python -m repro.experiments report --out sweep-paper --experiment fig4
    python -m repro.experiments gate --out sweep-paper --json gate.json
    python -m repro.experiments gate --out worker-a --union worker-b worker-c
    python -m repro.experiments merge --out merged night-1 night-2
    python -m repro.experiments trajectory night-* --experiment fig5

(Installed as the ``repro-experiments`` console script, so multi-host workers
need neither ``python -m`` nor ``PYTHONPATH``.)

Exit codes (``run`` / ``resume`` / ``worker``):

* ``0`` — sweep complete, every cell on disk;
* ``2`` — usage error (argparse, or a store/flag combination that cannot
  mean what was asked);
* ``3`` — the store directory holds a *different* sweep than requested
  (the CI nightly keys its wipe-and-retry fallback on this code; it must
  never fire on a usage error);
* ``4`` — the sweep **completed with quarantined cells**: every runnable
  cell is on disk, but some cells exhausted their fault policy (crash,
  hang, repeated error) and hold failure records instead of results.
  ``status`` lists them; a later ``resume`` retries exactly those cells;
* ``130`` — interrupted (completed cells are already on disk).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from ..sim.faults import FAULT_PRESETS, fault_preset
from .distributed import (
    DEFAULT_LEASE_TTL,
    DistributedBackend,
    default_worker_id,
    store_status,
)
from ..runtime.live import (
    TOPOLOGIES as LIVE_TOPOLOGIES,
    TRANSPORTS as LIVE_TRANSPORTS,
    LiveRunConfig,
    run_soak,
)
from ..workloads.scenario import Scenario
from .executor import ExecutionProgress, FaultPolicy, execute_jobs
from .gate import (
    GATE_REGISTRIES,
    LIVE_PROTOCOLS,
    evaluate_gate,
    gate_registry,
    live_invariants,
)
from .jobs import TrialJob, plan_sweep
from .paper import (
    EXPERIMENTS,
    PAPER_PROTOCOLS,
    SCALE_NAMES,
    figure_text,
    resolve_scale,
    table1_text,
)
from .runner import collect_sweep
from .store import ResultsStore
from .trajectory import (
    merge_stores,
    metric_trajectories,
    trajectories_to_dict,
    trajectories_to_text,
    union_results,
)

__all__ = ["cli", "main"]


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "eta --"
    if seconds >= 3600:
        return f"eta {seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"eta {seconds / 60:.1f}m"
    return f"eta {seconds:.0f}s"


def _print_progress(event: ExecutionProgress) -> None:
    job = event.job
    if event.failed:
        state = "FAILED — quarantined"
    elif event.cached:
        state = "cached"
    else:
        state = f"{event.elapsed:7.1f}s"
    who = f" {event.worker}" if event.worker else ""
    print(
        f"  [{event.completed:>4}/{event.total}]{who} {job.protocol:<5} "
        f"pause={job.pause_time:<6g} trial={job.trial:<3} "
        f"({state}, {_format_eta(event.eta)})",
        flush=True,
    )


def _policy_from_args(args: argparse.Namespace) -> FaultPolicy:
    try:
        return FaultPolicy(
            timeout=args.trial_timeout,
            retries=args.retries,
            backoff=args.retry_backoff,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _apply_faults(scale, preset: Optional[str]):
    """The scale with ``--faults PRESET`` folded into its scenario.

    The fault schedule becomes part of every job's scenario — and thus of
    every content key — so a faulted sweep is a *different* sweep: it never
    collides with (or silently adopts cells from) a clean store.
    """
    if preset is None:
        return scale
    scenario = scale.scenario.with_faults(fault_preset(preset, scale.scenario))
    return dataclasses.replace(scale, scenario=scenario)


def _apply_propagation_delay(scale, delay: Optional[float]):
    """The scale with ``--propagation-delay`` folded into its scenario.

    Like ``--faults``, a finite propagation delay changes the phy dict and
    with it every job's content key, so a delay-variant sweep is a
    *different* sweep that never collides with an instantaneous-channel
    store.
    """
    if delay is None:
        return scale
    scenario = scale.scenario.with_propagation_delay(delay)
    return dataclasses.replace(scale, scenario=scenario)


def _report_quarantined(store: ResultsStore, jobs: Sequence[TrialJob]) -> int:
    """Warn about planned cells left quarantined; the CLI exit code (0 or 4)."""
    missing = {job.content_key: job for job in store.missing(jobs)}
    quarantined = {
        key: record
        for key, record in store.failure_records().items()
        if key in missing
    }
    if not quarantined:
        return 0
    print(
        f"WARNING: sweep completed with {len(quarantined)} quarantined "
        "cell(s) (failure records in failures/):",
        file=sys.stderr,
    )
    for key, record in sorted(quarantined.items()):
        job = missing.get(key)
        label = job.cell_label if job is not None else key
        print(
            f"  {label}: {record.error} after {record.attempts} attempt(s) "
            f"— {record.message}",
            file=sys.stderr,
        )
    print(
        "re-run `resume` against this store to retry quarantined cells",
        file=sys.stderr,
    )
    return 4


def _ensure_meta_or_exit(store: ResultsStore, scale, protocols) -> Optional[int]:
    """Stamp (or validate) the store's sweep identity; an exit code on refusal.

    Shared by ``run`` and ``worker`` so the exit-code contract stays single-
    sourced: 3 — distinct from argparse's usage-error 2 — means "store holds
    a different sweep", which the CI nightly keys its wipe-and-retry
    fallback on and which must not trigger on a usage error.
    """
    try:
        store.ensure_meta(
            scale=scale.name,
            scenario=scale.scenario,
            protocols=protocols,
            pause_times=scale.pause_times,
            trials=scale.trials,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    return None


def _persist_results(
    store: ResultsStore,
    outcomes,
    *,
    pause_times: Sequence[float],
    trials: int,
    protocols: Sequence[str],
) -> None:
    """Assemble and write ``results.json`` (atomic; concurrent workers that
    both observe completion write the same bytes, so the last rename wins
    harmlessly)."""
    results = collect_sweep(
        outcomes, pause_times=pause_times, trials=trials, protocols=protocols
    )
    store.write_results(results)


def _execute_and_collect(
    store: ResultsStore,
    jobs: List[TrialJob],
    *,
    pause_times: Sequence[float],
    trials: int,
    protocols: Sequence[str],
    workers: int,
    quiet: bool,
    policy: Optional[FaultPolicy] = None,
) -> int:
    cached = len(jobs) - len(store.missing(jobs))
    print(
        f"Executing {len(jobs)} trial jobs "
        f"({cached} already in store, {len(jobs) - cached} to run, "
        f"{workers} worker{'s' if workers != 1 else ''})..."
    )
    started = time.monotonic()
    outcomes = execute_jobs(
        jobs,
        workers=workers,
        store=store,
        progress=None if quiet else _print_progress,
        policy=policy,
    )
    elapsed = time.monotonic() - started
    _persist_results(
        store, outcomes, pause_times=pause_times, trials=trials, protocols=protocols
    )
    print(
        f"Sweep complete in {elapsed:.1f} s: {len(outcomes)} cells in "
        f"{store.root} (results.json written)."
    )
    return _report_quarantined(store, jobs)


def _apply_backend_env(args: argparse.Namespace) -> None:
    """Propagate ``--engine-backend`` / ``--shards`` via the environment.

    ``build_network`` resolves its default tuning through
    :meth:`EngineTuning.from_env`, so setting the variables here reaches
    in-process trials and spawned pool workers alike — the same seam the CI
    ``pdes-smoke`` job flips without any flag at all.
    """
    import os

    from ..sim.tuning import ENGINE_BACKEND_ENV, SHARD_COUNT_ENV

    if getattr(args, "engine_backend", None):
        os.environ[ENGINE_BACKEND_ENV] = args.engine_backend
    if getattr(args, "shards", None) is not None:
        os.environ[SHARD_COUNT_ENV] = str(args.shards)


def _cmd_run(args: argparse.Namespace) -> int:
    _apply_backend_env(args)
    scale = _apply_faults(resolve_scale(args.scale, trials=args.trials), args.faults)
    scale = _apply_propagation_delay(
        scale, getattr(args, "propagation_delay", None)
    )
    protocols: Sequence[str] = tuple(args.protocols or PAPER_PROTOCOLS)
    store = ResultsStore(args.out)
    code = _ensure_meta_or_exit(store, scale, protocols)
    if code is not None:
        return code
    jobs = plan_sweep(
        scale.scenario,
        protocols,
        pause_times=scale.pause_times,
        trials=scale.trials,
    )
    faulted = f", faults '{args.faults}'" if args.faults else ""
    print(
        f"Sweep '{scale.name}': {scale.scenario.node_count} nodes, "
        f"{len(protocols)} protocols x {len(scale.pause_times)} pause times "
        f"x {scale.trials} trials = {len(jobs)} simulations{faulted} "
        f"-> {store.root}"
    )
    return _execute_and_collect(
        store,
        jobs,
        pause_times=scale.pause_times,
        trials=scale.trials,
        protocols=protocols,
        workers=args.jobs,
        quiet=args.quiet,
        policy=_policy_from_args(args),
    )


def _cmd_resume(args: argparse.Namespace) -> int:
    store = ResultsStore(args.out)
    try:
        meta = store.require_meta()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    jobs = store.planned_jobs()
    print(
        f"Resuming sweep '{meta['scale']}' from {store.root}: "
        f"{len(jobs) - len(store.missing(jobs))}/{len(jobs)} cells already done."
    )
    return _execute_and_collect(
        store,
        jobs,
        pause_times=meta["pause_times"],
        trials=meta["trials"],
        protocols=meta["protocols"],
        workers=args.jobs,
        quiet=args.quiet,
        policy=_policy_from_args(args),
    )


def _cmd_worker(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store)
    meta = store.read_meta()
    if args.scale is None and (
        args.protocols or args.trials is not None or args.faults is not None
    ):
        # Without --scale the sweep comes verbatim from the store's
        # metadata; silently ignoring these would look like sharding and
        # quietly run the full job list instead.
        print(
            "error: --protocols/--trials/--faults only apply when "
            "initialising a store with --scale; a joined worker runs the "
            "sweep recorded in the store",
            file=sys.stderr,
        )
        return 2
    if meta is None and args.scale is None:
        print(
            f"error: {store.root} holds no sweep yet; pass --scale to "
            "initialise it (racing workers may — identical parameters "
            "write identical metadata)",
            file=sys.stderr,
        )
        return 2
    # Validate the backend options before any store write: a usage error
    # (exit 2) must not leave behind a freshly-stamped store directory.
    try:
        backend = DistributedBackend(
            args.worker_id or default_worker_id(),
            lease_ttl=args.lease_ttl,
            poll_interval=args.poll_interval,
            jobs=args.jobs,
            policy=_policy_from_args(args),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    worker_id = backend.worker_id
    if args.scale is not None:
        scale = _apply_faults(
            resolve_scale(args.scale, trials=args.trials), args.faults
        )
        protocols: Sequence[str] = tuple(args.protocols or PAPER_PROTOCOLS)
        code = _ensure_meta_or_exit(store, scale, protocols)
        if code is not None:
            return code
        meta = store.require_meta()
    jobs = store.planned_jobs()
    print(
        f"Worker {worker_id} joining sweep '{meta['scale']}' at {store.root}: "
        f"{len(jobs) - len(store.missing(jobs))}/{len(jobs)} cells already done "
        f"(lease ttl {args.lease_ttl:g}s)."
    )
    started = time.monotonic()
    outcomes = execute_jobs(
        jobs,
        store=store,
        backend=backend,
        progress=None if args.quiet else _print_progress,
    )
    elapsed = time.monotonic() - started
    # Joining an already-complete store skips run_pending (and with it the
    # per-cycle lease housekeeping) entirely; reap abandoned leases here so
    # a finished sweep never shows stale claims in `status` forever.
    backend.reap_abandoned(store)
    _persist_results(
        store,
        outcomes,
        pause_times=meta["pause_times"],
        trials=meta["trials"],
        protocols=meta["protocols"],
    )
    stolen = len(jobs) - len(backend.ran_keys)
    print(
        f"Worker {worker_id} done in {elapsed:.1f} s: ran "
        f"{len(backend.ran_keys)} of {len(jobs)} cells itself "
        f"({stolen} cached or completed by other workers); sweep complete in "
        f"{store.root} (results.json written)."
    )
    return _report_quarantined(store, jobs)


def _cmd_status(args: argparse.Namespace) -> int:
    store = ResultsStore(args.out)
    try:
        status = store_status(store, lease_ttl=args.lease_ttl)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    done, planned = status["completed_cells"], status["planned_cells"]
    state = "complete" if done == planned else "incomplete"
    print(
        f"Sweep '{status['scale']}' at {status['root']}: "
        f"{done}/{planned} cells ({state})."
    )
    if status["torn_cells"]:
        print(f"  torn cells (treated as missing): {len(status['torn_cells'])}")
        for key in status["torn_cells"]:
            print(f"    {key}")
    if status["failed_cells"]:
        print(f"  quarantined cells: {len(status['failed_cells'])}")
        for failure in status["failed_cells"]:
            who = f" on {failure['worker']}" if failure["worker"] else ""
            print(
                f"    {failure['label'] or failure['key']}: {failure['error']} "
                f"after {failure['attempts']} attempt(s){who} — "
                f"{failure['message']}"
            )
    for record in status["workers"]:
        print(f"  worker {record['worker']}: {record['completed']} cells completed")
    live = [c for c in status["claims"] if not c["stale"] and not c["orphaned"]]
    stale = [c for c in status["claims"] if c["stale"] or c["orphaned"]]
    for claim in live:
        age = "age ?" if claim["age"] is None else f"age {claim['age']:.0f}s"
        print(
            f"  claimed: {claim['label'] or claim['key']} "
            f"by {claim['worker']} ({age})"
        )
    for claim in stale:
        kind = "orphaned" if claim["orphaned"] else "stale"
        print(
            f"  {kind} lease: {claim['label'] or claim['key']} "
            f"held by {claim['worker']} (reclaimable)"
        )
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(status, indent=1, sort_keys=True), encoding="utf-8"
        )
        print(f"(structured status written to {args.json})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultsStore(args.out)
    try:
        results = store.load_results()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    total = len(store.planned_jobs())
    done = len(results.summaries)
    if done < total:
        print(
            f"note: store holds {done}/{total} cells; "
            "reporting the completed subset (run `resume` to finish)",
            file=sys.stderr,
        )
    quarantined = store.failure_keys()
    if quarantined:
        print(
            f"note: {len(quarantined)} cell(s) are quarantined with failure "
            "records (see `status`; `resume` retries them)",
            file=sys.stderr,
        )
    wanted = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in wanted:
        print("=" * 72)
        if experiment_id == "table1":
            print(table1_text(results))
        else:
            print(figure_text(experiment_id, results))
        print()
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    invariants = gate_registry(args.registry)
    if args.list:
        for invariant in invariants:
            print(f"{invariant.name:<36} [{invariant.figure}] {invariant.claim}")
        return 0
    if args.out is None:
        print("error: gate needs --out DIR (or --list)", file=sys.stderr)
        return 2
    store = ResultsStore(args.out)
    try:
        meta = store.require_meta()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.scale is not None and meta["scale"] != args.scale:
        print(
            f"error: {store.root} holds a {meta['scale']!r} sweep, "
            f"not {args.scale!r}; gate would assert over the wrong science",
            file=sys.stderr,
        )
        return 2
    if args.registry == "live":
        # A live store holds exactly the protocols that were soaked; assert
        # over those instead of every soak-capable protocol, so a two-
        # protocol store is judged complete rather than inconclusive.
        invariants = live_invariants(meta["protocols"])
    stores = [store] + [ResultsStore(path) for path in (args.union or ())]
    try:
        results = union_results(stores)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = evaluate_gate(
        results,
        invariants,
        scale=meta["scale"],
        store="+".join(s.root.as_posix() for s in stores),
    )
    print(report.to_text(verbose=args.verbose))
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=1), encoding="utf-8"
        )
        print(f"(structured report written to {args.json})")
    return report.exit_code(strict=args.strict)


def _cmd_live(args: argparse.Namespace) -> int:
    protocols: Sequence[str] = tuple(args.protocols or ("LSR", "AODV"))
    unknown = [name for name in protocols if name not in LIVE_PROTOCOLS]
    if unknown:
        print(
            f"error: cannot soak {', '.join(unknown)}; live-capable protocols "
            f"are {', '.join(LIVE_PROTOCOLS)} (Oracle needs the simulator's "
            "global topology)",
            file=sys.stderr,
        )
        return 2
    scale_name = f"live-{args.transport}"
    print(
        f"Live soak '{scale_name}': {args.routers} routers ({args.topology} "
        f"topology), {len(protocols)} protocol daemons x {args.duration:g} "
        f"protocol seconds at time scale {args.time_scale:g} "
        f"({args.flows} CBR flows @ {args.rate:g} pkt/s)"
    )
    reports = {}
    for name in protocols:
        try:
            config = LiveRunConfig(
                protocol=name,
                transport=args.transport,
                routers=args.routers,
                topology=args.topology,
                duration=args.duration,
                warmup=args.warmup,
                time_scale=args.time_scale,
                flows=args.flows,
                rate=args.rate,
                seed=args.seed,
                max_ttl=args.max_ttl,
                dedup_window=args.dedup_window,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = run_soak(config)
        reports[name] = report
        s, c = report.summary, report.counters
        print(
            f"  {name:<6} delivery {s.delivery_ratio:.3f} "
            f"({s.data_delivered}/{s.data_sent}), "
            f"latency {s.mean_latency * 1000.0:.1f} ms, "
            f"load {s.network_load:.2f}, "
            f"dedup drops {c.dedup_drops}, ttl drops {c.ttl_drops}, "
            f"violations {report.violations}",
            flush=True,
        )
    # The store speaks (scenario, protocol, pause, trial); a live soak maps
    # onto it as a single-trial sweep at pause 0 with a synthetic scenario
    # carrying the soak's identity (routers, duration, workload, seed).
    scenario = Scenario(
        node_count=args.routers,
        duration=args.duration,
        pause_time=0.0,
        flow_count=args.flows,
        packets_per_second=args.rate,
        seed=args.seed,
    )
    jobs = plan_sweep(scenario, protocols, pause_times=[0.0], trials=1)
    outcomes = {job: reports[job.protocol].summary for job in jobs}
    results = collect_sweep(
        outcomes, pause_times=[0.0], trials=1, protocols=protocols
    )
    if args.out is not None:
        store = ResultsStore(args.out)
        try:
            store.ensure_meta(
                scale=scale_name,
                scenario=scenario,
                protocols=protocols,
                pause_times=[0.0],
                trials=1,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3
        for job in jobs:
            store.put(job, outcomes[job])
        store.write_results(results)
        print(f"({len(jobs)} live cells stored in {store.root})")
    gate_report = evaluate_gate(
        results,
        live_invariants(protocols, delivery_floor=args.delivery_floor),
        scale=scale_name,
        store=str(args.out) if args.out is not None else "(in-memory)",
    )
    print(gate_report.to_text())
    # The flood-control violation counters are runtime state, not summary
    # metrics, so the gate cannot see them; assert them here.
    violations = sum(report.violations for report in reports.values())
    if violations:
        print(
            f"error: {violations} flood-control violation(s) — a duplicate "
            "outlived the dedup window or a router forwarded past the TTL "
            "budget (per-protocol counts above)",
            file=sys.stderr,
        )
    if args.json is not None:
        document = {
            "version": 1,
            "transport": args.transport,
            "reports": {
                name: report.to_dict() for name, report in reports.items()
            },
            "gate": gate_report.to_dict(),
        }
        Path(args.json).write_text(
            json.dumps(document, indent=1), encoding="utf-8"
        )
        print(f"(structured soak report written to {args.json})")
    return 1 if violations else gate_report.exit_code(strict=args.strict)


def _cmd_profile(args: argparse.Namespace) -> int:
    from ..sim.tuning import EngineTuning, FastPaths
    from .profile import profile_trial

    scale = resolve_scale(args.scale)
    pause = args.pause if args.pause is not None else scale.pause_times[0]
    scenario = scale.scenario.with_pause_time(pause)
    if args.faults is not None:
        scenario = scenario.with_faults(fault_preset(args.faults, scenario))
    if args.propagation_delay is not None:
        scenario = scenario.with_propagation_delay(args.propagation_delay)
    fast_paths = FastPaths.none() if args.fast_paths == "off" else FastPaths()
    tuning = EngineTuning(
        event_queue=args.queue,
        mac_model=args.mac,
        engine_backend=args.engine_backend or "serial",
        shard_count=args.shards if args.shards is not None else 0,
    )
    protocols = args.protocol or ["OLSR"]
    profiles = []
    for protocol in protocols:
        profile = profile_trial(
            scenario,
            protocol,
            scale_name=scale.name,
            fast_paths=fast_paths,
            tuning=tuning,
            faults=args.faults,
            track_allocations=args.alloc,
        )
        profiles.append(profile)
        print(profile.to_text())
        print()
    if args.json is not None:
        document = {
            "version": 1,
            "profiles": [profile.to_dict() for profile in profiles],
        }
        Path(args.json).write_text(
            json.dumps(document, indent=1), encoding="utf-8"
        )
        print(f"(structured profile written to {args.json})")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    destination = ResultsStore(args.out)
    sources = [ResultsStore(path) for path in args.stores]
    try:
        report = merge_stores(destination, sources)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for source, copied in report.copied.items():
        print(f"  {source}: {copied} cells copied")
    state = "complete" if report.complete else "still incomplete"
    print(
        f"Merged {len(sources)} store{'s' if len(sources) != 1 else ''} into "
        f"{report.destination}: {report.completed_cells}/{report.planned_cells} "
        f"cells ({state})."
    )
    return 0


def _cmd_trajectory(args: argparse.Namespace) -> int:
    stores = [ResultsStore(path) for path in args.stores]
    wanted = None if args.experiment == "all" else [args.experiment]
    try:
        trajectories = metric_trajectories(stores, wanted)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(trajectories_to_text(trajectories))
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(trajectories_to_dict(trajectories), indent=1),
            encoding="utf-8",
        )
        print(f"(structured trajectories written to {args.json})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_arg(p: argparse.ArgumentParser, required: bool = False) -> None:
        p.add_argument(
            "--out",
            required=required,
            default=None,
            help="results-store directory (default: sweep-<scale>)",
        )

    def add_exec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes (1 = serial in-process; default: 1)",
        )
        p.add_argument(
            "--quiet", action="store_true", help="suppress per-cell progress lines"
        )

    def add_policy_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trial-timeout",
            type=float,
            default=None,
            metavar="S",
            help="wall-clock watchdog per trial: a cell exceeding it counts "
            "as hung and is retried/quarantined (default: no watchdog)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=1,
            metavar="N",
            help="re-attempts per failing trial before it is quarantined "
            "(default: 1)",
        )
        p.add_argument(
            "--retry-backoff",
            type=float,
            default=0.5,
            metavar="S",
            help="base delay before retry k is backoff * 2**(k-1) seconds "
            "(default: 0.5)",
        )

    def add_faults_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--faults",
            choices=tuple(FAULT_PRESETS),
            default=None,
            metavar="PRESET",
            help="inject this deterministic fault schedule into every cell "
            f"(choices: {', '.join(FAULT_PRESETS)}; the schedule is part "
            "of each cell's content key, so a faulted sweep never mixes "
            "with a clean store)",
        )

    def add_backend_args(
        p: argparse.ArgumentParser, *, include_processes: bool = False
    ) -> None:
        backends = ("serial", "sharded") + (
            ("processes",) if include_processes else ()
        )
        p.add_argument(
            "--engine-backend",
            choices=backends,
            default=None,
            help="engine backend for every trial: the serial engine, the "
            "spatially sharded conservative PDES (bit-identical), or — "
            "where offered — shared-nothing worker processes per trial "
            "(exact radio-group fan-out; windowed barrier exchange under "
            "--propagation-delay). Default: serial, or "
            "$REPRO_ENGINE_BACKEND",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=None,
            metavar="K",
            help="shard count for the sharded/processes backends (0 = auto "
            "from cores; default: $REPRO_SHARD_COUNT or auto)",
        )

    def add_propagation_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--propagation-delay",
            type=float,
            default=None,
            metavar="S_PER_M",
            help="finite propagation delay in seconds per metre "
            "(speed of light: 3.336e-9). Selects the delayed channel "
            "model — validated by the science gate, not bit-identity — "
            "and becomes part of every cell's content key",
        )

    run = sub.add_parser("run", help="plan and run a sweep (reusing stored cells)")
    run.add_argument(
        "--scale",
        choices=tuple(SCALE_NAMES),
        default="smoke",
        help="how large a sweep to run (default: smoke)",
    )
    run.add_argument(
        "--trials", type=int, default=None, help="override trials per pause time"
    )
    run.add_argument(
        "--protocols",
        nargs="+",
        metavar="PROTO",
        default=None,
        help=f"protocol subset (default: {' '.join(PAPER_PROTOCOLS)})",
    )
    add_store_arg(run)
    add_exec_args(run)
    add_policy_args(run)
    add_faults_arg(run)
    add_backend_args(run, include_processes=True)
    add_propagation_arg(run)
    run.set_defaults(func=_cmd_run)

    resume = sub.add_parser(
        "resume", help="continue an interrupted sweep from its store directory"
    )
    add_store_arg(resume, required=True)
    add_exec_args(resume)
    add_policy_args(resume)
    resume.set_defaults(func=_cmd_resume)

    worker = sub.add_parser(
        "worker",
        help="work-steal cells from a shared store alongside other workers "
        "(the distributed backend)",
    )
    worker.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="shared results-store directory (all workers point at the same one)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        metavar="W",
        help="this worker's identity in leases and status "
        "(default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="S",
        help="seconds without a heartbeat before a lease counts as abandoned "
        f"and its cell is stolen (default: {DEFAULT_LEASE_TTL:g})",
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds between store rescans when every remaining cell is "
        "leased out (default: 1)",
    )
    worker.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="local worker processes: claimed cells are fanned over a "
        "process pool so one host contributes N cores with a single "
        "lease-polling worker (default: 1, serial)",
    )
    worker.add_argument(
        "--scale",
        choices=tuple(SCALE_NAMES),
        default=None,
        help="initialise a fresh store with this sweep (racing identical "
        "workers are safe); omit to join an existing store",
    )
    worker.add_argument(
        "--trials", type=int, default=None, help="override trials per pause time"
    )
    worker.add_argument(
        "--protocols",
        nargs="+",
        metavar="PROTO",
        default=None,
        help=f"protocol subset (default: {' '.join(PAPER_PROTOCOLS)})",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    add_policy_args(worker)
    add_faults_arg(worker)
    worker.set_defaults(func=_cmd_worker)

    status = sub.add_parser(
        "status",
        help="progress of a (possibly shared) store: cells, leases, workers",
    )
    add_store_arg(status, required=True)
    status.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="S",
        help="staleness threshold used to classify leases "
        f"(default: {DEFAULT_LEASE_TTL:g})",
    )
    status.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the structured status to PATH",
    )
    status.set_defaults(func=_cmd_status)

    report = sub.add_parser(
        "report", help="render Table I / Figures 3-7 from the store, no simulation"
    )
    add_store_arg(report, required=True)
    report.add_argument(
        "--experiment",
        choices=("all",) + tuple(EXPERIMENTS),
        default="all",
        help="regenerate one table/figure only (default: all)",
    )
    report.set_defaults(func=_cmd_report)

    gate = sub.add_parser(
        "gate",
        help="assert the paper-derived invariants over a store "
        "(nonzero exit on violation)",
    )
    add_store_arg(gate)
    gate.add_argument(
        "--scale",
        choices=tuple(SCALE_NAMES),
        default=None,
        help="require the store to hold a sweep of this scale",
    )
    gate.add_argument(
        "--union",
        nargs="+",
        metavar="STORE",
        default=None,
        help="additional stores of the same sweep to union with --out before "
        "asserting (per-worker stores of one distributed sweep; no merged "
        "directory is written)",
    )
    gate.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the structured per-invariant report to PATH",
    )
    gate.add_argument(
        "--strict",
        action="store_true",
        help="also fail on inconclusive invariants (partial stores, "
        "overlapping intervals)",
    )
    gate.add_argument(
        "--verbose",
        action="store_true",
        help="print per-pause details for passing invariants too",
    )
    gate.add_argument(
        "--registry",
        choices=tuple(GATE_REGISTRIES),
        default="paper",
        help="invariant registry to assert: 'paper' for the clean-sweep "
        "claims, 'faults' for the chaos-layer resilience claims "
        "(default: paper)",
    )
    gate.add_argument(
        "--list",
        action="store_true",
        help="list the registered invariants with their paper citations "
        "and exit (no store needed)",
    )
    gate.set_defaults(func=_cmd_gate)

    live = sub.add_parser(
        "live",
        help="soak routing protocols as live asyncio router daemons "
        "(loopback or UDP) and assert the live gate",
    )
    live.add_argument(
        "--transport",
        choices=LIVE_TRANSPORTS,
        default="loopback",
        help="'loopback': every router on one event loop (deterministic); "
        "'udp': one OS process per router exchanging real datagrams "
        "(default: loopback)",
    )
    live.add_argument(
        "--protocols",
        nargs="+",
        metavar="PROTO",
        default=None,
        help="protocols to soak, one daemon fleet each (default: LSR AODV)",
    )
    live.add_argument(
        "--routers",
        type=int,
        default=5,
        metavar="N",
        help="router daemons per fleet (default: 5)",
    )
    live.add_argument(
        "--topology",
        choices=LIVE_TOPOLOGIES,
        default="line",
        help="static placement; adjacency is radio range over it "
        "(default: line)",
    )
    live.add_argument(
        "--duration",
        type=float,
        default=40.0,
        metavar="S",
        help="soak length in protocol seconds (default: 40)",
    )
    live.add_argument(
        "--warmup",
        type=float,
        default=12.0,
        metavar="S",
        help="protocol seconds before CBR traffic starts (default: 12)",
    )
    live.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="wall seconds per protocol second; 0.05 runs a 40 s soak in "
        "2 s of wall time (default: 1.0, real time)",
    )
    live.add_argument(
        "--flows",
        type=int,
        default=3,
        metavar="N",
        help="concurrent CBR flows (default: 3)",
    )
    live.add_argument(
        "--rate",
        type=float,
        default=4.0,
        metavar="P",
        help="packets per second per flow (default: 4)",
    )
    live.add_argument(
        "--seed",
        type=int,
        default=1,
        help="run seed: topology, flow plan and protocol RNG streams "
        "(default: 1)",
    )
    live.add_argument(
        "--max-ttl",
        type=int,
        default=16,
        metavar="N",
        help="hop budget enforced by the runtime (default: 16)",
    )
    live.add_argument(
        "--dedup-window",
        type=float,
        default=30.0,
        metavar="S",
        help="broadcast message-id dedup window in protocol seconds "
        "(default: 30)",
    )
    live.add_argument(
        "--delivery-floor",
        type=float,
        default=0.75,
        metavar="R",
        help="minimum delivery ratio the live gate demands of every "
        "protocol (default: 0.75)",
    )
    add_store_arg(live)
    live.add_argument(
        "--strict",
        action="store_true",
        help="also fail on inconclusive gate invariants",
    )
    live.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the structured soak + gate report to PATH",
    )
    live.set_defaults(func=_cmd_live)

    profile = sub.add_parser(
        "profile",
        help="run one instrumented trial and print its per-layer "
        "CPU/allocation breakdown",
    )
    profile.add_argument(
        "--scale",
        choices=tuple(SCALE_NAMES),
        default="smoke",
        help="scenario size to profile (default: smoke)",
    )
    profile.add_argument(
        "--protocol",
        nargs="+",
        metavar="PROTO",
        default=None,
        help="protocol(s) to profile (default: OLSR, the costliest trial)",
    )
    profile.add_argument(
        "--pause",
        type=float,
        default=None,
        metavar="S",
        help="mobility pause time (default: the scale's first pause time)",
    )
    profile.add_argument(
        "--fast-paths",
        choices=("on", "off"),
        default="on",
        help="profile the optimized (on) or reference (off) hot paths",
    )
    profile.add_argument(
        "--faults",
        choices=tuple(FAULT_PRESETS),
        default=None,
        metavar="PRESET",
        help="profile a faulted trial: install this fault preset "
        f"(choices: {', '.join(FAULT_PRESETS)})",
    )
    profile.add_argument(
        "--queue",
        choices=("heap", "calendar"),
        default="calendar",
        help="event-queue implementation to profile (default: calendar)",
    )
    profile.add_argument(
        "--mac",
        choices=("poll", "frozen"),
        default="poll",
        help="MAC backoff model to profile: the polling carrier-sense "
        "loop or the event-driven freeze/resume model (default: poll)",
    )
    add_backend_args(profile)
    add_propagation_arg(profile)
    profile.add_argument(
        "--alloc",
        action="store_true",
        help="also sample allocations per layer via tracemalloc (slower)",
    )
    profile.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the structured breakdown to PATH",
    )
    profile.set_defaults(func=_cmd_profile)

    merge = sub.add_parser(
        "merge",
        help="union stores of the same sweep into one compacted store",
    )
    merge.add_argument(
        "--out", required=True, help="destination store (created if missing)"
    )
    merge.add_argument(
        "stores", nargs="+", metavar="STORE", help="source store directories"
    )
    merge.set_defaults(func=_cmd_merge)

    trajectory = sub.add_parser(
        "trajectory",
        help="per-figure metric trajectories across several stores "
        "(oldest first)",
    )
    trajectory.add_argument(
        "stores", nargs="+", metavar="STORE", help="store directories, oldest first"
    )
    trajectory.add_argument(
        "--experiment",
        choices=("all",) + tuple(EXPERIMENTS),
        default="all",
        help="restrict to one table/figure (default: all)",
    )
    trajectory.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the structured trajectories to PATH",
    )
    trajectory.set_defaults(func=_cmd_trajectory)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "out", None) is None and args.command == "run":
        args.out = f"sweep-{args.scale}"
    return args.func(args)


def cli() -> None:
    """Console-script entry point (``repro-experiments`` in pyproject.toml)."""
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into e.g. `head`; completed cells are already on disk.
        sys.exit(0)
    except KeyboardInterrupt:
        print("\ninterrupted; completed cells are on disk — continue with "
              "`repro-experiments resume --out DIR`", file=sys.stderr)
        sys.exit(130)


if __name__ == "__main__":
    cli()
