"""The experiment runner: protocol x pause-time x trial sweeps.

The paper's evaluation varies the random-waypoint pause time over eight values
and runs ten trials per point, with every protocol seeing the identical
mobility and traffic script in a given trial.  :func:`run_sweep` reproduces
that design: for each (pause time, trial) pair it derives one scenario — same
seed for every protocol — and runs every protocol on it, collecting
:class:`~repro.sim.stats.TrialSummary` objects into a :class:`SweepResults`
container the figure/table code consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..metrics.collectors import extract_metric
from ..protocols import protocol_factory
from ..sim.network import run_trial
from ..sim.stats import TrialSummary
from ..workloads.scenario import Scenario

__all__ = ["SweepResults", "run_sweep"]

ProgressCallback = Callable[[str, float, int], None]


@dataclass
class SweepResults:
    """All trial summaries of one sweep, indexed by (protocol, pause, trial)."""

    pause_times: Sequence[float]
    trials: int
    protocols: Sequence[str]
    summaries: Dict[Tuple[str, float, int], TrialSummary] = field(default_factory=dict)

    # -- storage -------------------------------------------------------------------

    def add(
        self, protocol: str, pause_time: float, trial: int, summary: TrialSummary
    ) -> None:
        """Record one trial's summary."""
        self.summaries[(protocol, pause_time, trial)] = summary

    # -- queries ---------------------------------------------------------------------

    def metric_values(
        self, protocol: str, metric: str, pause_time: float
    ) -> List[float]:
        """Per-trial values of ``metric`` for one protocol at one pause time."""
        return [
            extract_metric(self.summaries[(protocol, pause_time, trial)], metric)
            for trial in range(self.trials)
            if (protocol, pause_time, trial) in self.summaries
        ]

    def metric_by_pause(
        self, protocol: str, metric: str
    ) -> Dict[float, List[float]]:
        """``pause time -> per-trial values`` for one protocol and metric."""
        return {
            pause: self.metric_values(protocol, metric, pause)
            for pause in self.pause_times
        }

    def metric_over_all_pauses(self, protocol: str, metric: str) -> List[float]:
        """Every trial value across every pause time (Table I's averages)."""
        values: List[float] = []
        for pause in self.pause_times:
            values.extend(self.metric_values(protocol, metric, pause))
        return values

    def series(self, metric: str) -> Dict[str, Dict[float, List[float]]]:
        """``protocol -> pause -> values`` for one metric (figure input shape)."""
        return {
            protocol: self.metric_by_pause(protocol, metric)
            for protocol in self.protocols
        }


def run_sweep(
    base_scenario: Scenario,
    protocols: Sequence[str],
    *,
    pause_times: Sequence[float],
    trials: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> SweepResults:
    """Run every protocol over every (pause time, trial) combination.

    Trial ``k`` at pause time ``p`` uses seed ``base_scenario.seed + k`` (and
    the pause time folded into the scenario), so all protocols in that cell
    share mobility and traffic exactly, as in the paper.
    """
    results = SweepResults(
        pause_times=list(pause_times), trials=trials, protocols=list(protocols)
    )
    for pause_time in pause_times:
        for trial in range(trials):
            scenario = base_scenario.with_pause_time(pause_time).with_seed(
                base_scenario.seed + trial
            )
            for protocol in protocols:
                if progress is not None:
                    progress(protocol, pause_time, trial)
                summary = run_trial(scenario, protocol_factory(protocol))
                results.add(protocol, pause_time, trial, summary)
    return results
