"""The experiment runner: protocol x pause-time x trial sweeps.

The paper's evaluation varies the random-waypoint pause time over eight values
and runs ten trials per point, with every protocol seeing the identical
mobility and traffic script in a given trial.  Since PR 2 the sweep is an
explicit job pipeline — :func:`~repro.experiments.jobs.plan_sweep` emits one
:class:`~repro.experiments.jobs.TrialJob` per cell,
:func:`~repro.experiments.executor.execute_jobs` runs them (serially or over a
process pool, optionally persisted in a
:class:`~repro.experiments.store.ResultsStore`), and :func:`collect_sweep`
assembles the :class:`SweepResults` container the figure/table code consumes.
:func:`run_sweep` survives as a thin compatibility wrapper over that pipeline
with the original signature and serial semantics.

``SweepResults`` round-trips through JSON (:meth:`SweepResults.to_json` /
:meth:`SweepResults.from_json`) so a finished sweep can be archived as one
file and re-reported without touching the simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..metrics.collectors import extract_metric
from ..sim.stats import TrialSummary
from ..workloads.scenario import Scenario
from .jobs import TrialJob, plan_sweep

__all__ = ["SweepResults", "collect_sweep", "run_sweep"]

#: Legacy progress signature: (protocol, pause_time, trial), called per cell.
ProgressCallback = Callable[[str, float, int], None]

RESULTS_FORMAT_VERSION = 1


@dataclass
class SweepResults:
    """All trial summaries of one sweep, indexed by (protocol, pause, trial)."""

    pause_times: Sequence[float]
    trials: int
    protocols: Sequence[str]
    summaries: Dict[Tuple[str, float, int], TrialSummary] = field(default_factory=dict)

    # -- storage -------------------------------------------------------------------

    def add(
        self, protocol: str, pause_time: float, trial: int, summary: TrialSummary
    ) -> None:
        """Record one trial's summary."""
        self.summaries[(protocol, pause_time, trial)] = summary

    # -- queries ---------------------------------------------------------------------

    def metric_values(
        self, protocol: str, metric: str, pause_time: float
    ) -> List[float]:
        """Per-trial values of ``metric`` for one protocol at one pause time."""
        return [
            extract_metric(self.summaries[(protocol, pause_time, trial)], metric)
            for trial in range(self.trials)
            if (protocol, pause_time, trial) in self.summaries
        ]

    def metric_by_pause(
        self, protocol: str, metric: str
    ) -> Dict[float, List[float]]:
        """``pause time -> per-trial values`` for one protocol and metric."""
        return {
            pause: self.metric_values(protocol, metric, pause)
            for pause in self.pause_times
        }

    def metric_over_all_pauses(self, protocol: str, metric: str) -> List[float]:
        """Every trial value across every pause time (Table I's averages)."""
        values: List[float] = []
        for pause in self.pause_times:
            values.extend(self.metric_values(protocol, metric, pause))
        return values

    def series(self, metric: str) -> Dict[str, Dict[float, List[float]]]:
        """``protocol -> pause -> values`` for one metric (figure input shape)."""
        return {
            protocol: self.metric_by_pause(protocol, metric)
            for protocol in self.protocols
        }

    # -- serialization ---------------------------------------------------------------

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The whole sweep as one JSON document (cells in sorted-key order)."""
        cells = [
            {
                "protocol": protocol,
                "pause_time": pause_time,
                "trial": trial,
                "summary": summary.to_dict(),
            }
            for (protocol, pause_time, trial), summary in sorted(
                self.summaries.items()
            )
        ]
        return json.dumps(
            {
                "version": RESULTS_FORMAT_VERSION,
                "pause_times": list(self.pause_times),
                "trials": self.trials,
                "protocols": list(self.protocols),
                "cells": cells,
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResults":
        """Rebuild a sweep written by :meth:`to_json`."""
        data = json.loads(text)
        version = data.get("version")
        if version != RESULTS_FORMAT_VERSION:
            raise ValueError(f"unsupported sweep results version: {version!r}")
        results = cls(
            pause_times=list(data["pause_times"]),
            trials=data["trials"],
            protocols=list(data["protocols"]),
        )
        for cell in data["cells"]:
            results.add(
                cell["protocol"],
                cell["pause_time"],
                cell["trial"],
                TrialSummary.from_dict(cell["summary"]),
            )
        return results


def collect_sweep(
    outcomes: Mapping[TrialJob, TrialSummary],
    *,
    pause_times: Sequence[float],
    trials: int,
    protocols: Sequence[str],
) -> SweepResults:
    """Assemble executor outcomes into a :class:`SweepResults` container.

    Keyed by each job's (protocol, pause, trial) cell, so the result is the
    same whatever order the executor completed the jobs in.
    """
    results = SweepResults(
        pause_times=list(pause_times), trials=trials, protocols=list(protocols)
    )
    for job, summary in outcomes.items():
        results.add(job.protocol, job.pause_time, job.trial, summary)
    return results


def run_sweep(
    base_scenario: Scenario,
    protocols: Sequence[str],
    *,
    pause_times: Sequence[float],
    trials: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> SweepResults:
    """Run every protocol over every (pause time, trial) combination.

    Compatibility wrapper over the job pipeline: plans the sweep, executes it
    serially in-process and collects the results — bit-identical to both the
    pre-pipeline monolithic loop and the parallel executor at fixed seeds.
    The ``progress`` callback keeps the legacy per-cell
    ``(protocol, pause_time, trial)`` signature.
    """
    from .executor import run_job

    jobs = plan_sweep(
        base_scenario, protocols, pause_times=pause_times, trials=trials
    )
    outcomes: Dict[TrialJob, TrialSummary] = {}
    for job in jobs:
        # The legacy callback fires *before* each cell runs, as it always did.
        if progress is not None:
            progress(job.protocol, job.pause_time, job.trial)
        outcomes[job] = run_job(job)
    return collect_sweep(
        outcomes, pause_times=pause_times, trials=trials, protocols=protocols
    )
