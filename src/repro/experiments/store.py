"""JSON-on-disk results store: completed trial cells survive interruption.

A paper-scale sweep is 400 independent 900 s simulations; killing it at cell
399 must not cost the first 398.  :class:`ResultsStore` persists each completed
:class:`~repro.experiments.jobs.TrialJob` as one small JSON file named by the
job's content key, so a re-planned sweep (same parameters -> same keys) reuses
every completed cell and only the missing ones run.  One-file-per-cell keeps
the store crash-safe without locking: files are written to a temp name and
atomically renamed, so a store never contains a half-written cell.

Layout::

    <root>/
        sweep.json        sweep-level metadata (scale, scenario, protocols, ...)
        results.json      optional SweepResults dump written after a full run
        jobs/<key>.json   {"version", "job": {...}, "summary": {...}} per cell
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..sim.stats import TrialSummary
from .jobs import TrialJob, plan_sweep

if TYPE_CHECKING:  # import cycle guard: runner -> executor -> store
    from .runner import SweepResults

__all__ = ["ResultsStore"]

STORE_VERSION = 1


def _atomic_write_json(path: Path, data: Any) -> None:
    """Write JSON to ``path`` via a temp file + rename, so readers never see a
    partial file and a killed writer leaves no corrupt cell behind."""
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(data, sort_keys=True, indent=1), encoding="utf-8")
    os.replace(tmp, path)


class ResultsStore:
    """A directory of per-job trial summaries keyed by job content hash."""

    def __init__(self, root: os.PathLike | str) -> None:
        # No mkdir here: read-only uses (report/resume on a mistyped path)
        # must not litter empty directories. Writers create lazily.
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.meta_path = self.root / "sweep.json"
        self.results_path = self.root / "results.json"

    # -- per-cell results ------------------------------------------------------------

    def _cell_path(self, key: str) -> Path:
        return self.jobs_dir / f"{key}.json"

    def put(self, job: TrialJob, summary: TrialSummary) -> None:
        """Persist one completed cell (atomic; safe under concurrent writers
        because every job has a distinct key)."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            self._cell_path(job.content_key),
            {
                "version": STORE_VERSION,
                "job": job.to_dict(),
                "summary": summary.to_dict(),
            },
        )

    def get(self, job: TrialJob) -> Optional[TrialSummary]:
        """The stored summary for ``job``, or ``None`` if the cell is missing."""
        path = self._cell_path(job.content_key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        version = data.get("version")
        if version != STORE_VERSION:
            raise ValueError(
                f"{path} was written by an incompatible store version "
                f"({version!r}; this code reads {STORE_VERSION})"
            )
        return TrialSummary.from_dict(data["summary"])

    def __contains__(self, job: TrialJob) -> bool:
        return self._cell_path(job.content_key).exists()

    def completed_keys(self) -> List[str]:
        """Content keys of every completed cell on disk."""
        return sorted(p.stem for p in self.jobs_dir.glob("*.json"))

    def missing(self, jobs: Sequence[TrialJob]) -> List[TrialJob]:
        """The subset of ``jobs`` without a stored result, in input order."""
        return [job for job in jobs if job not in self]

    # -- sweep-level metadata ----------------------------------------------------------

    def write_meta(
        self,
        *,
        scale: str,
        scenario,
        protocols: Sequence[str],
        pause_times: Sequence[float],
        trials: int,
    ) -> None:
        """Record the sweep's parameters so ``resume``/``report`` need no CLI args."""
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            self.meta_path,
            {
                "version": STORE_VERSION,
                "scale": scale,
                "scenario": scenario.to_dict(),
                "protocols": list(protocols),
                "pause_times": list(pause_times),
                "trials": trials,
            },
        )

    def ensure_meta(
        self,
        *,
        scale: str,
        scenario,
        protocols: Sequence[str],
        pause_times: Sequence[float],
        trials: int,
    ) -> None:
        """Write the metadata, or validate it against an existing sweep.

        Guards every writer against silently clobbering a store that holds a
        *different* sweep — overwritten metadata would re-plan fewer/other
        cells and orphan completed results.  Raises ``ValueError`` when the
        directory already records different parameters.
        """
        meta = self.read_meta()
        if meta is None:
            self.write_meta(
                scale=scale,
                scenario=scenario,
                protocols=protocols,
                pause_times=pause_times,
                trials=trials,
            )
            return
        recorded = self.meta_fingerprint()
        requested = (
            scenario.to_dict(),
            list(protocols),
            list(pause_times),
            trials,
        )
        if recorded != requested:
            raise ValueError(
                f"{self.root} already holds a different sweep "
                f"(scale {meta['scale']!r}); use a fresh directory or "
                "resume the existing sweep"
            )

    def adopt_meta(self, meta: Dict[str, Any]) -> None:
        """Write a metadata document verbatim (used when a merge destination
        inherits the sweep identity of its first source)."""
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.meta_path, meta)

    def read_meta(self) -> Optional[Dict[str, Any]]:
        """The sweep metadata, or ``None`` for a fresh/foreign directory."""
        try:
            return json.loads(self.meta_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None

    def require_meta(self) -> Dict[str, Any]:
        """Like :meth:`read_meta` but raises for a directory with no sweep."""
        meta = self.read_meta()
        if meta is None:
            raise FileNotFoundError(
                f"{self.meta_path} does not exist; "
                f"{self.root} is not a sweep results store"
            )
        return meta

    # -- merging -----------------------------------------------------------------------

    def meta_fingerprint(self) -> tuple:
        """The identity of the sweep this store holds (everything that
        determines its planned job keys).  Two stores with equal fingerprints
        hold cells of the same sweep and can be merged losslessly."""
        meta = self.require_meta()
        return (
            meta["scenario"],
            list(meta["protocols"]),
            list(meta["pause_times"]),
            meta["trials"],
        )

    def merge_from(self, other: "ResultsStore") -> int:
        """Copy every planned cell that ``other`` has and this store lacks.

        Both stores must hold the *same* sweep (validated via
        :meth:`meta_fingerprint`); cells are keyed by job content hash, so a
        cell present in both is byte-for-byte the same result and is left
        alone.  Returns the number of cells copied.  Orphan files in ``other``
        that no planned job names are ignored — merging is also compaction.
        """
        if self.meta_fingerprint() != other.meta_fingerprint():
            raise ValueError(
                f"cannot merge {other.root} into {self.root}: "
                "the directories hold different sweeps"
            )
        copied = 0
        for job in self.planned_jobs():
            if job in self:
                continue
            summary = other.get(job)
            if summary is None:
                continue
            self.put(job, summary)
            copied += 1
        return copied

    # -- reconstruction ----------------------------------------------------------------

    def planned_jobs(self) -> List[TrialJob]:
        """Re-plan the sweep recorded in the metadata (same params -> same keys)."""
        from ..workloads.scenario import Scenario

        meta = self.require_meta()
        return plan_sweep(
            Scenario.from_dict(meta["scenario"]),
            meta["protocols"],
            pause_times=meta["pause_times"],
            trials=meta["trials"],
        )

    def load_results(self, *, require_complete: bool = False) -> SweepResults:
        """Assemble a :class:`SweepResults` from the cells on disk.

        Missing cells are simply absent from the result (``SweepResults``
        queries tolerate that) unless ``require_complete`` is set.
        """
        from .runner import SweepResults

        meta = self.require_meta()
        jobs = self.planned_jobs()
        results = SweepResults(
            pause_times=list(meta["pause_times"]),
            trials=meta["trials"],
            protocols=list(meta["protocols"]),
        )
        absent = 0
        for job in jobs:
            summary = self.get(job)
            if summary is None:
                absent += 1
                continue
            results.add(job.protocol, job.pause_time, job.trial, summary)
        if require_complete and absent:
            raise ValueError(
                f"store at {self.root} is incomplete: "
                f"{absent} of {len(jobs)} cells missing"
            )
        return results

    def write_results(self, results: SweepResults) -> None:
        """Dump the assembled sweep as one ``results.json`` for downstream tools."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.results_path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(results.to_json(indent=1), encoding="utf-8")
        os.replace(tmp, self.results_path)
