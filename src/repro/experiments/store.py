"""JSON-on-disk results store: completed trial cells survive interruption.

A paper-scale sweep is 400 independent 900 s simulations; killing it at cell
399 must not cost the first 398.  :class:`ResultsStore` persists each completed
:class:`~repro.experiments.jobs.TrialJob` as one small JSON file named by the
job's content key, so a re-planned sweep (same parameters -> same keys) reuses
every completed cell and only the missing ones run.  One-file-per-cell keeps
the store crash-safe without locking: files are written to a temp name and
atomically renamed, so a store never contains a half-written cell.  A cell
that *is* truncated or unparsable (a torn artifact download, a foreign
writer) is treated as missing — reported via :meth:`torn_keys` and a
``TornCellWarning`` — never as a crash.

Since the distributed backend (PR 4), a store is also the coordination
surface for several concurrent writers: ``claims/<key>.lease`` files record
which worker owns which in-flight cell (published atomically via ``link(2)``
so exactly one claimant wins; refreshed by heartbeat; reclaimed once stale), and
``workers/<id>.json`` records which worker completed which cells, for the
``status`` subcommand.  Leases and worker records are bookkeeping only: cell
files never mention the worker that wrote them, so N workers converge on a
store byte-identical to a serial run's.

Since the fault boundary (PR 6), a store also quarantines cells that
repeatedly fail to run: ``failures/<key>.json`` holds a structured
:class:`FailureRecord` describing what went wrong (exception, watchdog
timeout, worker crash), so a sweep *completes* around a poisoned cell instead
of dying on it.  A successful :meth:`put` for the key clears the quarantine —
re-running the sweep retries exactly the failed cells.

Layout::

    <root>/
        sweep.json         sweep-level metadata (scale, scenario, protocols, ...)
        results.json       optional SweepResults dump written after a full run
        jobs/<key>.json    {"version", "job": {...}, "summary": {...}} per cell
        claims/<key>.lease {"worker", "claimed_at", "heartbeat", ...} in-flight
        workers/<id>.json  {"worker", "completed": [keys], "updated"} provenance
        failures/<key>.json {"version", "failure": {...}} quarantined cells
"""

from __future__ import annotations

import json
import os
import uuid
import warnings
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
)

from ..sim.stats import TrialSummary
from .jobs import TrialJob, plan_sweep

if TYPE_CHECKING:  # import cycle guard: runner -> executor -> store
    from .runner import SweepResults

__all__ = ["FailureRecord", "ResultsStore", "TornCellWarning"]

STORE_VERSION = 1


@dataclass(frozen=True, slots=True)
class FailureRecord:
    """Why one trial cell could not be completed (quarantine document).

    Produced by the executor's fault boundary after retries are exhausted and
    persisted under ``failures/<key>.json``; ``status``/``report`` surface
    these, and a later successful run of the cell clears the record.
    """

    key: str  #: the job's content key
    error: str  #: exception class name ("TrialHang", "MemoryError", ...)
    message: str  #: stringified exception, truncated
    attempts: int  #: how many times the cell was tried before quarantine
    cell: Dict[str, Any] = field(default_factory=dict)  #: human-readable cell id
    worker: Optional[str] = None  #: reporting worker (distributed runs)
    elapsed: float = 0.0  #: wall-clock seconds spent across all attempts
    recorded_at: float = 0.0  #: wall-clock timestamp of the quarantine
    traceback: str = ""  #: tail of the formatted traceback, for debugging

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict of every field."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureRecord":
        """Rebuild a record written by :meth:`to_dict` (unknown keys ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{name: data[name] for name in names if name in data})


class TornCellWarning(UserWarning):
    """A cell file existed but held truncated/invalid JSON; treated as missing."""


def _tmp_name(path: Path) -> Path:
    """A writer-unique temp sibling of ``path``.

    PIDs alone are not unique across the hosts that share a distributed
    store (PID spaces are per-host), so two fleet writers with colliding
    PIDs could interleave one temp file; the uuid makes the name unique
    everywhere."""
    return path.with_suffix(path.suffix + f".tmp{os.getpid()}-{uuid.uuid4().hex[:8]}")


def _atomic_write_json(path: Path, data: Any) -> None:
    """Write JSON to ``path`` via a temp file + rename, so readers never see a
    partial file and a killed writer leaves no corrupt cell behind."""
    tmp = _tmp_name(path)
    tmp.write_text(json.dumps(data, sort_keys=True, indent=1), encoding="utf-8")
    os.replace(tmp, path)


class ResultsStore:
    """A directory of per-job trial summaries keyed by job content hash."""

    def __init__(self, root: os.PathLike | str) -> None:
        # No mkdir here: read-only uses (report/resume on a mistyped path)
        # must not litter empty directories. Writers create lazily.
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.workers_dir = self.root / "workers"
        self.failures_dir = self.root / "failures"
        self.meta_path = self.root / "sweep.json"
        self.results_path = self.root / "results.json"
        # Key-set cache: the cell directory is scanned once per instance, not
        # once per completed_keys()/missing() call (a 1k-cell store makes that
        # scan the hot path of every resume/status poll).  `put` keeps it
        # current; concurrent *other* writers need invalidate_key_cache().
        self._key_cache: Optional[Set[str]] = None
        self._torn: Set[str] = set()

    # -- per-cell results ------------------------------------------------------------

    def _cell_path(self, key: str) -> Path:
        return self.jobs_dir / f"{key}.json"

    def put(self, job: TrialJob, summary: TrialSummary) -> None:
        """Persist one completed cell (atomic; safe under concurrent writers
        because every job has a distinct key)."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            self._cell_path(job.content_key),
            {
                "version": STORE_VERSION,
                "job": job.to_dict(),
                "summary": summary.to_dict(),
            },
        )
        if self._key_cache is not None:
            self._key_cache.add(job.content_key)
        self._torn.discard(job.content_key)
        # Success supersedes quarantine: a completed cell is not failed.
        self.clear_failure(job.content_key)

    def get(self, job: TrialJob) -> Optional[TrialSummary]:
        """The stored summary for ``job``, or ``None`` if the cell is missing.

        A cell file that exists but cannot be parsed (truncated by a torn
        download, written by something other than :meth:`put`) counts as
        missing too: it is recorded in :meth:`torn_keys`, a
        :class:`TornCellWarning` is emitted once, and the caller re-runs the
        job — required for crash-safe distributed writers, where a reader
        must never die on a cell another host is responsible for.
        """
        path = self._cell_path(job.content_key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._mark_torn(job.content_key, path, repr(exc))
            return None
        version = data.get("version") if isinstance(data, dict) else None
        if version != STORE_VERSION:
            raise ValueError(
                f"{path} was written by an incompatible store version "
                f"({version!r}; this code reads {STORE_VERSION})"
            )
        try:
            summary = TrialSummary.from_dict(data["summary"])
        except (KeyError, TypeError) as exc:
            self._mark_torn(job.content_key, path, repr(exc))
            return None
        if self._key_cache is not None:
            self._key_cache.add(job.content_key)
        self._torn.discard(job.content_key)
        return summary

    def _mark_torn(self, key: str, path: Path, reason: str) -> None:
        if key not in self._torn:
            warnings.warn(
                f"cell {path} is torn ({reason}); treating it as missing",
                TornCellWarning,
                stacklevel=3,
            )
        self._torn.add(key)
        if self._key_cache is not None:
            self._key_cache.discard(key)

    def __contains__(self, job: TrialJob) -> bool:
        return job.content_key in self._keys()

    def _keys(self) -> Set[str]:
        if self._key_cache is None:
            self._key_cache = {
                p.stem for p in self.jobs_dir.glob("*.json")
            } - self._torn
        return self._key_cache

    def completed_keys(self) -> List[str]:
        """Content keys of every completed cell on disk (cached per instance;
        see :meth:`invalidate_key_cache` for multi-writer refresh)."""
        return sorted(self._keys())

    def missing(self, jobs: Sequence[TrialJob]) -> List[TrialJob]:
        """The subset of ``jobs`` without a stored result, in input order."""
        return [job for job in jobs if job not in self]

    def invalidate_key_cache(self) -> None:
        """Drop the cached key set so the next query re-scans the directory.

        Call between polls when *other* processes write cells into the same
        store (the distributed backend does, once per steal cycle); a
        single-writer store never needs it.
        """
        self._key_cache = None

    def torn_keys(self) -> List[str]:
        """Keys of cells found torn (unparsable) so far, by this instance."""
        return sorted(self._torn)

    # -- quarantined cells -------------------------------------------------------------

    def _failure_path(self, key: str) -> Path:
        return self.failures_dir / f"{key}.json"

    def put_failure(self, record: FailureRecord) -> None:
        """Quarantine a cell: persist why it could not be completed (atomic)."""
        self.failures_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            self._failure_path(record.key),
            {"version": STORE_VERSION, "failure": record.to_dict()},
        )

    def get_failure(self, key: str) -> Optional[FailureRecord]:
        """The quarantine record for ``key``, or ``None`` (torn = missing)."""
        try:
            data = json.loads(self._failure_path(key).read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(data, dict) or not isinstance(data.get("failure"), dict):
            return None
        try:
            return FailureRecord.from_dict(data["failure"])
        except TypeError:
            return None

    def clear_failure(self, key: str) -> None:
        """Remove ``key``'s quarantine record, if any."""
        try:
            self._failure_path(key).unlink()
        except FileNotFoundError:
            pass

    def failure_keys(self) -> List[str]:
        """Content keys of every quarantined cell, sorted."""
        return sorted(p.stem for p in self.failures_dir.glob("*.json"))

    def failure_records(self) -> Dict[str, FailureRecord]:
        """``{content key: record}`` for every readable quarantine document."""
        records: Dict[str, FailureRecord] = {}
        for key in self.failure_keys():
            record = self.get_failure(key)
            if record is not None:
                records[key] = record
        return records

    # -- sweep-level metadata ----------------------------------------------------------

    def write_meta(
        self,
        *,
        scale: str,
        scenario,
        protocols: Sequence[str],
        pause_times: Sequence[float],
        trials: int,
    ) -> None:
        """Record the sweep's parameters so ``resume``/``report`` need no CLI args."""
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            self.meta_path,
            {
                "version": STORE_VERSION,
                "scale": scale,
                "scenario": scenario.to_dict(),
                "protocols": list(protocols),
                "pause_times": list(pause_times),
                "trials": trials,
            },
        )

    def ensure_meta(
        self,
        *,
        scale: str,
        scenario,
        protocols: Sequence[str],
        pause_times: Sequence[float],
        trials: int,
    ) -> None:
        """Write the metadata, or validate it against an existing sweep.

        Guards every writer against silently clobbering a store that holds a
        *different* sweep — overwritten metadata would re-plan fewer/other
        cells and orphan completed results.  Raises ``ValueError`` when the
        directory already records different parameters.  Safe under
        concurrent identical writers (several ``worker`` processes starting
        against one fresh shared store): the write is atomic and the content
        deterministic, so racing writers produce the same bytes.  Racing
        writers with *different* parameters would otherwise both see an
        empty directory and both "win", so after writing we re-read and
        compare — the loser of the last-write race gets the same
        ``ValueError`` a late arrival would (a sub-millisecond window where
        both re-reads precede the second write remains; nothing short of
        real locks closes it).
        """
        requested = (
            scenario.to_dict(),
            list(protocols),
            list(pause_times),
            trials,
        )
        if self.read_meta() is None:
            self.write_meta(
                scale=scale,
                scenario=scenario,
                protocols=protocols,
                pause_times=pause_times,
                trials=trials,
            )
        meta = self.require_meta()
        recorded = self.meta_fingerprint()
        if recorded != requested:
            raise ValueError(
                f"{self.root} already holds a different sweep "
                f"(scale {meta['scale']!r}); use a fresh directory or "
                "resume the existing sweep"
            )

    def adopt_meta(self, meta: Dict[str, Any]) -> None:
        """Write a metadata document verbatim (used when a merge destination
        inherits the sweep identity of its first source)."""
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.meta_path, meta)

    def read_meta(self) -> Optional[Dict[str, Any]]:
        """The sweep metadata, or ``None`` for a fresh/foreign directory."""
        try:
            return json.loads(self.meta_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None

    def require_meta(self) -> Dict[str, Any]:
        """Like :meth:`read_meta` but raises for a directory with no sweep."""
        meta = self.read_meta()
        if meta is None:
            raise FileNotFoundError(
                f"{self.meta_path} does not exist; "
                f"{self.root} is not a sweep results store"
            )
        return meta

    # -- work claims (distributed workers) ---------------------------------------------

    def _lease_path(self, key: str) -> Path:
        return self.claims_dir / f"{key}.lease"

    def try_claim(
        self,
        key: str,
        worker_id: str,
        *,
        now: float,
        nonce: Optional[str] = None,
        cell: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Atomically claim ``key`` for ``worker_id``; the claim dict on
        success, ``None`` when another worker already holds the lease.

        The lease appears atomically: the document is written to a private
        temp file and ``os.link``ed to the lease path, so of any number of
        racing claimants exactly one wins (link fails on an existing target)
        and no reader ever observes a partially-written lease — which
        matters because a torn lease counts as *immediately* stale.
        ``nonce`` should be unique per claim attempt (the winner re-reads
        the lease and compares the whole document before running; see
        ``DistributedBackend``), and ``cell`` carries the job's
        human-readable identity for ``status`` output.
        """
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        claim = {
            "version": STORE_VERSION,
            "worker": worker_id,
            "claimed_at": now,
            "heartbeat": now,
            "nonce": nonce,
            "cell": cell,
        }
        tmp = _tmp_name(self._lease_path(key))
        tmp.write_text(json.dumps(claim, sort_keys=True), encoding="utf-8")
        try:
            os.link(tmp, self._lease_path(key))
        except FileExistsError:
            return None
        except FileNotFoundError:
            # Our tmp file vanished under us (an aggressive cleaner on the
            # shared dir); treat the claim as lost, never as an error.
            return None
        finally:
            tmp.unlink(missing_ok=True)
        return claim

    def read_claim(self, key: str) -> Optional[Dict[str, Any]]:
        """The lease document for ``key``, ``None`` when unclaimed, ``{}``
        when the lease file itself is torn (a killed writer; reclaimable)."""
        try:
            data = json.loads(self._lease_path(key).read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            return {}
        return data if isinstance(data, dict) else {}

    def refresh_claim(
        self, key: str, worker_id: str, *, now: float
    ) -> Optional[Dict[str, Any]]:
        """Heartbeat: advance our lease's timestamp; the refreshed claim, or
        ``None`` when the lease is gone or no longer ours (stolen as stale —
        the caller should stop assuming ownership)."""
        claim = self.read_claim(key)
        if not claim or claim.get("worker") != worker_id:
            return None
        claim["heartbeat"] = now
        _atomic_write_json(self._lease_path(key), claim)
        return claim

    def release_claim(self, key: str, worker_id: str) -> None:
        """Drop our lease on ``key`` (a lease someone else now holds is kept)."""
        claim = self.read_claim(key)
        if claim is not None and claim.get("worker") == worker_id:
            try:
                self._lease_path(key).unlink()
            except FileNotFoundError:
                pass

    @staticmethod
    def claim_is_stale(
        claim: Optional[Dict[str, Any]], *, ttl: float, now: float
    ) -> bool:
        """Whether a lease's owner has missed its heartbeat for over ``ttl``
        seconds (a torn lease ``{}`` is immediately stale).

        The heartbeat was stamped by the *owner's* clock and ``now`` comes
        from the reader's, so multi-host fleets assume wall clocks agree to
        well within the TTL (NTP is plenty for the 60 s default; raise
        ``--lease-ttl`` if your hosts drift more).  Skew beyond the TTL
        makes live leases look abandoned — cells get re-run (duplicated
        deterministic work), never corrupted.
        """
        if claim is None:
            return False
        heartbeat = claim.get("heartbeat", claim.get("claimed_at"))
        if heartbeat is None:
            return True
        return (now - heartbeat) > ttl

    def reap_stale_lease(
        self, key: str, worker_id: str, *, ttl: float, now: float
    ) -> bool:
        """Remove ``key``'s lease if its owner's heartbeat lapsed; True when
        this call removed it.

        Race-safe without locks: the stale lease is first *renamed* to a
        claimant-unique graveyard name — of several racing reapers only one
        rename succeeds, the rest get ``FileNotFoundError`` — and the moved
        document is re-checked for staleness before deletion.  If the rename
        yanked a lease that turned out to be live (its owner refreshed
        between our read and our rename), it is put back.
        """
        claim = self.read_claim(key)
        if claim is None or not self.claim_is_stale(claim, ttl=ttl, now=now):
            return False
        lease = self._lease_path(key)
        grave = self.claims_dir / f"{key}.reaped-by-{worker_id}"
        try:
            os.rename(lease, grave)
        except FileNotFoundError:
            return False
        try:
            moved = json.loads(grave.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError):
            moved = {}
        if isinstance(moved, dict) and not self.claim_is_stale(
            moved, ttl=ttl, now=now
        ):
            # We raced a fresh claimant; restore their lease and back off.
            # (If yet another claimant created a new lease in the gap, the
            # restore overwrites it with the live document we displaced —
            # the verify-after-claim step in the backend resolves who runs.)
            os.replace(grave, lease)
            return False
        grave.unlink(missing_ok=True)
        return True

    def reclaim_stale(
        self,
        key: str,
        worker_id: str,
        *,
        ttl: float,
        now: float,
        nonce: Optional[str] = None,
        cell: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Take over a stale lease; the new claim on success, else ``None``.

        :meth:`reap_stale_lease` settles which of several racing reclaimers
        gets to delete the stale lease; the winner then claims the freed key
        via :meth:`try_claim` (which can still lose to a third worker that
        links a new lease in the gap — callers must treat ``None`` as "someone
        else owns it now").
        """
        if not self.reap_stale_lease(key, worker_id, ttl=ttl, now=now):
            return None
        return self.try_claim(key, worker_id, now=now, nonce=nonce, cell=cell)

    def reap_graveyard(self, *, ttl: float, now: float) -> int:
        """Delete leftover ``*.reaped-by-*`` files from reapers that died
        between their rename and unlink; the number removed.

        Only graves whose *content* is stale (or unreadable) are deleted: a
        grave holding a live document belongs to a reaper that just yanked a
        refreshed lease and is about to restore it — leave it alone.
        (``*.lease.tmp*`` litter from a claimant killed between temp write
        and link is deliberately *not* swept: unlike graves — renamed from
        complete documents — a tmp file can legitimately be mid-write, and
        deleting one under a live claimant would break its link step.)
        """
        removed = 0
        for path in self.claims_dir.glob("*.reaped-by-*"):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError):
                data = {}
            if not isinstance(data, dict):
                data = {}
            if self.claim_is_stale(data, ttl=ttl, now=now):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass
        return removed

    def claims(self) -> Dict[str, Dict[str, Any]]:
        """Every current lease, ``{content key: claim document}``."""
        found: Dict[str, Dict[str, Any]] = {}
        for path in self.claims_dir.glob("*.lease"):
            if ".reaped-by-" in path.name:
                continue  # graveyard litter, not a lease (see reap_graveyard)
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                continue  # released between glob and read: simply unclaimed
            except (json.JSONDecodeError, UnicodeDecodeError):
                data = {}  # genuinely torn (killed writer): reclaimable
            found[path.name[: -len(".lease")]] = (
                data if isinstance(data, dict) else {}
            )
        return found

    # -- worker provenance -------------------------------------------------------------

    def record_worker_cells(
        self, worker_id: str, keys: Sequence[str], *, now: float
    ) -> None:
        """Record which cells ``worker_id`` has completed (for ``status``);
        bookkeeping only — cell files themselves stay worker-agnostic so
        distributed stores remain byte-identical to serial ones."""
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            self.workers_dir / f"{worker_id}.json",
            {
                "version": STORE_VERSION,
                "worker": worker_id,
                "completed": sorted(keys),
                "updated": now,
            },
        )

    def worker_records(self) -> Dict[str, Dict[str, Any]]:
        """``{worker id: record}`` for every worker that wrote into this store."""
        records: Dict[str, Dict[str, Any]] = {}
        for path in self.workers_dir.glob("*.json"):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(data, dict) and data.get("worker"):
                records[data["worker"]] = data
        return records

    # -- merging -----------------------------------------------------------------------

    def meta_fingerprint(self) -> tuple:
        """The identity of the sweep this store holds (everything that
        determines its planned job keys).  Two stores with equal fingerprints
        hold cells of the same sweep and can be merged losslessly."""
        meta = self.require_meta()
        return (
            meta["scenario"],
            list(meta["protocols"]),
            list(meta["pause_times"]),
            meta["trials"],
        )

    def require_same_sweep(self, other: "ResultsStore", *, action: str) -> None:
        """Raise ``ValueError`` unless ``other`` holds this store's sweep.

        The single definition of "combinable" shared by merge, union and
        cell comparison — anything that would mix cells of two different
        sweeps must fail through here, so the contract cannot drift.
        """
        if self.meta_fingerprint() != other.meta_fingerprint():
            raise ValueError(
                f"cannot {action} {other.root} and {self.root}: "
                "the directories hold different sweeps"
            )

    def merge_from(self, other: "ResultsStore") -> int:
        """Copy every planned cell that ``other`` has and this store lacks.

        Both stores must hold the *same* sweep (validated via
        :meth:`require_same_sweep`); cells are keyed by job content hash, so
        a cell present in both is byte-for-byte the same result and is left
        alone.  Returns the number of cells copied.  Orphan files in ``other``
        that no planned job names are ignored — merging is also compaction.
        """
        self.require_same_sweep(other, action="merge")
        copied = 0
        for job in self.planned_jobs():
            if job in self:
                continue
            summary = other.get(job)
            if summary is None:
                continue
            self.put(job, summary)
            copied += 1
        return copied

    def diff_cells(self, other: "ResultsStore") -> List[str]:
        """Content keys of planned cells on which the two stores disagree.

        Agreement is strict: the cell must exist in both and hold an equal
        summary (content-addressed cells make byte-identity follow).  Used by
        the distributed-vs-serial equivalence checks in tests and CI; an
        empty list means the stores are cell-for-cell identical.
        """
        self.require_same_sweep(other, action="compare")
        mismatched = []
        for job in self.planned_jobs():
            mine, theirs = self.get(job), other.get(job)
            if mine is None or theirs is None or mine != theirs:
                mismatched.append(job.content_key)
        return mismatched

    # -- reconstruction ----------------------------------------------------------------

    def planned_jobs(self) -> List[TrialJob]:
        """Re-plan the sweep recorded in the metadata (same params -> same keys)."""
        from ..workloads.scenario import Scenario

        meta = self.require_meta()
        return plan_sweep(
            Scenario.from_dict(meta["scenario"]),
            meta["protocols"],
            pause_times=meta["pause_times"],
            trials=meta["trials"],
        )

    def load_results(self, *, require_complete: bool = False) -> SweepResults:
        """Assemble a :class:`SweepResults` from the cells on disk.

        Missing cells — including torn ones, which :meth:`get` reports and
        skips — are simply absent from the result (``SweepResults`` queries
        tolerate that) unless ``require_complete`` is set.
        """
        from .runner import SweepResults

        meta = self.require_meta()
        jobs = self.planned_jobs()
        results = SweepResults(
            pause_times=list(meta["pause_times"]),
            trials=meta["trials"],
            protocols=list(meta["protocols"]),
        )
        absent = 0
        for job in jobs:
            summary = self.get(job)
            if summary is None:
                absent += 1
                continue
            results.add(job.protocol, job.pause_time, job.trial, summary)
        if require_complete and absent:
            raise ValueError(
                f"store at {self.root} is incomplete: "
                f"{absent} of {len(jobs)} cells missing"
            )
        return results

    def write_results(self, results: SweepResults) -> None:
        """Dump the assembled sweep as one ``results.json`` for downstream tools."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = _tmp_name(self.results_path)
        tmp.write_text(results.to_json(indent=1), encoding="utf-8")
        os.replace(tmp, self.results_path)
