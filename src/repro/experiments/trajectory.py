"""Cross-run tooling: merge result stores and track metrics across runs.

The nightly paper-tier job uploads one store per night, so the artifacts pile
up as independent directories.  This module provides the two operations that
turn that pile into a record of the reproduction over time:

* :func:`merge_stores` — union several stores of the *same* sweep into one
  compacted store (cells are content-addressed, so the union is lossless and
  idempotent; orphan files are dropped).  A timed-out nightly run merged with
  the next night's store yields the completed sweep.
* :func:`metric_trajectories` — read several stores (of the same *or*
  different sweeps — one per commit/night) in order and emit, per figure and
  protocol, the pooled metric value of each store, as structured data plus
  ASCII sparklines.  A protocol regression then shows up as a step in the
  trajectory even before the science gate's invariants trip.

Both are surfaced by the CLI: ``python -m repro.experiments merge --out DEST
SRC...`` and ``... trajectory DIR... [--experiment fig5] [--json PATH]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..metrics.report import interval_or_empty
from .paper import EXPERIMENTS
from .store import ResultsStore

__all__ = [
    "MergeReport",
    "TrajectoryPoint",
    "merge_stores",
    "metric_trajectories",
    "sparkline",
    "trajectories_to_dict",
    "trajectories_to_text",
    "union_results",
]

#: Eight-level bar characters for the ASCII sparklines; missing points render
#: as a middle dot so gaps stay visible.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"
SPARK_GAP = "·"


@dataclass(frozen=True, slots=True)
class MergeReport:
    """What one :func:`merge_stores` call did."""

    destination: str
    copied: Dict[str, int]  #: source root -> cells copied from it
    completed_cells: int
    planned_cells: int

    @property
    def complete(self) -> bool:
        return self.completed_cells == self.planned_cells


def merge_stores(
    destination: ResultsStore, sources: Sequence[ResultsStore]
) -> MergeReport:
    """Union ``sources`` (stores of the same sweep) into ``destination``.

    The destination may be a fresh directory (it inherits the first source's
    metadata) or an existing store of the same sweep.  Every source must match
    that sweep; a mismatch raises ``ValueError`` before anything is copied.
    After merging, the assembled ``results.json`` is rewritten so downstream
    tools see the compacted store as a completed run would have left it.
    """
    if not sources:
        raise ValueError("merge needs at least one source store")
    # Validate every source before writing anything, so a bad argument list
    # leaves a fresh destination untouched (not stamped with a sweep identity
    # that a corrected retry would then conflict with).
    fresh = destination.read_meta() is None
    reference = sources[0] if fresh else destination
    for source in sources:
        reference.require_same_sweep(source, action="merge")
    if fresh:
        destination.adopt_meta(sources[0].require_meta())
    copied: Dict[str, int] = {}
    for source in sources:
        copied[source.root.as_posix()] = destination.merge_from(source)
    results = destination.load_results()
    destination.write_results(results)
    planned = len(destination.planned_jobs())
    return MergeReport(
        destination=destination.root.as_posix(),
        copied=copied,
        completed_cells=len(results.summaries),
        planned_cells=planned,
    )


def union_results(stores: Sequence[ResultsStore]):
    """The :class:`~repro.experiments.runner.SweepResults` of several stores
    of the same sweep, unioned in memory — no merged directory written.

    The read-only sibling of :func:`merge_stores`, for asserting over a
    fleet's output without materialising it: the science gate runs over the
    union of per-worker stores exactly as it would over one shared store.
    For each planned cell the first store holding it wins; cells are
    content-addressed, so any store holding a cell holds the same bytes.
    """
    if not stores:
        raise ValueError("union needs at least one store")
    first = stores[0]
    for store in stores[1:]:
        first.require_same_sweep(store, action="union")
    results = first.load_results()
    jobs = first.planned_jobs()
    for store in stores[1:]:
        for job in jobs:
            if job.cell in results.summaries:
                continue
            summary = store.get(job)
            if summary is not None:
                results.add(job.protocol, job.pause_time, job.trial, summary)
    return results


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One store's pooled value of one (figure, protocol) series."""

    label: str  #: the store it came from (directory name)
    mean: float  #: pooled over every pause time and trial; NaN when absent
    half_width: float
    samples: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "mean": None if math.isnan(self.mean) else self.mean,
            "half_width": None if math.isnan(self.half_width) else self.half_width,
            "samples": self.samples,
        }


def metric_trajectories(
    stores: Sequence[ResultsStore],
    experiments: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, List[TrajectoryPoint]]]:
    """``figure -> protocol -> one point per store``, in the given store order.

    Pass stores oldest-first (e.g. nightly artifacts by date) so the
    sparklines read left-to-right in time.  Each point pools the metric over
    every pause time and trial — the Table-I-style summary of that run — so
    trajectories stay comparable even when two runs used different pause
    grids.  A store that lacks a protocol contributes a NaN gap point.
    """
    wanted = list(experiments) if experiments is not None else list(EXPERIMENTS)
    loaded = [(store.root.name, store.load_results()) for store in stores]
    trajectories: Dict[str, Dict[str, List[TrajectoryPoint]]] = {}
    for experiment_id in wanted:
        definition = EXPERIMENTS[experiment_id]
        per_protocol: Dict[str, List[TrajectoryPoint]] = {}
        for protocol in definition.protocols:
            points = []
            for label, results in loaded:
                values = results.metric_over_all_pauses(protocol, definition.metric)
                interval = interval_or_empty(values)
                points.append(
                    TrajectoryPoint(
                        label=label,
                        mean=interval.mean,
                        half_width=interval.half_width,
                        samples=len(values),
                    )
                )
            per_protocol[protocol] = points
        trajectories[experiment_id] = per_protocol
    return trajectories


def sparkline(values: Sequence[float]) -> str:
    """``values`` as a bar-per-value string; NaNs render as gaps."""
    finite = [value for value in values if not math.isnan(value)]
    if not finite:
        return SPARK_GAP * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if math.isnan(value):
            chars.append(SPARK_GAP)
        elif span <= 0:
            chars.append(SPARK_LEVELS[0])
        else:
            level = int((value - low) / span * (len(SPARK_LEVELS) - 1))
            chars.append(SPARK_LEVELS[level])
    return "".join(chars)


def trajectories_to_dict(
    trajectories: Mapping[str, Mapping[str, Sequence[TrajectoryPoint]]],
) -> Dict[str, Any]:
    """The JSON document ``trajectory --json`` writes."""
    return {
        experiment_id: {
            "title": EXPERIMENTS[experiment_id].title,
            "metric": EXPERIMENTS[experiment_id].metric,
            "protocols": {
                protocol: [point.to_dict() for point in points]
                for protocol, points in per_protocol.items()
            },
        }
        for experiment_id, per_protocol in trajectories.items()
    }


def trajectories_to_text(
    trajectories: Mapping[str, Mapping[str, Sequence[TrajectoryPoint]]],
) -> str:
    """Fixed-width text: one sparkline row per (figure, protocol)."""
    lines: List[str] = []
    for experiment_id, per_protocol in trajectories.items():
        definition = EXPERIMENTS[experiment_id]
        lines.append(f"{definition.title}")
        for protocol, points in per_protocol.items():
            means = [point.mean for point in points]
            latest = next(
                (m for m in reversed(means) if not math.isnan(m)), math.nan
            )
            lines.append(
                f"  {protocol:<5} {sparkline(means)}  latest "
                f"{latest:.3f}  over {len(points)} run"
                f"{'s' if len(points) != 1 else ''}"
            )
        lines.append("")
    return "\n".join(lines).rstrip("\n")
