"""Profile-driven performance analysis of one simulation trial.

Every perf PR should start from data, not intuition — PR 5's own profiling
found the dominant per-trial cost in the MAC backoff/carrier-sense polling
cycle rather than in the mobility interpolation the folklore blamed.  This
module makes that measurement a first-class, repeatable artifact:

:func:`profile_trial` runs one instrumented trial (``cProfile`` for CPU,
optionally ``tracemalloc`` for allocations) and rolls the per-function
numbers up into the architectural **layers** of the simulator — engine
dispatch, channel geometry, MAC, mobility, packet/phy, each protocol,
workload, metrics, RNG — so the output answers "where does a trial spend its
time?" at the level the code is organised.

``python -m repro.experiments profile --scale smoke --json out.json`` is the
CLI; ``--fast-paths off`` profiles the reference slow path so before/after
breakdowns come from one command.  The JSON shape is stable and documented
in EXPERIMENTS.md ("Profiling and performance").

The instrumented trial is *not* a benchmark: cProfile inflates Python call
costs roughly 2–3x and skews toward call-heavy code.  The layer shares are
what to read; end-to-end wall-clock numbers come from
``benchmarks/bench_trial_profile.py``, which runs un-instrumented.
"""

from __future__ import annotations

import cProfile
import pstats
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..protocols import PROTOCOLS, protocol_factory
from ..sim.network import build_network
from ..sim.stats import TrialSummary
from ..sim.tuning import EngineTuning, FastPaths
from ..workloads.scenario import Scenario

__all__ = [
    "LayerCost",
    "TrialProfile",
    "profile_trial",
    "layer_of",
    "reference_protocol_factory",
]


def reference_protocol_factory(protocol: str):
    """The protocol factory for the all-fast-paths-off reference side.

    Incremental route maintenance (OLSR's and LSR's dirty-flag SPF) is one
    of PR 5's fast paths but lives in the protocol *config* (instances are
    built by the factory, not by ``build_network``), so the reference side
    must disable it explicitly alongside ``FastPaths.none()``.  Registry-
    driven: any protocol whose config declares ``incremental_routes`` gets
    it switched off.  Used by both ``profile --fast-paths off`` and
    ``bench_trial_profile.py --with-off``.
    """
    spec = PROTOCOLS.get(protocol)
    if (
        spec is not None
        and spec.config_class is not None
        and "incremental_routes" in spec.default_config().to_dict()
    ):
        return protocol_factory(protocol, {"incremental_routes": False})
    return protocol_factory(protocol)

#: Path fragments -> layer name, first match wins.  Order matters: more
#: specific fragments (spatial under channel, eventq under engine) come
#: before general ones.
_LAYER_RULES: Tuple[Tuple[str, str], ...] = (
    ("repro/sim/eventq", "engine.queue"),
    ("repro/sim/pdes", "engine"),
    ("repro/sim/engine", "engine"),
    ("repro/sim/spatial", "channel"),
    ("repro/sim/channel", "channel"),
    ("repro/sim/mac", "mac"),
    ("repro/sim/mobility", "mobility"),
    ("repro/sim/space", "mobility"),
    ("repro/sim/packet", "packet"),
    ("repro/sim/phy", "packet"),
    ("repro/sim/node", "node"),
    ("repro/sim/network", "node"),
    ("repro/sim/stats", "metrics"),
    ("repro/metrics/", "metrics"),
    ("repro/protocols/", "protocol"),
    ("repro/core/", "protocol"),
    ("repro/workloads/", "workload"),
    ("/random.py", "rng"),
)

#: MAC functions (methods and hot-path closures) that make up the backoff /
#: timer machinery rather than frame handling: the poll model's polling
#: cycle, the frozen model's freeze/resume callbacks, and the shared
#: attempt/defer scheduling.  Split out as the ``mac.timers`` sub-layer so
#: a profile shows how much of "mac" is timer churn — the exact cost the
#: frozen MAC model exists to delete.
_MAC_TIMER_NAMES = frozenset(
    {
        "_try_dequeue",
        "_attempt",
        "_fast_attempt",
        "_frozen_attempt",
        "_defer",
        "poll",      # poll model: carrier-sense polling closure
        "fire",      # both models: end-of-backoff firing closure
        "draw",      # frozen model: backoff draw closure
        "on_idle",   # frozen model: idle-edge resume callback
        "proceed",   # post-transmission proceed step
    }
)

#: Sharded-backend functions that are pure synchronization — window-barrier
#: bookkeeping and the mobility-driven ownership refresh.  Split out as the
#: ``engine.sync`` sub-layer so a sharded profile shows the conservative-
#: synchronization overhead next to ``engine.queue``; serial profiles
#: report it as an all-zero row (KNOWN_LAYERS keeps columns aligned).
_PDES_SYNC_NAMES = frozenset({"_window_barrier", "_refresh_ownership"})

#: Layers always present in a profile (zero-filled when unexercised), so
#: trajectory comparisons across commits line up column-for-column.
#: ``engine.queue`` and ``mac.timers`` are sub-layers: siblings in the
#: output (shares still sum to 100%), carved out of "engine" and "mac".
KNOWN_LAYERS: Tuple[str, ...] = (
    "engine",
    "engine.queue",
    "engine.sync",
    "channel",
    "mac",
    "mac.timers",
    "mobility",
    "packet",
    "node",
    "protocol",
    "workload",
    "metrics",
    "rng",
    "builtins",
    "other",
)


def layer_of(filename: str, name: str = "") -> str:
    """The architectural layer a profiled function belongs to.

    ``name`` (the function name from the pstats key) refines file-level
    layers into sub-layers: the MAC's timer machinery reports as
    ``mac.timers``.  Callers without a function name (tracemalloc statistics
    are per-file) get the coarse layer.
    """
    if filename == "~":  # pstats' marker for C builtins (heapq, dict, ...)
        return "builtins"
    normalized = filename.replace("\\", "/")
    for fragment, layer in _LAYER_RULES:
        if fragment in normalized:
            if layer == "mac" and name in _MAC_TIMER_NAMES:
                return "mac.timers"
            if layer == "engine" and name in _PDES_SYNC_NAMES:
                return "engine.sync"
            return layer
    return "other"


@dataclass(frozen=True, slots=True)
class LayerCost:
    """One layer's share of a profiled trial."""

    layer: str
    seconds: float  #: own (tottime) CPU seconds attributed to the layer
    calls: int  #: primitive call count
    allocated_kb: Optional[float] = None  #: tracemalloc total, when sampled

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "layer": self.layer,
            "seconds": round(self.seconds, 6),
            "calls": self.calls,
        }
        if self.allocated_kb is not None:
            data["allocated_kb"] = round(self.allocated_kb, 1)
        return data


@dataclass
class TrialProfile:
    """The full per-layer breakdown of one instrumented trial."""

    scale: str
    protocol: str
    pause_time: float
    node_count: int
    duration: float
    wall_seconds: float  #: instrumented wall clock (inflated by cProfile)
    events_processed: int
    events_per_second: float
    fast_paths: bool
    summary: TrialSummary
    layers: List[LayerCost] = field(default_factory=list)
    event_queue: str = "calendar"
    mac_model: str = "poll"
    engine_backend: str = "serial"
    shard_count: int = 0  #: effective shard count; 0 under the serial backend
    faults: Optional[str] = None  #: fault preset name, when the trial is faulted
    pdes: Optional[Dict[str, Any]] = None  #: PdesSync.report(), sharded runs only

    @property
    def profiled_seconds(self) -> float:
        """Total own-time over every layer (the 100% the shares refer to)."""
        return sum(cost.seconds for cost in self.layers)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scale": self.scale,
            "protocol": self.protocol,
            "pause_time": self.pause_time,
            "node_count": self.node_count,
            "duration": self.duration,
            "wall_seconds": round(self.wall_seconds, 3),
            "events_processed": self.events_processed,
            "events_per_second": round(self.events_per_second, 1),
            "fast_paths": self.fast_paths,
            "event_queue": self.event_queue,
            "mac_model": self.mac_model,
            "engine_backend": self.engine_backend,
            "shard_count": self.shard_count,
            "faults": self.faults,
            "pdes": self.pdes,
            "layers": [cost.to_dict() for cost in self.layers],
            "summary": self.summary.to_dict(),
        }

    def to_text(self) -> str:
        total = self.profiled_seconds or 1.0
        with_alloc = any(c.allocated_kb is not None for c in self.layers)
        lines = [
            f"Trial profile: {self.protocol} @ scale={self.scale} "
            f"pause={self.pause_time:g}s "
            f"({self.node_count} nodes, {self.duration:g}s simulated, "
            f"fast paths {'on' if self.fast_paths else 'off'}, "
            f"queue={self.event_queue}, mac={self.mac_model}"
            + (
                f", backend={self.engine_backend}x{self.shard_count}"
                if self.engine_backend != "serial"
                else ""
            )
            + (f", faults={self.faults}" if self.faults else "")
            + ")",
            f"  wall {self.wall_seconds:.2f}s (instrumented), "
            f"{self.events_processed} events, "
            f"{self.events_per_second:,.0f} events/s",
        ]
        if self.pdes is not None:
            lines.append(
                f"  sync: {self.pdes['windows']} windows, "
                f"{self.pdes['handoffs']} handoffs, "
                f"{self.pdes['boundary_receptions']} boundary receptions, "
                f"{self.pdes['boundary_busy_marks']} boundary busy marks, "
                f"{self.pdes['boundary_faults']} boundary faults"
            )
            lines.append(
                f"  occupancy: {self.pdes.get('events_per_window', 0.0):,} "
                f"events/window, "
                f"{self.pdes.get('boundary_events', 0)} boundary events, "
                f"{self.pdes.get('barrier_seconds', 0.0)}s barrier stall"
            )
        lines.append(
            f"  {'layer':<12} {'seconds':>9} {'share':>7} {'calls':>12}"
            + ("  alloc KiB" if with_alloc else "")
        )
        for cost in self.layers:
            line = (
                f"  {cost.layer:<12} {cost.seconds:>9.3f} "
                f"{cost.seconds / total:>6.1%} {cost.calls:>12,}"
            )
            if cost.allocated_kb is not None:
                line += f"  {cost.allocated_kb:>9.1f}"
            lines.append(line)
        return "\n".join(lines)


def profile_trial(
    scenario: Scenario,
    protocol: str,
    *,
    scale_name: str = "custom",
    fast_paths: Optional[FastPaths] = None,
    tuning: Optional[EngineTuning] = None,
    faults: Optional[str] = None,
    track_allocations: bool = False,
) -> TrialProfile:
    """Run one instrumented trial and return its per-layer breakdown.

    ``fast_paths=FastPaths.none()`` profiles the reference slow path (the
    before side of a before/after table), including OLSR's full per-tick
    route recomputation via :func:`reference_protocol_factory`.
    ``tuning`` selects the engine configuration (event queue, MAC model),
    defaulting like :func:`build_network` — profiling the frozen MAC is
    ``tuning=EngineTuning(mac_model="frozen")``.  ``faults`` is a label
    (the preset name) recorded in the profile when ``scenario`` carries a
    fault plan; it does not install faults itself.  ``track_allocations``
    adds a tracemalloc pass — allocation sites grouped by the same layers —
    at a substantial extra slowdown.
    """
    fp = FastPaths() if fast_paths is None else fast_paths
    engine_tuning = EngineTuning.from_env() if tuning is None else tuning
    factory = (
        reference_protocol_factory(protocol)
        if fp == FastPaths.none()
        else protocol_factory(protocol)
    )
    network = build_network(scenario, factory, fast_paths=fp, tuning=engine_tuning)

    allocations: Dict[str, float] = {}
    if track_allocations:
        tracemalloc.start()
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    summary = network.run()
    profiler.disable()
    wall = time.perf_counter() - started
    if track_allocations:
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        for stat in snapshot.statistics("filename"):
            layer = layer_of(stat.traceback[0].filename)
            allocations[layer] = allocations.get(layer, 0.0) + stat.size / 1024.0

    stats = pstats.Stats(profiler)
    seconds: Dict[str, float] = {}
    calls: Dict[str, int] = {}
    for (filename, _line, _name), (
        primitive_calls,
        _total_calls,
        tottime,
        _cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        layer = layer_of(filename, _name)
        seconds[layer] = seconds.get(layer, 0.0) + tottime
        calls[layer] = calls.get(layer, 0) + primitive_calls

    layers = [
        LayerCost(
            layer=name,
            seconds=seconds.get(name, 0.0),
            calls=calls.get(name, 0),
            allocated_kb=allocations.get(name) if track_allocations else None,
        )
        for name in KNOWN_LAYERS
    ]
    layers.sort(key=lambda cost: cost.seconds, reverse=True)

    events = network.simulator.events_processed
    sync = getattr(network.simulator, "sync", None)
    return TrialProfile(
        scale=scale_name,
        protocol=protocol,
        pause_time=scenario.pause_time,
        node_count=scenario.node_count,
        duration=scenario.duration,
        wall_seconds=wall,
        events_processed=events,
        events_per_second=events / wall if wall > 0 else 0.0,
        fast_paths=fp != FastPaths.none(),
        summary=summary,
        layers=layers,
        event_queue=engine_tuning.event_queue,
        mac_model=engine_tuning.mac_model,
        engine_backend=engine_tuning.engine_backend,
        shard_count=sync.shard_count if sync is not None else 0,
        faults=faults if scenario.faults else None,
        pdes=sync.report() if sync is not None else None,
    )
