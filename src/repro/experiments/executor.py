"""Pluggable execution backends for trial jobs, with progress and caching.

Every :class:`~repro.experiments.jobs.TrialJob` is a pure function of its own
fields, so an executor is free to run jobs in any order and on any worker:
the result map is keyed by job, and the assembled
:class:`~repro.experiments.runner.SweepResults` is bit-identical whichever
backend ran it.  :func:`execute_jobs` is the single entry point; the *how* is
a :class:`SweepBackend` strategy:

* :class:`SerialBackend` runs jobs in order in the calling process (the
  legacy ``run_sweep`` behaviour; ``workers <= 1``);
* :class:`ProcessPoolBackend` fans jobs out over a ``ProcessPoolExecutor``
  with bounded workers, collecting results as they complete
  (``workers > 1``);
* :class:`~repro.experiments.distributed.DistributedBackend` (own module)
  work-steals cells from a shared store via lease files, so N processes on N
  hosts cooperate on one sweep.

An optional :class:`~repro.experiments.store.ResultsStore` makes any backend
persistent and resumable: completed cells are loaded instead of re-run, and
every fresh result is written to disk the moment it arrives, so an
interrupted sweep loses at most the cells in flight.

Progress is reported as structured :class:`ExecutionProgress` events
(completed/total, cache hit or fresh run, wall-clock elapsed, a simple ETA
and — for distributed runs — the reporting worker's identity) rather than
print statements, so the CLI, the benchmark harness and tests can each render
or inspect them as they like.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..protocols import protocol_factory
from ..sim.network import run_trial
from ..sim.stats import TrialSummary
from .jobs import TrialJob
from .store import ResultsStore

__all__ = [
    "ExecutionProgress",
    "ProcessPoolBackend",
    "SerialBackend",
    "SweepBackend",
    "execute_jobs",
    "run_job",
]

#: Observer of one completed (or cache-loaded) job.
ProgressListener = Callable[["ExecutionProgress"], None]

#: How a backend reports one finished job to the tracker:
#: ``report(job, cached=..., worker=...)``.
CompletionReporter = Callable[..., None]


@dataclass(frozen=True, slots=True)
class ExecutionProgress:
    """One structured progress event: a job just finished (or was loaded)."""

    job: TrialJob
    completed: int  #: jobs done so far, cached cells included
    total: int  #: jobs in this sweep
    cached: bool  #: True when the result came from the store, not a run
    elapsed: float  #: wall-clock seconds since execute_jobs started
    eta: Optional[float]  #: estimated seconds remaining (None until measurable)
    worker: Optional[str] = None  #: reporting worker's id (distributed runs)

    @property
    def fraction(self) -> float:
        """Completed fraction in [0, 1]."""
        return self.completed / self.total if self.total else 1.0


def run_job(job: TrialJob) -> TrialSummary:
    """Run one trial job to completion (the process-pool worker function)."""
    return run_trial(job.scenario, protocol_factory(job.protocol))


def _pool_run_job(job: TrialJob) -> Tuple[TrialJob, TrialSummary]:
    """Worker wrapper returning the job with its summary (futures complete out
    of submission order, so each result must carry its own identity)."""
    return job, run_job(job)


class _ProgressTracker:
    """Counts completions and derives ETA from the fresh-run rate only
    (cached cells are effectively free and would skew the estimate)."""

    def __init__(self, total: int, listener: Optional[ProgressListener]) -> None:
        self.total = total
        self.listener = listener
        self.completed = 0
        self.fresh_done = 0
        self.started = time.monotonic()

    def record(
        self, job: TrialJob, *, cached: bool, worker: Optional[str] = None
    ) -> None:
        self.completed += 1
        if not cached:
            self.fresh_done += 1
        if self.listener is None:
            return
        elapsed = time.monotonic() - self.started
        eta: Optional[float] = None
        remaining = self.total - self.completed
        if self.fresh_done > 0 and remaining > 0:
            eta = elapsed / self.fresh_done * remaining
        elif remaining == 0:
            eta = 0.0
        self.listener(
            ExecutionProgress(
                job=job,
                completed=self.completed,
                total=self.total,
                cached=cached,
                elapsed=elapsed,
                eta=eta,
                worker=worker,
            )
        )


class SweepBackend(ABC):
    """Strategy for running the pending (not-yet-stored) jobs of a sweep.

    :func:`execute_jobs` handles the store cache skim and progress
    accounting; a backend only decides *how* the remaining jobs run.  The
    contract every implementation must keep: return a summary for **every**
    job it was given (running it, or — for cooperative backends — loading a
    cell some other process completed), persist fresh results to ``store``
    as they arrive, and call ``report(job, cached=..., worker=...)`` exactly
    once per job.
    """

    #: The identity this backend reports in progress events; ``None`` for
    #: anonymous local backends, the worker id for distributed ones (also
    #: stamped onto the cache-skim events ``execute_jobs`` itself emits).
    worker_id: Optional[str] = None

    @abstractmethod
    def run_pending(
        self,
        jobs: Sequence[TrialJob],
        *,
        store: Optional[ResultsStore],
        report: CompletionReporter,
    ) -> Dict[TrialJob, TrialSummary]:
        """Run (or otherwise obtain) every job; ``{job: summary}``."""


class SerialBackend(SweepBackend):
    """Run jobs one after another in the calling process."""

    def run_pending(
        self,
        jobs: Sequence[TrialJob],
        *,
        store: Optional[ResultsStore],
        report: CompletionReporter,
    ) -> Dict[TrialJob, TrialSummary]:
        outcomes: Dict[TrialJob, TrialSummary] = {}
        for job in jobs:
            summary = run_job(job)
            if store is not None:
                store.put(job, summary)
            outcomes[job] = summary
            report(job, cached=False)
        return outcomes


class ProcessPoolBackend(SweepBackend):
    """Fan jobs out over a bounded ``ProcessPoolExecutor``."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def run_pending(
        self,
        jobs: Sequence[TrialJob],
        *,
        store: Optional[ResultsStore],
        report: CompletionReporter,
    ) -> Dict[TrialJob, TrialSummary]:
        outcomes: Dict[TrialJob, TrialSummary] = {}
        max_workers = min(self.workers, len(jobs)) or 1
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {pool.submit(_pool_run_job, job) for job in jobs}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    job, summary = future.result()
                    if store is not None:
                        store.put(job, summary)
                    outcomes[job] = summary
                    report(job, cached=False)
        return outcomes


def execute_jobs(
    jobs: Sequence[TrialJob],
    *,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
    progress: Optional[ProgressListener] = None,
    backend: Optional[SweepBackend] = None,
) -> Dict[TrialJob, TrialSummary]:
    """Run every job, returning ``{job: summary}`` for the whole sweep.

    With a ``store``, cells already on disk are loaded (reported as
    ``cached=True`` progress events) and fresh results are persisted as they
    complete.  ``backend`` picks the execution strategy explicitly; when
    omitted, ``workers`` selects :class:`SerialBackend` (``<= 1``) or
    :class:`ProcessPoolBackend`.  Results are independent of the backend and
    of completion order: at fixed seeds the returned map is bit-identical
    across the serial path, the pool path, distributed workers and the legacy
    monolithic loop.
    """
    if backend is None:
        backend = SerialBackend() if workers <= 1 else ProcessPoolBackend(workers)
    tracker = _ProgressTracker(len(jobs), progress)
    outcomes: Dict[TrialJob, TrialSummary] = {}

    pending = []
    for job in jobs:
        cached = store.get(job) if store is not None else None
        if cached is not None:
            outcomes[job] = cached
            tracker.record(job, cached=True, worker=backend.worker_id)
        else:
            pending.append(job)

    if pending:
        outcomes.update(
            backend.run_pending(pending, store=store, report=tracker.record)
        )
    return outcomes
