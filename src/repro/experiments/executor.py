"""Pluggable execution backends for trial jobs, with progress and caching.

Every :class:`~repro.experiments.jobs.TrialJob` is a pure function of its own
fields, so an executor is free to run jobs in any order and on any worker:
the result map is keyed by job, and the assembled
:class:`~repro.experiments.runner.SweepResults` is bit-identical whichever
backend ran it.  :func:`execute_jobs` is the single entry point; the *how* is
a :class:`SweepBackend` strategy:

* :class:`SerialBackend` runs jobs in order in the calling process (the
  legacy ``run_sweep`` behaviour; ``workers <= 1``);
* :class:`ProcessPoolBackend` fans jobs out over a ``ProcessPoolExecutor``
  with bounded workers, collecting results as they complete
  (``workers > 1``);
* :class:`~repro.experiments.distributed.DistributedBackend` (own module)
  work-steals cells from a shared store via lease files, so N processes on N
  hosts cooperate on one sweep.

An optional :class:`~repro.experiments.store.ResultsStore` makes any backend
persistent and resumable: completed cells are loaded instead of re-run, and
every fresh result is written to disk the moment it arrives, so an
interrupted sweep loses at most the cells in flight.

A sweep must also survive its *cells* failing.  :class:`FaultPolicy` bounds
each trial with a wall-clock watchdog and retries transient errors with
exponential backoff; a cell that still cannot complete is *quarantined* — a
structured :class:`~repro.experiments.store.FailureRecord` is persisted to
the store's ``failures/`` directory and the sweep continues with the other
cells.  :class:`ProcessPoolBackend` extends the same guarantee to worker
*processes*: a pool broken by a killed or crashed worker is rebuilt once
(the crash may be unrelated to any one cell), and if it breaks again the
surviving jobs run isolated in single-worker pools so exactly the poisonous
cell is quarantined while every other cell completes.

Progress is reported as structured :class:`ExecutionProgress` events
(completed/total, cache hit or fresh run or quarantined failure, wall-clock
elapsed, a simple ETA and — for distributed runs — the reporting worker's
identity) rather than print statements, so the CLI, the benchmark harness
and tests can each render or inspect them as they like.
"""

from __future__ import annotations

import importlib
import os
import threading
import time
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..protocols import protocol_factory
from ..sim.network import run_trial
from ..sim.stats import TrialSummary
from .jobs import TrialJob
from .store import FailureRecord, ResultsStore

__all__ = [
    "ExecutionProgress",
    "FaultPolicy",
    "ProcessPoolBackend",
    "RUN_HOOK_ENV",
    "SerialBackend",
    "SweepBackend",
    "TrialHang",
    "execute_jobs",
    "resolve_run_hook",
    "run_job",
    "run_job_guarded",
]

#: Observer of one completed (or cache-loaded, or quarantined) job.
ProgressListener = Callable[["ExecutionProgress"], None]

#: How a backend reports one finished job to the tracker:
#: ``report(job, cached=..., worker=..., failed=...)``.
CompletionReporter = Callable[..., None]

#: Environment variable naming a ``module:function`` trial hook.  The chaos
#: tests (and the CI chaos-smoke job) point it at a wrapper that crashes or
#: hangs selected cells; unset, trials run :func:`run_job` directly.
RUN_HOOK_ENV = "REPRO_RUN_HOOK"

#: Lines of traceback kept in a failure record — enough to diagnose, small
#: enough that a store full of quarantined cells stays readable.
_TRACEBACK_TAIL_LINES = 15


class TrialHang(RuntimeError):
    """A trial exceeded its wall-clock watchdog and was abandoned."""


@dataclass(frozen=True, slots=True)
class FaultPolicy:
    """How a backend treats a cell that hangs or raises.

    ``timeout`` is a per-trial wall-clock watchdog in seconds (``None``
    disables it); ``retries`` bounds how many times a failing trial is
    re-attempted; ``backoff`` seeds the exponential delay between attempts
    (``backoff * 2**(attempt-1)`` seconds before retry ``attempt``).  The
    policy is picklable, so pool workers enforce it locally.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")


@dataclass(frozen=True, slots=True)
class ExecutionProgress:
    """One structured progress event: a job just finished (or was loaded,
    or was quarantined after exhausting its fault policy)."""

    job: TrialJob
    completed: int  #: jobs done so far, cached and quarantined cells included
    total: int  #: jobs in this sweep
    cached: bool  #: True when the result came from the store, not a run
    elapsed: float  #: wall-clock seconds since execute_jobs started
    eta: Optional[float]  #: estimated seconds remaining (None until measurable)
    worker: Optional[str] = None  #: reporting worker's id (distributed runs)
    failed: bool = False  #: True when the job was quarantined, not completed

    @property
    def fraction(self) -> float:
        """Completed fraction in [0, 1]."""
        return self.completed / self.total if self.total else 1.0


def run_job(job: TrialJob) -> TrialSummary:
    """Run one trial job to completion (the process-pool worker function).

    The ``processes`` engine backend is dispatched here — the one seam
    where the protocol *name* (not a factory closure) and the whole trial
    are both in hand — so sweeps launched under
    ``REPRO_ENGINE_BACKEND=processes`` fan each trial out across shard
    worker processes (:func:`repro.sim.pdes.run_trial_sharded_processes`:
    exact radio-group mode under the default PHY, windowed barrier
    exchange under a finite propagation delay).
    """
    from ..sim.tuning import EngineTuning

    tuning = EngineTuning.from_env()
    if tuning.engine_backend == "processes":
        from ..sim.pdes import run_trial_sharded_processes

        report = run_trial_sharded_processes(
            job.scenario,
            job.protocol,
            static_positions=False,
            tuning=tuning,
        )
        return report.summary
    return run_trial(job.scenario, protocol_factory(job.protocol))


def resolve_run_hook(spec: Optional[str] = None) -> Callable[[TrialJob], TrialSummary]:
    """The trial function to use: ``spec`` (or ``$REPRO_RUN_HOOK``) as
    ``module:function``, else :func:`run_job`.

    The hook must be a module-level callable taking a job and returning a
    summary — module-level so pool workers can pick it up by name.  Chaos
    tests use it to make chosen cells crash, hang or fail N times without
    patching any production path.
    """
    if spec is None:
        spec = os.environ.get(RUN_HOOK_ENV)
    if not spec:
        return run_job
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"run hook {spec!r} is not of the form 'module:function'"
        )
    return getattr(importlib.import_module(module_name), attr)


def _run_with_watchdog(
    run: Callable[[TrialJob], TrialSummary], job: TrialJob, timeout: float
) -> TrialSummary:
    """``run(job)`` bounded by ``timeout`` wall-clock seconds.

    The trial runs on a daemon thread; a hang past the deadline raises
    :class:`TrialHang` in the caller and abandons the thread (daemon threads
    die with the worker process, so a hung simulation cannot wedge a sweep —
    at worst it burns one core until its process retires).
    """
    outcome: Dict[str, object] = {}

    def target() -> None:
        try:
            outcome["summary"] = run(job)
        except BaseException as exc:  # re-raised on the caller's thread
            outcome["error"] = exc

    thread = threading.Thread(
        target=target, name=f"trial-{job.content_key[:8]}", daemon=True
    )
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise TrialHang(
            f"trial {job.cell_label} exceeded the {timeout:g}s wall-clock watchdog"
        )
    if "error" in outcome:
        raise outcome["error"]  # type: ignore[misc]
    return outcome["summary"]  # type: ignore[return-value]


def _failure_record(
    job: TrialJob,
    exc: BaseException,
    *,
    attempts: int,
    worker: Optional[str],
    elapsed: float,
    recorded_at: float,
) -> FailureRecord:
    """A quarantine document for ``job``: what failed, how, after how long."""
    tail = traceback.format_exception(type(exc), exc, exc.__traceback__)
    trace = "".join(tail)
    lines = trace.splitlines()
    if len(lines) > _TRACEBACK_TAIL_LINES:
        lines = ["..."] + lines[-_TRACEBACK_TAIL_LINES:]
    return FailureRecord(
        key=job.content_key,
        error=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
        cell=job.cell_dict(),
        worker=worker,
        elapsed=elapsed,
        recorded_at=recorded_at,
        traceback="\n".join(lines),
    )


def run_job_guarded(
    job: TrialJob,
    *,
    policy: FaultPolicy,
    run: Optional[Callable[[TrialJob], TrialSummary]] = None,
    worker: Optional[str] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.time,
) -> Tuple[Optional[TrialSummary], Optional[FailureRecord]]:
    """Run ``job`` under ``policy``; ``(summary, None)`` or ``(None, failure)``.

    Each attempt is bounded by the policy's watchdog; an attempt that raises
    (or hangs) is retried up to ``policy.retries`` times with exponential
    backoff.  ``KeyboardInterrupt``/``SystemExit`` propagate — operator
    intent is never converted into a quarantined cell.  ``sleep`` and
    ``clock`` are injectable so tests assert the backoff sequence without
    waiting through it.
    """
    if run is None:
        run = resolve_run_hook()
    started = time.monotonic()
    failure: Optional[FailureRecord] = None
    for attempt in range(policy.retries + 1):
        if attempt:
            sleep(policy.backoff * 2 ** (attempt - 1))
        try:
            if policy.timeout is not None:
                return _run_with_watchdog(run, job, policy.timeout), None
            return run(job), None
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            failure = _failure_record(
                job,
                exc,
                attempts=attempt + 1,
                worker=worker,
                elapsed=time.monotonic() - started,
                recorded_at=clock(),
            )
    return None, failure


def _pool_run_job(
    job: TrialJob,
    policy: Optional[FaultPolicy] = None,
    run_spec: Optional[str] = None,
) -> Tuple[TrialJob, Optional[TrialSummary], Optional[FailureRecord]]:
    """Worker wrapper: run guarded, return the job with its outcome.

    Futures complete out of submission order, so each result carries its own
    identity; and a raising trial comes back as a *tagged failure record*,
    never as an exception through the future — one bad cell must not abort
    the pool's whole ``run_pending`` pass.
    """
    policy = policy if policy is not None else FaultPolicy()
    summary, failure = run_job_guarded(
        job, policy=policy, run=resolve_run_hook(run_spec)
    )
    return job, summary, failure


def _settle_outcome(
    job: TrialJob,
    summary: Optional[TrialSummary],
    failure: Optional[FailureRecord],
    outcomes: Dict[TrialJob, TrialSummary],
    *,
    store: Optional[ResultsStore],
    report: CompletionReporter,
    worker: Optional[str] = None,
) -> None:
    """Persist and report one finished job: a completed cell into the store
    and the outcome map, a failed one into quarantine."""
    if summary is not None:
        if store is not None:
            store.put(job, summary)
        outcomes[job] = summary
        report(job, cached=False, worker=worker)
        return
    if store is not None and failure is not None:
        store.put_failure(failure)
    report(job, cached=False, worker=worker, failed=True)


class _ProgressTracker:
    """Counts completions and derives ETA from the fresh-run rate only
    (cached cells are effectively free and would skew the estimate)."""

    def __init__(self, total: int, listener: Optional[ProgressListener]) -> None:
        self.total = total
        self.listener = listener
        self.completed = 0
        self.fresh_done = 0
        self.failed = 0
        self.started = time.monotonic()

    def record(
        self,
        job: TrialJob,
        *,
        cached: bool,
        worker: Optional[str] = None,
        failed: bool = False,
    ) -> None:
        self.completed += 1
        if failed:
            self.failed += 1
        elif not cached:
            self.fresh_done += 1
        if self.listener is None:
            return
        elapsed = time.monotonic() - self.started
        eta: Optional[float] = None
        remaining = self.total - self.completed
        if self.fresh_done > 0 and remaining > 0:
            eta = elapsed / self.fresh_done * remaining
        elif remaining == 0:
            eta = 0.0
        self.listener(
            ExecutionProgress(
                job=job,
                completed=self.completed,
                total=self.total,
                cached=cached,
                elapsed=elapsed,
                eta=eta,
                worker=worker,
                failed=failed,
            )
        )


class SweepBackend(ABC):
    """Strategy for running the pending (not-yet-stored) jobs of a sweep.

    :func:`execute_jobs` handles the store cache skim and progress
    accounting; a backend only decides *how* the remaining jobs run.  The
    contract every implementation must keep: settle **every** job it was
    given — completing it (running it, or — for cooperative backends —
    loading a cell some other process completed) or quarantining it with a
    persisted failure record — persist fresh results to ``store`` as they
    arrive, and call ``report(job, cached=..., worker=..., failed=...)``
    exactly once per job.  Quarantined jobs are absent from the returned
    map; their failure records live in the store.
    """

    #: The identity this backend reports in progress events; ``None`` for
    #: anonymous local backends, the worker id for distributed ones (also
    #: stamped onto the cache-skim events ``execute_jobs`` itself emits).
    worker_id: Optional[str] = None

    @abstractmethod
    def run_pending(
        self,
        jobs: Sequence[TrialJob],
        *,
        store: Optional[ResultsStore],
        report: CompletionReporter,
    ) -> Dict[TrialJob, TrialSummary]:
        """Settle every job; ``{job: summary}`` for the completed ones."""


class SerialBackend(SweepBackend):
    """Run jobs one after another in the calling process."""

    def __init__(
        self,
        *,
        policy: Optional[FaultPolicy] = None,
        run: Optional[Callable[[TrialJob], TrialSummary]] = None,
    ) -> None:
        self.policy = policy if policy is not None else FaultPolicy()
        self.run = run

    def run_pending(
        self,
        jobs: Sequence[TrialJob],
        *,
        store: Optional[ResultsStore],
        report: CompletionReporter,
    ) -> Dict[TrialJob, TrialSummary]:
        outcomes: Dict[TrialJob, TrialSummary] = {}
        run = self.run if self.run is not None else resolve_run_hook()
        for job in jobs:
            summary, failure = run_job_guarded(job, policy=self.policy, run=run)
            _settle_outcome(
                job, summary, failure, outcomes, store=store, report=report
            )
        return outcomes


class ProcessPoolBackend(SweepBackend):
    """Fan jobs out over a bounded ``ProcessPoolExecutor``.

    Trial-level faults (exceptions, watchdog hangs) are handled inside each
    worker by :func:`run_job_guarded` and come back as tagged failure
    records.  Worker-*process* death (SIGKILL, interpreter abort,
    ``MemoryError`` escalated by the OS) breaks the whole pool — every
    outstanding future raises ``BrokenProcessPool`` and the culprit cell is
    unknowable.  The recovery ladder: rebuild the pool once and re-run the
    unsettled jobs (pure functions; a transient crash costs only repeated
    work), and if the rebuilt pool breaks too, run each remaining job in its
    own single-worker pool, so the job whose worker dies is quarantined as
    ``WorkerCrashed`` while every other cell completes.
    """

    def __init__(
        self,
        workers: int,
        *,
        policy: Optional[FaultPolicy] = None,
        run_spec: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.policy = policy if policy is not None else FaultPolicy()
        # Captured at construction so the hook survives into pool workers
        # even under a spawn start method (no env inheritance assumptions).
        self.run_spec = (
            run_spec if run_spec is not None else os.environ.get(RUN_HOOK_ENV)
        )

    def run_pending(
        self,
        jobs: Sequence[TrialJob],
        *,
        store: Optional[ResultsStore],
        report: CompletionReporter,
    ) -> Dict[TrialJob, TrialSummary]:
        outcomes: Dict[TrialJob, TrialSummary] = {}
        pending: Dict[str, TrialJob] = {job.content_key: job for job in jobs}

        def settle(
            job: TrialJob,
            summary: Optional[TrialSummary],
            failure: Optional[FailureRecord],
        ) -> None:
            pending.pop(job.content_key, None)
            _settle_outcome(
                job, summary, failure, outcomes, store=store, report=report
            )

        rebuilt = False
        while pending:
            try:
                self._drain_pool(list(pending.values()), settle)
                break
            except BrokenProcessPool:
                if rebuilt:
                    # Two dead pools: stop amortising, isolate the culprit.
                    self._run_isolated(list(pending.values()), settle)
                    break
                rebuilt = True
        return outcomes

    def _drain_pool(
        self,
        jobs: Sequence[TrialJob],
        settle: Callable[
            [TrialJob, Optional[TrialSummary], Optional[FailureRecord]], None
        ],
    ) -> None:
        """One shared pool over ``jobs``, settling results as they land.

        Raises ``BrokenProcessPool`` when a worker process dies; jobs whose
        results were not settled before the crash stay pending (a done
        future skipped by the raise merely re-runs its pure job later).
        """
        max_workers = min(self.workers, len(jobs)) or 1
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_pool_run_job, job, self.policy, self.run_spec): job
                for job in jobs
            }
            while futures:
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    job = futures.pop(future)
                    _, summary, failure = future.result()
                    settle(job, summary, failure)

    def _run_isolated(
        self,
        jobs: Sequence[TrialJob],
        settle: Callable[
            [TrialJob, Optional[TrialSummary], Optional[FailureRecord]], None
        ],
    ) -> None:
        """Last-resort pass: each job in its own single-worker pool, so a
        worker death is attributable to exactly one cell."""
        for job in jobs:
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    _, summary, failure = pool.submit(
                        _pool_run_job, job, self.policy, self.run_spec
                    ).result()
            except BrokenProcessPool:
                summary = None
                failure = FailureRecord(
                    key=job.content_key,
                    error="WorkerCrashed",
                    message=(
                        "worker process died (killed or crashed) while "
                        f"running {job.cell_label}"
                    ),
                    attempts=1,
                    cell=job.cell_dict(),
                    recorded_at=time.time(),
                )
            settle(job, summary, failure)


def execute_jobs(
    jobs: Sequence[TrialJob],
    *,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
    progress: Optional[ProgressListener] = None,
    backend: Optional[SweepBackend] = None,
    policy: Optional[FaultPolicy] = None,
) -> Dict[TrialJob, TrialSummary]:
    """Run every job, returning ``{job: summary}`` for the completed cells.

    With a ``store``, cells already on disk are loaded (reported as
    ``cached=True`` progress events) and fresh results are persisted as they
    complete.  ``backend`` picks the execution strategy explicitly; when
    omitted, ``workers`` selects :class:`SerialBackend` (``<= 1``) or
    :class:`ProcessPoolBackend`, both built with ``policy`` (watchdog /
    retries / quarantine; default: fail fast with no watchdog).  Cells that
    exhaust the policy are quarantined — persisted as failure records,
    reported as ``failed=True`` events, absent from the returned map — and
    the rest of the sweep completes.  Results are independent of the backend
    and of completion order: at fixed seeds the returned map is
    bit-identical across the serial path, the pool path, distributed
    workers and the legacy monolithic loop.
    """
    if backend is None:
        backend = (
            SerialBackend(policy=policy)
            if workers <= 1
            else ProcessPoolBackend(workers, policy=policy)
        )
    tracker = _ProgressTracker(len(jobs), progress)
    outcomes: Dict[TrialJob, TrialSummary] = {}

    pending: List[TrialJob] = []
    for job in jobs:
        cached = store.get(job) if store is not None else None
        if cached is not None:
            outcomes[job] = cached
            tracker.record(job, cached=True, worker=backend.worker_id)
        else:
            pending.append(job)

    if pending:
        outcomes.update(
            backend.run_pending(pending, store=store, report=tracker.record)
        )
    return outcomes
