"""Abstract Split Label Routing (Section II of the paper).

This module implements the *generic* SLR route-computation machinery over any
:class:`~repro.core.labels.DenseLabelSet`: the per-destination node state
(label, successor table, cached predecessor minimum), the request / reply
relabelling rules of Section II, and a small synchronous network model that
replays route computations over an undirected connectivity graph.  It is the
executable form of Examples 1 and 2 and of Theorems 1–4, independent of any
packet format, MAC layer or timing — the full asynchronous protocol (SRP) lives
in :mod:`repro.protocols.srp` and runs inside the discrete-event simulator.

The synchronous model is deliberately simple: a request floods hop by hop
carrying the running minimum label ``M``; the first node able to reply
(the destination, or a node with a feasible label and a non-empty successor
set) issues an advertisement that walks back along the reverse path, each hop
choosing a new label per Definition 1 (splitting the cached ``M`` and the
advertised label when necessary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

import networkx as nx

from .invariants import (
    build_successor_graph,
    find_label_violations,
    maintains_order,
    successor_graph_is_loop_free,
)
from .labels import DenseLabelSet, LabelSplitError

__all__ = [
    "SlrNodeState",
    "SlrRouteComputation",
    "SlrNetwork",
    "RouteComputationResult",
]

L = TypeVar("L")
NodeId = Hashable


@dataclass
class SlrNodeState(Generic[L]):
    """Per-destination SLR state at one node.

    ``label`` is ``L_i``; ``successor_labels`` is the table ``S_i`` mapping
    each successor to the label it advertised; ``cached_minimum`` is ``M_i``,
    the minimum predecessor label cached from the most recent request this
    node relayed.
    """

    label: L
    successor_labels: Dict[NodeId, L] = field(default_factory=dict)
    cached_minimum: Optional[L] = None
    reply_last_hop: Optional[NodeId] = None

    def successor_maximum(self, label_set: DenseLabelSet[L]) -> Optional[L]:
        """``S_max`` — the greatest label among current successors, if any."""
        if not self.successor_labels:
            return None
        return label_set.maximum(self.successor_labels.values())

    @property
    def has_route(self) -> bool:
        """True when the successor table is non-empty (an *active* route)."""
        return bool(self.successor_labels)


@dataclass(frozen=True, slots=True)
class RouteComputationResult:
    """Outcome of one request/reply pass through :class:`SlrRouteComputation`."""

    succeeded: bool
    replier: Optional[NodeId]
    request_path: Tuple[NodeId, ...]
    reply_path: Tuple[NodeId, ...]
    relabelled: Tuple[NodeId, ...]


class SlrNetwork(Generic[L]):
    """A set of SLR nodes sharing one destination and one dense label set.

    The network holds per-node state for a *single* destination (the paper
    considers one arbitrary destination; a routing protocol runs one instance
    per destination).  The connectivity graph is supplied per computation so
    tests can model topology changes between route requests (Example 2 adds
    nodes F, G, H after the initial DAG of Example 1 exists).
    """

    def __init__(
        self,
        label_set: DenseLabelSet[L],
        destination: NodeId,
        *,
        destination_label: Optional[L] = None,
    ) -> None:
        self._label_set = label_set
        self._destination = destination
        self._states: Dict[NodeId, SlrNodeState[L]] = {}
        initial = (
            destination_label if destination_label is not None else label_set.least()
        )
        if label_set.is_greatest(initial):
            raise ValueError("the destination may take any label except the greatest")
        self._states[destination] = SlrNodeState(label=initial)

    # -- accessors -----------------------------------------------------------

    @property
    def label_set(self) -> DenseLabelSet[L]:
        """The dense ordinal set labelling this network."""
        return self._label_set

    @property
    def destination(self) -> NodeId:
        """The destination all labels order toward."""
        return self._destination

    def state(self, node: NodeId) -> SlrNodeState[L]:
        """The node's state, creating unassigned state on first access."""
        if node not in self._states:
            self._states[node] = SlrNodeState(label=self._label_set.greatest())
        return self._states[node]

    def label(self, node: NodeId) -> L:
        """The node's current label (the greatest element when unassigned)."""
        return self.state(node).label

    def labels(self) -> Dict[NodeId, L]:
        """Snapshot of every known node's label."""
        return {node: state.label for node, state in self._states.items()}

    def successors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """The node's current successor set for the destination."""
        return tuple(self.state(node).successor_labels)

    def successor_graph(self) -> nx.DiGraph:
        """The successor digraph over all known nodes."""
        return build_successor_graph(
            {node: state.successor_labels for node, state in self._states.items()}
        )

    # -- invariants ------------------------------------------------------------

    def is_loop_free(self) -> bool:
        """Theorem 3 check: the successor graph is acyclic."""
        return successor_graph_is_loop_free(self.successor_graph())

    def is_topologically_ordered(self) -> bool:
        """Every successor edge points from a larger label to a smaller one."""
        graph = self.successor_graph()
        return not find_label_violations(graph, self.labels(), self._label_set)

    # -- topology events -------------------------------------------------------

    def fail_link(self, node: NodeId, successor: NodeId) -> None:
        """Remove a successor link, e.g. after a link-layer loss report."""
        self.state(node).successor_labels.pop(successor, None)

    def clear_successors(self, node: NodeId) -> None:
        """Invalidate the node's route (empty successor set); label is kept,
        as Definition 3 requires labels to be cached after routes go invalid."""
        self.state(node).successor_labels.clear()

    # -- route computation -----------------------------------------------------

    def compute_route(
        self,
        origin: NodeId,
        graph: nx.Graph,
        *,
        request_path: Optional[Sequence[NodeId]] = None,
    ) -> RouteComputationResult:
        """Run one request/reply computation from ``origin`` toward the destination.

        If ``request_path`` is given it must be a simple path starting at
        ``origin``; otherwise the request follows a breadth-first flood and the
        reply returns along the tree branch that first reached a node able to
        answer.  Returns a :class:`RouteComputationResult`; on success every
        node along the reply path holds a feasible successor toward the
        destination and all invariants are preserved.
        """
        computation = SlrRouteComputation(self, graph)
        if request_path is not None:
            return computation.run_on_path(list(request_path))
        return computation.run_flood(origin)


class SlrRouteComputation(Generic[L]):
    """One request/reply pass over an :class:`SlrNetwork` (Section II rules)."""

    def __init__(self, network: SlrNetwork[L], graph: nx.Graph) -> None:
        self._network = network
        self._graph = graph
        self._label_set = network.label_set

    # -- request phase ---------------------------------------------------------

    def run_flood(self, origin: NodeId) -> RouteComputationResult:
        """Flood the request breadth-first and reply along the discovered branch."""
        if origin not in self._graph:
            raise ValueError(f"origin {origin!r} is not in the connectivity graph")
        label_set = self._label_set
        network = self._network
        origin_label = network.label(origin)

        # Breadth-first propagation; each node processes the request once,
        # caching the running minimum M and the last hop for the reverse path.
        minimum_at: Dict[NodeId, L] = {origin: origin_label}
        parent: Dict[NodeId, Optional[NodeId]] = {origin: None}
        frontier: List[NodeId] = [origin]
        replier: Optional[NodeId] = None

        while frontier and replier is None:
            next_frontier: List[NodeId] = []
            for node in frontier:
                request_label = minimum_at[node]
                for neighbor in self._graph.neighbors(node):
                    if neighbor in parent:
                        continue
                    parent[neighbor] = node
                    state = network.state(neighbor)
                    state.cached_minimum = request_label
                    state.reply_last_hop = node
                    minimum_at[neighbor] = label_set.minimum(
                        [request_label, state.label]
                    )
                    if self._can_reply(neighbor, request_label):
                        replier = neighbor
                        break
                    next_frontier.append(neighbor)
                if replier is not None:
                    break
            frontier = next_frontier

        request_nodes = tuple(parent)
        if replier is None:
            return RouteComputationResult(False, None, request_nodes, (), ())

        reply_path = self._reverse_path(replier, parent)
        relabelled = self._run_reply(reply_path)
        return RouteComputationResult(
            True, replier, request_nodes, tuple(reply_path), relabelled
        )

    def run_on_path(self, path: List[NodeId]) -> RouteComputationResult:
        """Run the computation along an explicit request path ``v_k .. v_0``.

        The last element must be able to reply (it is the destination or has a
        feasible label with an active route); this mirrors the hop-by-hop
        narrative of Examples 1 and 2.
        """
        if len(path) < 2:
            raise ValueError("a request path needs at least two nodes")
        label_set = self._label_set
        network = self._network

        minimum = network.label(path[0])
        for previous, node in zip(path, path[1:]):
            state = network.state(node)
            state.cached_minimum = minimum
            state.reply_last_hop = previous
            if self._can_reply(node, minimum):
                reply_path = list(reversed(path[: path.index(node) + 1]))
                relabelled = self._run_reply(reply_path)
                return RouteComputationResult(
                    True, node, tuple(path), tuple(reply_path), relabelled
                )
            minimum = label_set.minimum([minimum, state.label])
        return RouteComputationResult(False, None, tuple(path), (), ())

    # -- reply phase -------------------------------------------------------------

    def _run_reply(self, reply_path: Sequence[NodeId]) -> Tuple[NodeId, ...]:
        """Walk the advertisement along ``reply_path`` (replier first).

        Each hop applies Definition 1: keep the current label when it already
        satisfies the cached minimum, otherwise split the advertised label and
        the cached minimum (or take the next-element when unconstrained).
        """
        label_set = self._label_set
        network = self._network
        relabelled: List[NodeId] = []

        advertiser = reply_path[0]
        advertised = network.label(advertiser)

        for node in reply_path[1:]:
            state = network.state(node)
            cached_minimum = (
                state.cached_minimum
                if state.cached_minimum is not None
                else label_set.greatest()
            )
            if not label_set.less(advertised, state.label):
                # Infeasible advertisement at this hop: if the node still has a
                # route it could re-advertise its own label; in the synchronous
                # model we simply stop the reply here.
                break
            new_label = self._choose_label(state, cached_minimum, advertised)
            if new_label is None:
                break
            if not label_set.equal(new_label, state.label):
                relabelled.append(node)
            state.label = new_label
            state.successor_labels[advertiser] = advertised
            # Drop successors the new label can no longer keep in order (Eq. 6).
            for successor, successor_label in list(state.successor_labels.items()):
                if not label_set.less(successor_label, new_label):
                    del state.successor_labels[successor]
            advertiser = node
            advertised = new_label
        return tuple(relabelled)

    def _choose_label(
        self, state: SlrNodeState[L], cached_minimum: L, advertised: L
    ) -> Optional[L]:
        """Pick ``G`` per Definition 1, or ``None`` when no label exists."""
        label_set = self._label_set
        successor_maximum = state.successor_maximum(label_set)

        def acceptable(candidate: L) -> bool:
            # Definition 1 requires a *finite* new label (G < the greatest
            # element); Eq. 6 is handled by dropping out-of-order successors
            # after relabelling, as Theorem 4's proof allows.
            if label_set.is_greatest(candidate):
                return False
            return maintains_order(
                label_set,
                candidate,
                current_label=state.label,
                predecessor_minimum=cached_minimum,
                advertised_label=advertised,
                successor_maximum=None,
            )

        # Keep the current label when it already maintains order (Example 2:
        # nodes G and H keep 2/3 and 3/4).
        if acceptable(state.label):
            return state.label

        upper = state.label
        if label_set.less(cached_minimum, upper):
            upper = cached_minimum
        try:
            if label_set.is_greatest(upper):
                candidate = label_set.next_element(advertised)
                if not label_set.less(candidate, upper):
                    candidate = label_set.split(advertised, upper)
            else:
                candidate = label_set.split(advertised, upper)
        except (LabelSplitError, ValueError):
            return None
        return candidate if acceptable(candidate) else None

    # -- helpers ------------------------------------------------------------------

    def _can_reply(self, node: NodeId, request_label: L) -> bool:
        """The destination always replies; other nodes need a feasible label
        (strictly below the request minimum) and an active route."""
        network = self._network
        if node == network.destination:
            return True
        state = network.state(node)
        return state.has_route and self._label_set.less(state.label, request_label)

    @staticmethod
    def _reverse_path(
        replier: NodeId, parent: Dict[NodeId, Optional[NodeId]]
    ) -> List[NodeId]:
        path = [replier]
        node = replier
        while parent[node] is not None:
            node = parent[node]
            path.append(node)
        return path
