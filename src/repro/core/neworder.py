"""Algorithm 1 of the paper: NEWORDER — choose a node's new SRP ordering.

When node ``A`` receives a feasible advertisement ``?`` for destination ``T``
(Procedure 3, "Set Route"), it computes a new ordering ``G_A_T`` from

* its own current ordering ``O_A_T``,
* the cached ordering of the corresponding solicitation ``C_A_?`` (the minimum
  predecessor ordering ``M`` of SLR, indexed per (source, rreq-id)), and
* the advertised ordering ``O_?_T``.

The algorithm returns the *unordered* result ``(0, 1/1)`` when no valid label
exists (e.g. a 32-bit overflow of the fraction split), which makes Procedure 3
drop the advertisement — Theorem 6 shows every other return value maintains
order.  When the receiving node is the terminus of the advertisement, or the
advertisement rides in a RREQ / Hello packet that has no cached solicitation,
the caller passes the unassigned ordering as ``C_A_?``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from .fractions import UINT32_MAX
from .ordering import Ordering, UNASSIGNED

__all__ = [
    "NewOrderResult",
    "new_order",
    "new_order_for_rreq_advertisement",
]

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class NewOrderResult:
    """Outcome of Algorithm 1.

    ``ordering`` is the computed label ``G_A_T`` (possibly the unassigned
    sentinel when the advertisement must be dropped).  ``dropped_successors``
    lists successor identifiers that line 13 of the algorithm eliminated
    because they would no longer be in order under the new label.
    ``case`` records which assignment line produced the value, for tests that
    check Theorem 6 case by case.
    """

    ordering: Ordering
    dropped_successors: Tuple[NodeId, ...] = ()
    case: str = "unordered"

    @property
    def is_finite(self) -> bool:
        """True when the advertisement may be accepted (Procedure 3)."""
        return self.ordering.is_finite


def new_order(
    current: Ordering,
    cached_solicitation: Ordering,
    advertised: Ordering,
    successors: Optional[Dict[NodeId, Ordering]] = None,
    *,
    limit: int = UINT32_MAX,
) -> NewOrderResult:
    """Algorithm 1: ``NEWORDER(O_A_T, C_A_?, O_?_T)``.

    Parameters mirror the paper's notation: ``current`` is ``O_A_T``,
    ``cached_solicitation`` is ``C_A_?`` (use :data:`~repro.core.ordering.UNASSIGNED`
    when there is no cached solicitation), and ``advertised`` is ``O_?_T``.
    ``successors`` maps successor identifiers to their stored orderings
    ``S_A_T,i``; entries that the new label cannot keep in order are reported
    as dropped (line 13).

    The function is pure: it never mutates ``successors``.
    """
    successors = successors or {}
    sn_a = current.sequence_number
    sn_c = cached_solicitation.sequence_number
    sn_adv = advertised.sequence_number

    result = UNASSIGNED
    case = "unordered"

    if sn_a < sn_adv:
        if sn_c < sn_adv:
            # Case II (line 5): both the node and its cached predecessor are at
            # an older sequence number, so anything at the advertised sequence
            # number is in order for them; take the next-element O_? + 1/1.
            result = advertised.next_element(limit=None)
            case = "line5"
            if not result.fraction.fits(limit):
                result, case = UNASSIGNED, "overflow"
        elif not advertised.would_overflow_with(cached_solicitation, limit):
            # Case III (line 7): split the advertised fraction with the cached
            # predecessor fraction (same sequence number as the advertisement).
            result = Ordering(
                sn_adv,
                cached_solicitation.fraction.mediant_with(
                    advertised.fraction, limit=limit
                ),
            )
            case = "line7"
        else:
            case = "overflow"
    elif sn_a == sn_adv:
        if cached_solicitation.precedes(current):
            # Case IV (line 10): the node's current label already satisfies the
            # cached predecessor ordering; keep it unchanged.
            result = current
            case = "line10"
        elif not advertised.would_overflow_with(cached_solicitation, limit):
            # Case V (line 12): split toward the advertisement, as in Case III.
            result = Ordering(
                sn_adv,
                cached_solicitation.fraction.mediant_with(
                    advertised.fraction, limit=limit
                ),
            )
            case = "line12"
        else:
            case = "overflow"
    # else: sn_a > sn_adv — the advertisement is stale/infeasible; Case I
    # (line 2) returns the unordered result and Procedure 3 ignores it.

    if not result.is_finite:
        return NewOrderResult(UNASSIGNED, (), case)

    dropped = tuple(
        node
        for node, successor_ordering in successors.items()
        if not result.precedes(successor_ordering)
    )
    return NewOrderResult(result, dropped, case)


def new_order_for_rreq_advertisement(
    current: Ordering,
    advertised: Ordering,
    successors: Optional[Dict[NodeId, Ordering]] = None,
    *,
    limit: int = UINT32_MAX,
) -> NewOrderResult:
    """Algorithm 1 applied to an advertisement carried in a RREQ or Hello.

    Such advertisements have no cached solicitation (Procedure 3 says to use
    ``C_A_? = (0, (1, 1))``, the unassigned ordering, in that case) and a node
    is free to keep its existing label — it only adopts a new one when doing so
    keeps every inequality except Eq. 4, which no longer applies.
    """
    return new_order(
        current, UNASSIGNED, advertised, successors, limit=limit
    )
