"""Dense ordinal label sets for Split Label Routing (Section II of the paper).

SLR is defined over any *dense* ordinal set ``L`` with

* a strict linear order ``<``,
* a greatest element (the label of an unassigned node),
* ideally a least element (the natural label for a destination),
* a next-element operator ``eps+`` with ``eps < eps+``, and
* density: for any two distinct labels there is a label strictly in between.

This module defines the :class:`DenseLabelSet` interface and three concrete
implementations:

* :class:`UnboundedFractionLabelSet` — exact rationals in ``[0, 1]``; the
  idealised set used in Section II's examples and proofs.
* :class:`BoundedFractionLabelSet` — proper fractions with 32-bit fields, the
  set SRP actually uses; splitting raises :class:`LabelSplitError` on overflow
  so the caller can request a path reset.
* :class:`LexicographicLabelSet` — lexicographically ordered strings over a
  finite alphabet, the other dense-set example the introduction mentions
  ("a lexicographically sorted string or a subset of the real numbers").

All sets share the convention that *smaller is closer to the destination*: a
directed edge ``(i, j)`` requires ``label(j) < label(i)``.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Generic, Iterable, TypeVar

from .fractions import (
    UINT32_MAX,
    FractionOverflowError,
    ProperFraction,
)

__all__ = [
    "LabelSplitError",
    "DenseLabelSet",
    "UnboundedFractionLabelSet",
    "BoundedFractionLabelSet",
    "LexicographicLabelSet",
]

L = TypeVar("L")


class LabelSplitError(ArithmeticError):
    """Raised when a label set cannot produce a label inside an open interval.

    For truly dense sets this never happens with valid arguments; for the
    bounded fraction set it signals 32-bit overflow, i.e. the point where SRP
    must fall back to a sequence-number path reset.
    """


class DenseLabelSet(abc.ABC, Generic[L]):
    """Interface every SLR label set implements.

    The operations mirror what the SLR procedures in Section II need: compare
    two labels, obtain the greatest/least element, advance a label with the
    next-element operator, and split (interpolate) strictly between two labels.
    """

    # -- distinguished elements --------------------------------------------

    @abc.abstractmethod
    def greatest(self) -> L:
        """The greatest element — the label of an unassigned node."""

    @abc.abstractmethod
    def least(self) -> L:
        """The least element — the natural label for a destination."""

    # -- order ---------------------------------------------------------------

    @abc.abstractmethod
    def less(self, a: L, b: L) -> bool:
        """Strict order ``a < b`` (a is closer to the destination than b)."""

    def less_equal(self, a: L, b: L) -> bool:
        """``a <= b`` derived from :meth:`less` and :meth:`equal`."""
        return self.less(a, b) or self.equal(a, b)

    @abc.abstractmethod
    def equal(self, a: L, b: L) -> bool:
        """Label equality (by value, not necessarily by representation)."""

    def minimum(self, labels: Iterable[L]) -> L:
        """The least of a non-empty collection of labels."""
        it = iter(labels)
        try:
            best = next(it)
        except StopIteration:
            raise ValueError("minimum() of an empty label collection") from None
        for label in it:
            if self.less(label, best):
                best = label
        return best

    def maximum(self, labels: Iterable[L]) -> L:
        """The greatest of a non-empty collection of labels."""
        it = iter(labels)
        try:
            best = next(it)
        except StopIteration:
            raise ValueError("maximum() of an empty label collection") from None
        for label in it:
            if self.less(best, label):
                best = label
        return best

    # -- construction of new labels ------------------------------------------

    @abc.abstractmethod
    def next_element(self, label: L) -> L:
        """A label strictly greater than ``label`` but still below the greatest.

        Corresponds to the paper's ``eps+`` operator.
        """

    @abc.abstractmethod
    def split(self, low: L, high: L) -> L:
        """A label strictly between ``low`` and ``high`` (requires ``low < high``).

        Raises :class:`LabelSplitError` when the set cannot represent such a
        label (only possible for bounded sets), and :class:`ValueError` when
        the arguments are not strictly ordered.
        """

    # -- shared helpers -------------------------------------------------------

    def _require_ordered(self, low: L, high: L) -> None:
        if not self.less(low, high):
            raise ValueError(f"split requires low < high, got {low!r} and {high!r}")

    def is_greatest(self, label: L) -> bool:
        """True if ``label`` equals the greatest element."""
        return self.equal(label, self.greatest())

    def is_least(self, label: L) -> bool:
        """True if ``label`` equals the least element."""
        return self.equal(label, self.least())


class UnboundedFractionLabelSet(DenseLabelSet[Fraction]):
    """Exact rationals in ``[0, 1]`` — the idealised dense set of Section II.

    Splitting uses the mediant of the (reduced) fractions, so a request/reply
    pass over this set produces exactly the labels of the paper's Example 1
    (``0/1, 1/2, 2/3, 3/4, 4/5, 5/6``) and Example 2.
    """

    def greatest(self) -> Fraction:
        return Fraction(1, 1)

    def least(self) -> Fraction:
        return Fraction(0, 1)

    def less(self, a: Fraction, b: Fraction) -> bool:
        return a < b

    def equal(self, a: Fraction, b: Fraction) -> bool:
        return a == b

    def next_element(self, label: Fraction) -> Fraction:
        if label >= self.greatest():
            raise ValueError("the greatest element has no next-element")
        return Fraction(label.numerator + 1, label.denominator + 1)

    def split(self, low: Fraction, high: Fraction) -> Fraction:
        self._require_ordered(low, high)
        return Fraction(
            low.numerator + high.numerator, low.denominator + high.denominator
        )


class BoundedFractionLabelSet(DenseLabelSet[ProperFraction]):
    """Proper fractions with bounded integer fields — SRP's practical set.

    The bound defaults to 32-bit unsigned, matching the paper.  When a mediant
    would overflow, :meth:`split` and :meth:`next_element` raise
    :class:`LabelSplitError`; SRP reacts by requesting a sequence-number path
    reset rather than producing an out-of-order label.
    """

    def __init__(self, limit: int = UINT32_MAX) -> None:
        if limit < 2:
            raise ValueError("limit must allow at least the fraction 1/2")
        self._limit = limit

    @property
    def limit(self) -> int:
        """The largest value a numerator or denominator may take."""
        return self._limit

    def greatest(self) -> ProperFraction:
        return ProperFraction.one()

    def least(self) -> ProperFraction:
        return ProperFraction.zero()

    def less(self, a: ProperFraction, b: ProperFraction) -> bool:
        return a < b

    def equal(self, a: ProperFraction, b: ProperFraction) -> bool:
        return a == b

    def next_element(self, label: ProperFraction) -> ProperFraction:
        if label.is_one:
            raise ValueError("the greatest element has no next-element")
        try:
            return label.next_element(limit=self._limit)
        except FractionOverflowError as exc:
            raise LabelSplitError(str(exc)) from exc

    def split(self, low: ProperFraction, high: ProperFraction) -> ProperFraction:
        self._require_ordered(low, high)
        try:
            return low.mediant_with(high, limit=self._limit)
        except FractionOverflowError as exc:
            raise LabelSplitError(str(exc)) from exc


class LexicographicLabelSet(DenseLabelSet[str]):
    """Dense labels as strings over the alphabet ``'a'..'z'`` plus sentinels.

    The empty string is the least element and the one-character string ``'~'``
    (which sorts after every lowercase letter) is the greatest.  Interior
    labels are lowercase strings that never end in ``'a'`` — with that
    invariant the order is dense and :meth:`split` can always interpolate by
    the classic fractional-indexing midpoint construction.  This set
    demonstrates that SLR is not tied to fractions ("a lexicographically
    sorted string or a subset of the real numbers", Section I).
    """

    _ALPHABET = "abcdefghijklmnopqrstuvwxyz"
    _GREATEST = "~"

    def greatest(self) -> str:
        return self._GREATEST

    def least(self) -> str:
        return ""

    def less(self, a: str, b: str) -> bool:
        return a < b

    def equal(self, a: str, b: str) -> bool:
        return a == b

    def next_element(self, label: str) -> str:
        if label == self._GREATEST:
            raise ValueError("the greatest element has no next-element")
        return self._midpoint(label, None)

    def split(self, low: str, high: str) -> str:
        self._require_ordered(low, high)
        upper = None if high == self._GREATEST else high
        result = self._midpoint(low, upper)
        if not (low < result and result < high):
            raise LabelSplitError(
                f"unable to split between {low!r} and {high!r}"
            )
        return result

    def _midpoint(self, low: str, high: str | None) -> str:
        """A lowercase string strictly between ``low`` and ``high``.

        ``high is None`` means "no upper bound below the greatest sentinel".
        Precondition: ``low < high`` when ``high`` is given, and ``low`` does
        not end in ``'a'`` (which holds for every label this set produces).
        """
        digits = self._ALPHABET
        if high is not None:
            # Strip the longest common prefix, padding `low` with the smallest
            # letter so "" and "ab" share the prefix "a"; this is what keeps
            # results from ever ending in the smallest letter.
            n = 0
            while n < len(high) and (low[n] if n < len(low) else digits[0]) == high[n]:
                n += 1
            if n > 0:
                return high[:n] + self._midpoint(low[n:], high[n:])
        index_low = digits.index(low[0]) if low else 0
        index_high = digits.index(high[0]) if high is not None else len(digits)
        if index_high - index_low > 1:
            return digits[(index_low + index_high + 1) // 2]
        # The leading letters are consecutive: either borrow the first letter
        # of `high` when it has room to spare, or keep `low`'s first letter and
        # interpolate the tail toward the open upper bound.
        if high is not None and len(high) > 1:
            return high[:1]
        return digits[index_low] + self._midpoint(low[1:], None)
