"""The SRP composite ordering ``O = (sn, F)`` (Section III of the paper).

SRP labels a node's route to a destination with a pair of

* a destination-controlled **sequence number** ``sn`` (the paper uses a 64-bit
  timestamp so it never wraps within a node's lifetime), and
* a **feasible-distance proper fraction** ``F = m/n``.

Definition 5 (Ordering Criteria, "OC") gives the strict ordering ``A ≺ B``
("B is a feasible in-order successor for A"): either B has a *larger* sequence
number, or the sequence numbers are equal and B has a *smaller* fraction.  Note
the reversed sense: fresher sequence numbers supersede everything, and within a
sequence number smaller fractions are closer to the destination.

The unassigned (greatest) ordering is ``(0, 1/1)``; the destination labels
itself ``(sn, 0/1)`` with a non-zero sequence number (Definition 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .fractions import UINT32_MAX, ProperFraction

__all__ = [
    "Ordering",
    "UNASSIGNED",
    "ordering_min",
    "ordering_max",
]


@dataclass(frozen=True, slots=True)
class Ordering:
    """A composite SRP label ``(sequence number, feasible-distance fraction)``.

    The class deliberately does not implement ``<`` / ``>`` with Python's rich
    comparison operators for the *routing* order, because the routing order is
    a strict partial order with a reversed component and silent use of ``<``
    invites mistakes.  Use :meth:`precedes` (the paper's ``≺``) or the
    module-level :func:`ordering_min`.  Equality and hashing compare the raw
    fields (two labels with equal fraction *value* but different terms are
    distinct wire representations but equal orderings; we compare by value).
    """

    sequence_number: int
    fraction: ProperFraction

    def __post_init__(self) -> None:
        if self.sequence_number < 0:
            raise ValueError(
                f"sequence number must be non-negative, got {self.sequence_number}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def unassigned(cls) -> "Ordering":
        """The maximum ordering ``(0, 1/1)`` of an unassigned node."""
        return cls(0, ProperFraction.one())

    @classmethod
    def destination(cls, sequence_number: int) -> "Ordering":
        """The label a destination gives itself: ``(sn, 0/1)`` with ``sn > 0``."""
        if sequence_number <= 0:
            raise ValueError("a destination's sequence number must be non-zero")
        return cls(sequence_number, ProperFraction.zero())

    # -- predicates --------------------------------------------------------

    @property
    def is_unassigned(self) -> bool:
        """True for the greatest element ``(0, 1/1)``."""
        return self.sequence_number == 0 and self.fraction.is_one

    @property
    def is_finite(self) -> bool:
        """True when the fraction is strictly less than ``1/1`` (paper: "finite")."""
        return self.fraction.is_finite

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ordering):
            return NotImplemented
        return (
            self.sequence_number == other.sequence_number
            and self.fraction == other.fraction
        )

    def __hash__(self) -> int:
        return hash((self.sequence_number, self.fraction.as_fraction()))

    # -- the Ordering Criteria (Definition 5) --------------------------------

    def precedes(self, other: "Ordering") -> bool:
        """The paper's ``self ≺ other``: *other* is a feasible in-order successor.

        True iff ``sn_self < sn_other`` (Eq. 7) or the sequence numbers are
        equal and ``F_other < F_self`` (Eq. 8).
        """
        if self.sequence_number < other.sequence_number:
            return True
        if self.sequence_number == other.sequence_number:
            return other.fraction < self.fraction
        return False

    def preceded_by(self, other: "Ordering") -> bool:
        """Convenience: ``other ≺ self``."""
        return other.precedes(self)

    def feasible_successor(self, other: "Ordering") -> bool:
        """Alias for :meth:`precedes`, matching the paper's reading of OC."""
        return self.precedes(other)

    # -- Definition 6: ordering addition ------------------------------------

    def plus_fraction(
        self, addend: ProperFraction, *, limit: int | None = UINT32_MAX
    ) -> "Ordering":
        """``O + p/q`` from Definition 6: mediant the fraction, keep the sn.

        Only defined for finite orderings.  The result is "larger" in the
        routing order than ``self`` whenever ``self.fraction < addend``, which
        is how the next-element ``O + 1/1`` is obtained.
        """
        if not self.is_finite:
            raise ValueError("ordering addition requires a finite ordering")
        return Ordering(
            self.sequence_number,
            self.fraction.mediant_with(addend, limit=limit),
        )

    def next_element(self, *, limit: int | None = UINT32_MAX) -> "Ordering":
        """``O + 1/1`` — the next-element used in Algorithm 1 Case II."""
        return self.plus_fraction(ProperFraction.one(), limit=limit)

    def split_with(
        self, other: "Ordering", *, limit: int | None = UINT32_MAX
    ) -> "Ordering":
        """Mediant-split the fractions of two same-sequence-number orderings.

        This is the core "dense set" insertion: given a feasible advertisement
        ``other`` and this cached predecessor minimum, the relay takes the
        mediant so the new label lies strictly between them (Algorithm 1 Cases
        III and V).  Raises :class:`ValueError` when the sequence numbers
        differ and :class:`FractionOverflowError` on 32-bit overflow.
        """
        if self.sequence_number != other.sequence_number:
            raise ValueError(
                "mediant split requires equal sequence numbers: "
                f"{self.sequence_number} != {other.sequence_number}"
            )
        return Ordering(
            self.sequence_number,
            self.fraction.mediant_with(other.fraction, limit=limit),
        )

    def would_overflow_with(
        self, other: "Ordering", limit: int = UINT32_MAX
    ) -> bool:
        """True when the fraction split with ``other`` would overflow ``limit``."""
        return self.fraction.would_overflow_with(other.fraction, limit)

    # -- presentation --------------------------------------------------------

    def as_tuple(self) -> Tuple[int, int, int]:
        """Wire representation ``(sn, m, n)``."""
        return (self.sequence_number, *self.fraction.as_tuple())

    def __repr__(self) -> str:
        return f"Ordering(sn={self.sequence_number}, F={self.fraction})"


#: The shared unassigned sentinel ``(0, 1/1)``.
UNASSIGNED = Ordering.unassigned()


def ordering_min(a: Ordering, b: Ordering) -> Ordering:
    """The paper's ``min{O_A, O_B}``: returns ``b`` if ``a ≺ b`` else ``a``.

    Because ``≺`` reads "b is a feasible successor of a" — i.e. b is *closer*
    to the destination — the "minimum" of two orderings in the SLR label sense
    is the one closer to the destination.  This is the value a relay places in
    a forwarded solicitation (Eq. 10).
    """
    return b if a.precedes(b) else a


def ordering_max(a: Ordering, b: Ordering) -> Ordering:
    """The counterpart of :func:`ordering_min`: the label farther from the
    destination.  Used when computing ``S_max`` over a successor set."""
    return a if a.precedes(b) else b
