"""Core Split Label Routing machinery: labels, orderings, invariants, SLR.

This package contains the paper's primary contribution, independent of any
simulator or packet format:

* :mod:`repro.core.fractions` — proper-fraction arithmetic (mediant,
  next-element, 32-bit overflow behaviour).
* :mod:`repro.core.labels` — dense ordinal label sets (bounded/unbounded
  fractions, lexicographic strings).
* :mod:`repro.core.ordering` — the SRP composite ordering ``(sn, m/n)`` with
  the Ordering Criteria of Definition 5.
* :mod:`repro.core.invariants` — Definition 1 (maintain order), topological
  order / loop-freedom checks (Theorem 3).
* :mod:`repro.core.neworder` — Algorithm 1.
* :mod:`repro.core.slr` — the abstract SLR route computation of Section II.
* :mod:`repro.core.farey` — Farey/Stern–Brocot interpolation (the paper's
  future-work direction on reduced fractions).
"""

from .fractions import (
    DEFAULT_MAX_DENOMINATOR,
    UINT32_MAX,
    FractionOverflowError,
    ProperFraction,
    fibonacci_split_bound,
    max_split_depth,
    mediant,
    next_element,
)
from .labels import (
    BoundedFractionLabelSet,
    DenseLabelSet,
    LabelSplitError,
    LexicographicLabelSet,
    UnboundedFractionLabelSet,
)
from .neworder import NewOrderResult, new_order, new_order_for_rreq_advertisement
from .ordering import UNASSIGNED, Ordering, ordering_max, ordering_min
from .invariants import (
    OrderViolation,
    check_maintains_order,
    maintains_order,
    ordering_maintains_order,
    successor_graph_is_loop_free,
)
from .slr import RouteComputationResult, SlrNetwork, SlrNodeState, SlrRouteComputation

__all__ = [
    "DEFAULT_MAX_DENOMINATOR",
    "UINT32_MAX",
    "FractionOverflowError",
    "ProperFraction",
    "fibonacci_split_bound",
    "max_split_depth",
    "mediant",
    "next_element",
    "BoundedFractionLabelSet",
    "DenseLabelSet",
    "LabelSplitError",
    "LexicographicLabelSet",
    "UnboundedFractionLabelSet",
    "NewOrderResult",
    "new_order",
    "new_order_for_rreq_advertisement",
    "UNASSIGNED",
    "Ordering",
    "ordering_max",
    "ordering_min",
    "OrderViolation",
    "check_maintains_order",
    "maintains_order",
    "ordering_maintains_order",
    "successor_graph_is_loop_free",
    "RouteComputationResult",
    "SlrNetwork",
    "SlrNodeState",
    "SlrRouteComputation",
]
