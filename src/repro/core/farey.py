"""Stern–Brocot / Farey-tree utilities (the paper's future-work direction).

The conclusion of the paper notes that SRP does not reduce fractions and that
the authors' ongoing work explores interpolating *relatively prime* proper
fractions by walking a Farey tree.  This module implements that machinery so
the repository also covers the forward-looking part of the design:

* walking the Stern–Brocot tree restricted to ``[0, 1]`` (the Farey tree),
* finding the fraction of smallest denominator inside an open interval
  (`simplest_between`), which is the reduced-label interpolation the paper
  wants, and
* encoding/decoding tree paths, plus Farey-sequence enumeration for tests.

All arithmetic is exact; mediants of reduced neighbours are automatically in
lowest terms (a classical Stern–Brocot property the tests verify).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List, Sequence, Tuple

from .fractions import ProperFraction

__all__ = [
    "FareyNode",
    "farey_sequence",
    "simplest_between",
    "stern_brocot_path",
    "fraction_from_path",
    "farey_parents",
    "mediant_is_reduced",
]


@dataclass(frozen=True, slots=True)
class FareyNode:
    """A node in the Farey (Stern–Brocot) tree with its bounding ancestors."""

    value: ProperFraction
    low: ProperFraction
    high: ProperFraction

    def left(self) -> "FareyNode":
        """Descend toward the lower bound (smaller fractions)."""
        child = self.low.mediant_with(self.value, limit=None)
        return FareyNode(child, self.low, self.value)

    def right(self) -> "FareyNode":
        """Descend toward the upper bound (larger fractions)."""
        child = self.value.mediant_with(self.high, limit=None)
        return FareyNode(child, self.value, self.high)

    @classmethod
    def root(cls) -> "FareyNode":
        """The root ``1/2`` of the Farey tree over ``(0, 1)``."""
        low = ProperFraction.zero()
        high = ProperFraction.one()
        return cls(low.mediant_with(high, limit=None), low, high)


def farey_sequence(order: int) -> List[ProperFraction]:
    """The Farey sequence ``F_order``: reduced fractions in ``[0, 1]`` with
    denominator at most ``order``, in increasing value order.

    Uses the classic next-term recurrence, O(|F_order|) time.
    """
    if order < 1:
        raise ValueError("order must be at least 1")
    result: List[ProperFraction] = []
    a, b, c, d = 0, 1, 1, order
    result.append(ProperFraction(a, b))
    while c <= order:
        k = (order + b) // d
        a, b, c, d = c, d, k * c - a, k * d - b
        result.append(ProperFraction(a, b))
    return result


def simplest_between(low: ProperFraction, high: ProperFraction) -> ProperFraction:
    """The reduced fraction with the smallest denominator strictly inside
    ``(low, high)``.

    This is the "relatively prime interpolation" the paper's conclusion asks
    for: instead of the raw mediant (whose terms grow every split), walk the
    Stern–Brocot tree and stop at the first node that falls inside the open
    interval.  The result is always in lowest terms and its denominator is
    minimal among all fractions in the interval.
    """
    if not low < high:
        raise ValueError(f"requires low < high, got {low} and {high}")
    lo = low.as_fraction()
    hi = high.as_fraction()
    # Walk the Stern-Brocot tree over [0, 1].
    left = Fraction(0, 1)
    right = Fraction(1, 1)
    while True:
        mid = Fraction(
            left.numerator + right.numerator, left.denominator + right.denominator
        )
        if mid <= lo:
            left = mid
        elif mid >= hi:
            right = mid
        else:
            return ProperFraction(mid.numerator, mid.denominator)


def stern_brocot_path(value: ProperFraction, max_depth: int = 10_000) -> str:
    """The L/R path from the Farey-tree root ``1/2`` to ``value``.

    ``value`` must be a reduced fraction strictly inside ``(0, 1)``.  The
    returned string contains ``'L'`` (descend toward 0) and ``'R'`` (descend
    toward 1) moves; the empty string denotes the root itself.
    """
    reduced = value.reduced()
    if not (ProperFraction.zero() < reduced < ProperFraction.one()):
        raise ValueError("value must lie strictly between 0/1 and 1/1")
    target = reduced.as_fraction()
    node = FareyNode.root()
    path: List[str] = []
    for _ in range(max_depth):
        current = node.value.as_fraction()
        if current == target:
            return "".join(path)
        if target < current:
            path.append("L")
            node = node.left()
        else:
            path.append("R")
            node = node.right()
    raise ValueError(f"path to {value} exceeds max depth {max_depth}")


def fraction_from_path(path: Sequence[str]) -> ProperFraction:
    """Inverse of :func:`stern_brocot_path`: follow L/R moves from the root."""
    node = FareyNode.root()
    for move in path:
        if move == "L":
            node = node.left()
        elif move == "R":
            node = node.right()
        else:
            raise ValueError(f"invalid move {move!r}; expected 'L' or 'R'")
    return node.value


def farey_parents(value: ProperFraction) -> Tuple[ProperFraction, ProperFraction]:
    """The two Farey neighbours whose mediant is ``value`` (reduced).

    For a reduced fraction ``m/n`` strictly inside ``(0, 1)`` these are the
    tree ancestors bounding it; their mediant reproduces ``m/n`` exactly.
    """
    reduced = value.reduced()
    if not (ProperFraction.zero() < reduced < ProperFraction.one()):
        raise ValueError("value must lie strictly between 0/1 and 1/1")
    target = reduced.as_fraction()
    node = FareyNode.root()
    while node.value.as_fraction() != target:
        if target < node.value.as_fraction():
            node = node.left()
        else:
            node = node.right()
    return node.low, node.high


def mediant_is_reduced(low: ProperFraction, high: ProperFraction) -> bool:
    """True when the mediant of ``low`` and ``high`` is already in lowest terms.

    Holds whenever ``low`` and ``high`` are Farey neighbours (i.e.
    ``|p*n - m*q| == 1``), which is the structural property the Farey-tree
    interpolation exploits.
    """
    m, n = low.as_tuple()
    p, q = high.as_tuple()
    determinant = abs(p * n - m * q)
    mediant = low.mediant_with(high, limit=None)
    return determinant == 1 or mediant.reduced() == mediant


def enumerate_tree(depth: int) -> Iterator[ProperFraction]:
    """Breadth-first enumeration of Farey-tree values down to ``depth`` levels."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    frontier = [FareyNode.root()]
    for _ in range(depth + 1):
        next_frontier: List[FareyNode] = []
        for node in frontier:
            yield node.value
            next_frontier.append(node.left())
            next_frontier.append(node.right())
        frontier = next_frontier
