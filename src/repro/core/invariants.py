"""Order-maintenance invariants and DAG verification (Definition 1, Theorem 3).

Definition 1 of the paper ("Maintain Order") lists four inequalities a node
``i`` must satisfy when picking a new label ``G_i`` in response to an
advertisement ``?`` with cached predecessor minimum ``M_i``:

* Eq. 3 — ``G_i <= L_i``: labels are non-increasing over time, so existing
  predecessors stay in order.
* Eq. 4 — ``G_i < M_i``: the advertisement the node relays remains feasible
  for the rest of the reverse path.
* Eq. 5 — ``L_? < G_i``: the advertised label is strictly below the new
  label, so choosing the advertiser as a successor cannot create a loop
  (the analogue of DUAL's SNC).
* Eq. 6 — ``S_max < G_i``: the new label stays above every retained
  successor's label.

This module provides these checks generically over any
:class:`~repro.core.labels.DenseLabelSet`, the specialised version for SRP
orderings, and graph-level verification used by the test-suite and by the
simulator's optional invariant auditor: a labelled digraph is loop-free iff
its labels are a topological order (Theorem 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Iterable, Mapping, Optional, Tuple, TypeVar

import networkx as nx

from .labels import DenseLabelSet
from .ordering import Ordering

__all__ = [
    "OrderViolation",
    "check_maintains_order",
    "maintains_order",
    "ordering_maintains_order",
    "is_topologically_ordered",
    "find_label_violations",
    "successor_graph_is_loop_free",
]

L = TypeVar("L")
NodeId = Hashable


@dataclass(frozen=True, slots=True)
class OrderViolation:
    """One violated inequality from Definition 1, for diagnostics."""

    equation: int
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        return f"Eq. {self.equation} violated: {self.message}"


def check_maintains_order(
    label_set: DenseLabelSet[L],
    new_label: L,
    *,
    current_label: L,
    predecessor_minimum: L,
    advertised_label: L,
    successor_maximum: Optional[L] = None,
) -> list[OrderViolation]:
    """Evaluate Eqs. 3–6 and return the list of violations (empty = order kept).

    ``successor_maximum`` is ``None`` when the node has no retained successors,
    in which case Eq. 6 is vacuously satisfied (the paper treats an empty
    successor table as having the least element as its maximum).
    """
    violations: list[OrderViolation] = []
    if not label_set.less_equal(new_label, current_label):
        violations.append(
            OrderViolation(3, f"new label {new_label!r} > current {current_label!r}")
        )
    if not label_set.less(new_label, predecessor_minimum):
        violations.append(
            OrderViolation(
                4,
                f"new label {new_label!r} >= predecessor minimum "
                f"{predecessor_minimum!r}",
            )
        )
    if not label_set.less(advertised_label, new_label):
        violations.append(
            OrderViolation(
                5,
                f"advertised label {advertised_label!r} >= new label {new_label!r}",
            )
        )
    if successor_maximum is not None and not label_set.less(
        successor_maximum, new_label
    ):
        violations.append(
            OrderViolation(
                6,
                f"successor maximum {successor_maximum!r} >= new label "
                f"{new_label!r}",
            )
        )
    return violations


def maintains_order(
    label_set: DenseLabelSet[L],
    new_label: L,
    *,
    current_label: L,
    predecessor_minimum: L,
    advertised_label: L,
    successor_maximum: Optional[L] = None,
) -> bool:
    """True when ``new_label`` satisfies all of Eqs. 3–6 (Definition 1)."""
    return not check_maintains_order(
        label_set,
        new_label,
        current_label=current_label,
        predecessor_minimum=predecessor_minimum,
        advertised_label=advertised_label,
        successor_maximum=successor_maximum,
    )


def ordering_maintains_order(
    new_ordering: Ordering,
    *,
    current_ordering: Ordering,
    predecessor_minimum: Ordering,
    advertised_ordering: Ordering,
    successor_maximum: Optional[Ordering] = None,
) -> bool:
    """Definition 1 specialised to SRP's composite ordering.

    In SRP ``A ≺ B`` reads "B is a feasible in-order successor for A", i.e.
    B's label is *smaller* (closer to the destination) in SLR terms.  The four
    label inequalities therefore translate to:

    * Eq. 3 ``G <= L``   ⇔  ``G == L`` or ``L ≺ G``
    * Eq. 4 ``G <  M``   ⇔  ``M ≺ G``
    * Eq. 5 ``L_? < G``  ⇔  ``G ≺ L_?``
    * Eq. 6 ``S_max < G``⇔  ``G ≺ S_max``
    """
    # Eq. 3: G <= L  (new label no greater than current) — in SRP terms the
    # current ordering must consider the new one a feasible (or equal) value:
    eq3 = new_ordering == current_ordering or current_ordering.precedes(new_ordering)
    # Eq. 4: G < M  (strictly below the cached predecessor minimum).
    eq4 = predecessor_minimum.precedes(new_ordering)
    # Eq. 5: L_? < G  (the advertised ordering is strictly below the new one).
    eq5 = new_ordering.precedes(advertised_ordering)
    # Eq. 6: S_max < G  (every retained successor is strictly below).
    eq6 = True
    if successor_maximum is not None:
        eq6 = new_ordering.precedes(successor_maximum)
    return eq3 and eq4 and eq5 and eq6


def is_topologically_ordered(
    graph: nx.DiGraph,
    labels: Mapping[NodeId, L],
    label_set: DenseLabelSet[L],
) -> bool:
    """True iff for every directed edge ``(i, j)``, ``label(j) < label(i)``.

    This is the paper's (reversed-sense) definition of topological order: edges
    point from larger labels toward smaller labels, with the destination at
    the minimum.
    """
    return not find_label_violations(graph, labels, label_set)


def find_label_violations(
    graph: nx.DiGraph,
    labels: Mapping[NodeId, L],
    label_set: DenseLabelSet[L],
) -> list[Tuple[NodeId, NodeId]]:
    """All edges ``(i, j)`` whose labels are *not* strictly decreasing."""
    violations: list[Tuple[NodeId, NodeId]] = []
    for i, j in graph.edges:
        if not label_set.less(labels[j], labels[i]):
            violations.append((i, j))
    return violations


def successor_graph_is_loop_free(graph: nx.DiGraph) -> bool:
    """True when the successor digraph contains no directed cycle.

    Used by tests and the simulation invariant auditor: Theorem 3 states that
    if every node maintains order the successor graph is a DAG, so a cycle
    here indicates a protocol bug.
    """
    return nx.is_directed_acyclic_graph(graph)


def build_successor_graph(
    successors: Mapping[NodeId, Iterable[NodeId]]
) -> nx.DiGraph:
    """Assemble a digraph from a node -> successor-set mapping.

    Every key becomes a vertex even if it currently has no successors, so the
    auditor also sees nodes with invalid routes.
    """
    graph = nx.DiGraph()
    for node, nexthops in successors.items():
        graph.add_node(node)
        for nexthop in nexthops:
            graph.add_edge(node, nexthop)
    return graph


class SuccessorGraphAuditor(Generic[L]):
    """Incrementally tracks per-destination successor graphs and checks them.

    The simulator can attach one auditor per destination; every time a routing
    protocol changes a successor set the auditor re-checks acyclicity and (when
    labels are supplied) the topological-order condition.  Violations are
    collected rather than raised so a long simulation can report every breach.
    """

    def __init__(self, label_set: Optional[DenseLabelSet[L]] = None) -> None:
        self._label_set = label_set
        self._successors: Dict[NodeId, set] = {}
        self._labels: Dict[NodeId, L] = {}
        self.violations: list[str] = []

    def update(
        self,
        node: NodeId,
        successors: Iterable[NodeId],
        label: Optional[L] = None,
    ) -> None:
        """Record the node's new successor set (and label) and re-audit."""
        self._successors[node] = set(successors)
        if label is not None:
            self._labels[node] = label
        self._audit()

    def _audit(self) -> None:
        graph = build_successor_graph(self._successors)
        if not successor_graph_is_loop_free(graph):
            cycle = nx.find_cycle(graph)
            self.violations.append(f"successor cycle detected: {cycle}")
        if self._label_set is not None and self._labels:
            labelled_edges = [
                (i, j)
                for i, j in graph.edges
                if i in self._labels and j in self._labels
            ]
            subgraph = nx.DiGraph(labelled_edges)
            bad = find_label_violations(subgraph, self._labels, self._label_set)
            if bad:
                self.violations.append(f"label order violated on edges: {bad}")

    @property
    def is_clean(self) -> bool:
        """True when no violation has been observed so far."""
        return not self.violations
