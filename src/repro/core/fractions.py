"""Proper-fraction arithmetic used by Split-label Routing Protocol (SRP).

The paper builds its feasible-distance label from *proper fractions* ``m/n``
with ``0 <= m < n`` (plus the two sentinels ``0/1`` and ``1/1``).  Two
operations matter:

* the **mediant** ``(m+p)/(n+q)`` of two fractions ``m/n < p/q``, which always
  lies strictly between them (Eq. 1 of the paper) and is how SRP "splits" the
  ordering between a successor's label and the cached predecessor minimum;
* the **next-element** ``(m+1)/(n+1)`` (Eq. 2), the mediant with ``1/1``, used
  when a node may take any label above an advertisement.

SRP stores numerator and denominator in 32-bit unsigned integers, so the number
of consecutive mediant splits between a fixed pair is bounded (the denominators
grow at least as fast as the Fibonacci sequence; the paper quotes a lower bound
of 45 splits).  This module provides the bounded fraction type with explicit
overflow detection, exactly as the protocol needs, plus helpers used by tests
and by the unbounded SLR label sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Tuple

__all__ = [
    "UINT32_MAX",
    "DEFAULT_MAX_DENOMINATOR",
    "FractionOverflowError",
    "ProperFraction",
    "ZERO",
    "ONE",
    "mediant",
    "next_element",
    "mediant_chain",
    "max_split_depth",
    "fibonacci_split_bound",
]

#: Largest value representable in the 32-bit unsigned fields the paper uses.
UINT32_MAX = 2**32 - 1

#: The paper's MAX_DENOM threshold ("we use a value of one billion"): when an
#: advertisement terminus sees a denominator beyond this it requests a path
#: reset well before 32-bit overflow could corrupt the ordering.
DEFAULT_MAX_DENOMINATOR = 1_000_000_000


class FractionOverflowError(ArithmeticError):
    """Raised when a mediant or next-element would exceed the integer bound.

    SRP never lets this propagate into the routing state: Algorithm 1 returns
    the infinite ordering instead, and Procedure 2 sets the reset-required
    (T) bit in relayed solicitations.  The exception type exists so the lower
    level fraction arithmetic can signal the condition unambiguously.
    """


@dataclass(frozen=True, slots=True)
class ProperFraction:
    """An exact fraction ``numerator/denominator`` with ``0 <= m/n <= 1``.

    Instances are immutable value objects.  Comparison uses exact
    cross-multiplication (Definition 4 of the paper), never floating point.
    The fraction is *not* automatically reduced: the paper explicitly keeps
    the raw mediant terms (fraction reduction is listed as future work), and
    reduction would change the overflow behaviour the protocol depends on.
    Call :meth:`reduced` for a canonical form when needed.
    """

    numerator: int
    denominator: int

    def __post_init__(self) -> None:
        if self.denominator <= 0:
            raise ValueError(
                f"denominator must be positive, got {self.denominator}"
            )
        if self.numerator < 0:
            raise ValueError(f"numerator must be non-negative, got {self.numerator}")
        if self.numerator > self.denominator:
            raise ValueError(
                "fraction must not exceed 1/1: "
                f"got {self.numerator}/{self.denominator}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls) -> "ProperFraction":
        """The destination's label ``0/1`` — the least element."""
        return cls(0, 1)

    @classmethod
    def one(cls) -> "ProperFraction":
        """The unassigned label ``1/1`` — the greatest element."""
        return cls(1, 1)

    @classmethod
    def from_fraction(cls, value: Fraction) -> "ProperFraction":
        """Build from an exact :class:`fractions.Fraction` in ``[0, 1]``."""
        return cls(value.numerator, value.denominator)

    # -- ordering ----------------------------------------------------------

    def _cross(self, other: "ProperFraction") -> Tuple[int, int]:
        return self.numerator * other.denominator, self.denominator * other.numerator

    def __lt__(self, other: "ProperFraction") -> bool:
        lhs, rhs = self._cross(other)
        return lhs < rhs

    def __le__(self, other: "ProperFraction") -> bool:
        lhs, rhs = self._cross(other)
        return lhs <= rhs

    def __gt__(self, other: "ProperFraction") -> bool:
        lhs, rhs = self._cross(other)
        return lhs > rhs

    def __ge__(self, other: "ProperFraction") -> bool:
        lhs, rhs = self._cross(other)
        return lhs >= rhs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProperFraction):
            return NotImplemented
        lhs, rhs = self._cross(other)
        return lhs == rhs

    def __hash__(self) -> int:
        return hash(self.as_fraction())

    # -- value access ------------------------------------------------------

    def as_fraction(self) -> Fraction:
        """Exact value as a :class:`fractions.Fraction` (always reduced)."""
        return Fraction(self.numerator, self.denominator)

    def as_float(self) -> float:
        """Approximate value; for display and plotting only."""
        return self.numerator / self.denominator

    def as_tuple(self) -> Tuple[int, int]:
        """The raw ``(numerator, denominator)`` pair as stored on the wire."""
        return (self.numerator, self.denominator)

    def reduced(self) -> "ProperFraction":
        """Return the equivalent fraction in lowest terms."""
        g = math.gcd(self.numerator, self.denominator)
        if g <= 1:
            return self
        return ProperFraction(self.numerator // g, self.denominator // g)

    # -- predicates --------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        """True for the destination label ``0/1`` (or any equal fraction)."""
        return self.numerator == 0

    @property
    def is_one(self) -> bool:
        """True for the greatest element ``1/1`` (or any equal fraction)."""
        return self.numerator == self.denominator

    @property
    def is_finite(self) -> bool:
        """True when strictly less than ``1/1`` (the paper's "finite" label)."""
        return self.numerator < self.denominator

    def fits(self, limit: int = UINT32_MAX) -> bool:
        """True when both fields fit in ``limit`` (32-bit unsigned by default)."""
        return self.numerator <= limit and self.denominator <= limit

    # -- arithmetic --------------------------------------------------------

    def mediant_with(
        self, other: "ProperFraction", *, limit: int | None = UINT32_MAX
    ) -> "ProperFraction":
        """The mediant of ``self`` and ``other`` (Eq. 1).

        Raises :class:`FractionOverflowError` if either resulting field would
        exceed ``limit``.  Pass ``limit=None`` for unbounded arithmetic.
        """
        num = self.numerator + other.numerator
        den = self.denominator + other.denominator
        if limit is not None and (num > limit or den > limit):
            raise FractionOverflowError(
                f"mediant of {self} and {other} exceeds limit {limit}"
            )
        return ProperFraction(num, den)

    def next_element(self, *, limit: int | None = UINT32_MAX) -> "ProperFraction":
        """The next-element ``(m+1)/(n+1)`` (Eq. 2), the mediant with ``1/1``."""
        return self.mediant_with(ProperFraction(1, 1), limit=limit)

    def would_overflow_with(
        self, other: "ProperFraction", limit: int = UINT32_MAX
    ) -> bool:
        """True if the mediant with ``other`` would not fit in ``limit``.

        Procedure 2 uses this check (on the denominators carried in a
        solicitation and the relay node's own label) to decide whether to set
        the reset-required T bit.
        """
        return (
            self.numerator + other.numerator > limit
            or self.denominator + other.denominator > limit
        )

    def __repr__(self) -> str:
        return f"{self.numerator}/{self.denominator}"


#: Module-level singletons for the two distinguished labels.
ZERO = ProperFraction(0, 1)
ONE = ProperFraction(1, 1)


def mediant(
    low: ProperFraction, high: ProperFraction, *, limit: int | None = UINT32_MAX
) -> ProperFraction:
    """Functional form of :meth:`ProperFraction.mediant_with`.

    The arguments need not be ordered; the mediant is symmetric.  When they are
    ordered (``low < high``) the result lies strictly between them, which is
    the property Eq. 1 relies on.
    """
    return low.mediant_with(high, limit=limit)


def next_element(
    value: ProperFraction, *, limit: int | None = UINT32_MAX
) -> ProperFraction:
    """Functional form of :meth:`ProperFraction.next_element` (Eq. 2)."""
    return value.next_element(limit=limit)


def mediant_chain(
    low: ProperFraction,
    high: ProperFraction,
    count: int,
    *,
    limit: int | None = None,
) -> Iterator[ProperFraction]:
    """Yield ``count`` successive mediants splitting toward ``low``.

    Each step replaces ``high`` with the mediant of the pair, mirroring what
    happens along a reply path where every hop splits the advertised label and
    the cached predecessor minimum.  Useful in tests and in the overflow-depth
    analysis.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    current_high = high
    for _ in range(count):
        current_high = low.mediant_with(current_high, limit=limit)
        yield current_high


def max_split_depth(
    low: ProperFraction, high: ProperFraction, *, limit: int = UINT32_MAX
) -> int:
    """How many times the pair can be split before a field exceeds ``limit``.

    This measures the worst-case repeated split against a fixed lower bound,
    the pattern that grows denominators fastest (Fibonacci-like).  The paper's
    "at least 45" bound corresponds to ``max_split_depth(ZERO, ONE)`` with the
    32-bit limit being >= 45.
    """
    depth = 0
    current_high = high
    while not low.would_overflow_with(current_high, limit):
        current_high = low.mediant_with(current_high, limit=limit)
        depth += 1
    return depth


def fibonacci_split_bound(limit: int = UINT32_MAX) -> int:
    """Analytic count of splits of ``0/1`` and ``1/1`` that fit under ``limit``.

    Repeatedly taking the mediant of ``0/1`` with the previous mediant produces
    denominators 2, 3, 4, ...; repeatedly splitting toward the moving lower
    bound produces Fibonacci denominators, which is the *fastest* growth and
    therefore the least upper bound on split count the paper cites.  This
    helper returns the largest ``k`` such that ``fib(k+2) <= limit``.
    """
    a, b = 1, 1  # fib(1), fib(2)
    k = 0
    while a + b <= limit:
        a, b = b, a + b
        k += 1
    return k


def sort_fractions(values: Iterable[ProperFraction]) -> list[ProperFraction]:
    """Sort fractions by exact value (stable); convenience for reports/tests."""
    return sorted(values, key=lambda f: f.as_fraction())
