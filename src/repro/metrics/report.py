"""Rendering experiment results as the paper's tables and figure series.

Results flow out of :mod:`repro.experiments.runner` as nested dictionaries
(protocol -> pause time -> list of per-trial metric values).  The helpers here
turn them into:

* a fixed-width text table in the format of Table I (protocol rows, metric
  columns, ``mean ± half-width``), and
* per-figure series (one row per pause time, one column per protocol) that can
  be printed, asserted against in tests, or dumped for plotting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from .confidence import ConfidenceInterval, mean_confidence_interval

__all__ = [
    "MetricSeries",
    "format_table",
    "format_series",
    "interval_or_empty",
    "series_from_results",
]


def interval_or_empty(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Interval of ``values``, or a NaN placeholder for an empty sample.

    Reports rendered from a partially-completed sweep store have cells with no
    trials yet; those render as ``nan ± nan`` rather than refusing to report
    the cells that did complete.
    """
    if not values:
        return ConfidenceInterval(math.nan, math.nan, confidence, 0)
    return mean_confidence_interval(list(values), confidence)


@dataclass(frozen=True, slots=True)
class MetricSeries:
    """One figure's worth of data: metric values by (protocol, x value)."""

    metric: str
    x_label: str
    x_values: Sequence[float]
    by_protocol: Mapping[str, Sequence[ConfidenceInterval]]

    def protocol_values(self, protocol: str) -> List[float]:
        """The mean values of one protocol's curve, in x order."""
        return [interval.mean for interval in self.by_protocol[protocol]]


def series_from_results(
    metric: str,
    x_label: str,
    x_values: Sequence[float],
    results: Mapping[str, Mapping[float, Sequence[float]]],
    confidence: float = 0.95,
) -> MetricSeries:
    """Collapse per-trial values into per-point confidence intervals."""
    by_protocol: Dict[str, List[ConfidenceInterval]] = {}
    for protocol, per_x in results.items():
        by_protocol[protocol] = [
            interval_or_empty(per_x[x], confidence) for x in x_values
        ]
    return MetricSeries(metric, x_label, list(x_values), by_protocol)


def format_table(
    rows: Mapping[str, Mapping[str, ConfidenceInterval]],
    *,
    title: str = "",
    metric_order: Sequence[str] = (),
) -> str:
    """Render a Table-I-style table: one row per protocol, one column per metric."""
    protocols = list(rows)
    metrics = list(metric_order) if metric_order else list(next(iter(rows.values())))
    header = ["protocol"] + list(metrics)
    lines = []
    if title:
        lines.append(title)
    widths = [max(len(header[0]), max((len(p) for p in protocols), default=8))]
    widths += [max(len(m), 17) for m in metrics]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for protocol in protocols:
        cells = [protocol.ljust(widths[0])]
        for metric, width in zip(metrics, widths[1:]):
            interval = rows[protocol][metric]
            cells.append(
                f"{interval.mean:.3f} ± {interval.half_width:.3f}".ljust(width)
            )
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_series(series: MetricSeries) -> str:
    """Render a figure's series as a fixed-width text table (x by protocol)."""
    protocols = list(series.by_protocol)
    header = [series.x_label] + protocols
    widths = [max(len(series.x_label), 10)] + [max(len(p), 17) for p in protocols]
    lines = [f"{series.metric}"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for index, x in enumerate(series.x_values):
        cells = [f"{x:g}".ljust(widths[0])]
        for protocol, width in zip(protocols, widths[1:]):
            interval = series.by_protocol[protocol][index]
            cells.append(
                f"{interval.mean:.3f} ± {interval.half_width:.3f}".ljust(width)
            )
        lines.append("  ".join(cells))
    return "\n".join(lines)
