"""Metrics: the paper's evaluation quantities, confidence intervals, reports."""

from .collectors import METRIC_EXTRACTORS, extract_metric, summary_metrics
from .confidence import ConfidenceInterval, intervals_disjoint, mean_confidence_interval
from .report import MetricSeries, format_series, format_table, series_from_results

__all__ = [
    "METRIC_EXTRACTORS",
    "extract_metric",
    "summary_metrics",
    "ConfidenceInterval",
    "intervals_disjoint",
    "mean_confidence_interval",
    "MetricSeries",
    "format_series",
    "format_table",
    "series_from_results",
]
