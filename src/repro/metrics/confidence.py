"""Confidence intervals for trial aggregates.

The paper reports every data point as the mean of 10 trials with a 95%
confidence interval (vertical bars in the figures, ``±`` values in Table I),
and calls two measurements different only when their intervals are disjoint.
This module provides the same machinery: Student-t confidence intervals over
small samples, and the disjoint-interval comparison rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats

__all__ = [
    "ConfidenceInterval",
    "intervals_disjoint",
    "mean_confidence_interval",
    "significantly_greater",
]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A sample mean with its symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    sample_size: int

    @property
    def low(self) -> float:
        """Lower end of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper end of the interval."""
        return self.mean + self.half_width

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """True when the two intervals share any point (the paper's
        "statistically identical")."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval of the mean of ``values``.

    A single observation (or identical observations) yields a zero-width
    interval; an empty sample is rejected.
    """
    if not values:
        raise ValueError("cannot compute a confidence interval of no samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(mean, 0.0, confidence, n)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std_error = math.sqrt(variance / n)
    t_critical = float(stats.t.ppf((1.0 + confidence) / 2.0, n - 1))
    return ConfidenceInterval(mean, t_critical * std_error, confidence, n)


def intervals_disjoint(a: ConfidenceInterval, b: ConfidenceInterval) -> bool:
    """The paper's "better/worse" criterion: disjoint 95% intervals."""
    return not a.overlaps(b)


def significantly_greater(
    a: ConfidenceInterval, b: ConfidenceInterval, *, margin: float = 0.0
) -> bool:
    """True when ``a`` lies entirely above ``b`` by more than ``margin``.

    This is the paper's one-sided "better" criterion with an optional slack:
    the science gate uses ``margin`` to encode "matches" claims, so a
    hair's-breadth mean difference at single-trial scales (where intervals
    have zero width) does not read as a significant ordering.
    """
    return a.low > b.high + margin
