"""Helpers turning trial summaries into the paper's metric values.

:class:`~repro.sim.stats.TrialSummary` already exposes the raw quantities; the
collectors here define *which* number feeds each table column / figure axis,
so the experiment definitions and the tests agree on a single source of truth.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from ..sim.stats import TrialSummary

__all__ = ["METRIC_EXTRACTORS", "extract_metric", "summary_metrics"]

#: Metric name -> function of a trial summary, matching the evaluation section.
METRIC_EXTRACTORS: Dict[str, Callable[[TrialSummary], float]] = {
    # Table I / Fig. 4
    "delivery_ratio": lambda s: s.delivery_ratio,
    # Table I / Fig. 5
    "network_load": lambda s: s.network_load,
    # Table I / Fig. 6
    "latency": lambda s: s.mean_latency,
    # Fig. 3
    "mac_drops": lambda s: s.mac_drops_per_node,
    # Fig. 7
    "sequence_number": lambda s: s.average_sequence_number,
    # Resilience metrics (repro.sim.faults; zero / -1 in fault-free trials)
    "delivery_during_fault": lambda s: s.delivery_ratio_during_fault,
    "delivery_post_fault": lambda s: s.delivery_ratio_post_fault,
    "route_recovery_time": lambda s: s.route_recovery_time,
    "heal_control_burst": lambda s: float(s.control_burst_on_heal),
}


def extract_metric(summary: TrialSummary, metric: str) -> float:
    """The value of ``metric`` for one trial."""
    try:
        extractor = METRIC_EXTRACTORS[metric]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {sorted(METRIC_EXTRACTORS)}"
        ) from None
    return extractor(summary)


def summary_metrics(summary: TrialSummary) -> Mapping[str, float]:
    """Every defined metric for one trial, keyed by name."""
    return {name: extractor(summary) for name, extractor in METRIC_EXTRACTORS.items()}
