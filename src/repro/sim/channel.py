"""The shared wireless channel: unit-disk propagation with collisions.

The channel is the meeting point of every node's MAC: when a MAC transmits a
frame, the channel determines (from current mobility positions) which nodes
are in reception range, starts a *reception* at each of them, and marks
receptions as collided when they overlap in time at the same receiver or when
the receiver is itself transmitting (half-duplex).  At the end of the air time
each un-collided reception is delivered to the receiver's MAC, and the sender
is told whether its intended unicast receiver got the frame — the link-layer
loss signal the routing protocols rely on (the paper: "link-layer unicast loss
detection, without hello packets").

Carrier sensing queries ask whether any transmission is in progress within the
carrier-sense range of a prospective sender.

Performance design (and its invariants)
---------------------------------------

The geometry queries sit on the simulation's hottest path — every broadcast
flood asks for a reception set, every MAC attempt carrier-senses — so the
channel layers three caches over the brute-force O(N) scans.  All three are
exact: for a fixed seed, a trial produces bit-identical results with them on
or off (``use_spatial_index=False`` restores the brute-force scan).

1. **Per-timestamp position cache.**  Node positions are pure functions of
   the simulation clock, so the channel interpolates each node's mobility
   trace at most once per distinct value of ``simulator.now`` and serves
   repeated lookups from a dict.  The cache is invalidated whenever the clock
   advances.  *Invariant:* a listener's ``position()`` must depend only on
   ``simulator.now`` (true for every mobility model; a listener that
   teleports independently of the clock must not be cached).

2. **Uniform-grid spatial index** (:class:`~repro.sim.spatial.SpatialGrid`,
   cell size = reception range).  Range queries inspect only the grid cells
   overlapping the query disk instead of every node.  The grid is a position
   *snapshot*: rebuilding it every query would cost the same O(N) as the
   scan it replaces, so the channel reuses a snapshot taken at time ``t0``
   until nodes could have drifted more than a staleness budget
   (``max_node_speed * (now - t0)``).  Queries inflate their radius by the
   current drift bound — making the candidate set a strict superset of the
   true neighbour set — and then re-filter against exact cached positions
   with the same inclusive ``sqrt(dx²+dy²) <= r`` test, in listener attach
   order, as the brute-force scan.  *Invariant:* no node moves faster than
   ``max_node_speed`` (paper mobility: 20 m/s); a model that violates it must
   lower the budget via the constructor or disable the index.

3. **End-time heap for in-flight transmissions.**  Carrier sense used to
   rebuild the whole active-transmission list on every query; the list is now
   a min-heap on end time, so expired entries are lazily popped in O(log T)
   and the surviving entries scanned directly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Protocol, Tuple

from .engine import Simulator
from .packet import Frame
from .phy import PhyConfig
from .spatial import SpatialGrid

__all__ = ["Channel", "ChannelStats", "RadioListener"]

NodeId = Hashable

#: Fallback speed bound (m/s) when the caller does not say how fast its nodes
#: move — comfortably above the paper's 20 m/s random-waypoint maximum.
DEFAULT_MAX_NODE_SPEED = 50.0


class RadioListener(Protocol):
    """What the channel needs from an attached node (implemented by the MAC)."""

    node_id: NodeId

    def position(self) -> "tuple[float, float]":
        """Current (x, y) position in metres."""

    def is_transmitting(self) -> bool:
        """True while the node's own radio is sending."""

    def radio_receive(self, frame: Frame, transmitter: NodeId) -> None:
        """Deliver a successfully received frame."""


def _discard_frame(frame: Frame, transmitter: NodeId) -> None:
    """Delivery callback for muted radios (see :meth:`Channel.mute`)."""


@dataclass(slots=True, eq=False)
class _Transmission:
    """One frame in flight.  ``eq=False``: compared only by identity."""

    frame: Frame
    transmitter: NodeId
    start: float
    end: float
    position: "tuple[float, float]"


@dataclass(slots=True, eq=False)
class _Reception:
    """One frame arriving at one receiver.

    ``eq=False`` so ``list.remove`` in the end-of-air-time completion
    compares by identity instead of running the generated field-by-field
    (and packet-payload-deep) ``__eq__`` against every co-active reception.
    """

    frame: Frame
    transmitter: NodeId
    receiver: NodeId
    start: float
    end: float
    collided: bool = False


@dataclass(slots=True)
class ChannelStats:
    """Channel-wide counters (collision accounting feeds Fig. 3)."""

    transmissions: int = 0
    receptions_started: int = 0
    receptions_delivered: int = 0
    collisions: int = 0
    #: Receptions suppressed by the fault layer (blackout/partition/crash/loss).
    fault_suppressed: int = 0


class Channel:
    """The shared medium connecting every attached MAC."""

    def __init__(
        self,
        simulator: Simulator,
        phy: PhyConfig,
        *,
        max_node_speed: float = DEFAULT_MAX_NODE_SPEED,
        use_spatial_index: bool = True,
        use_reception_memo: bool = True,
        use_busy_cache: bool = True,
        use_airtime_memo: bool = True,
        use_object_pool: bool = True,
        use_grid_prefilter: bool = True,
        use_batch_receptions: bool = True,
    ) -> None:
        self._simulator = simulator
        self._phy = phy
        self._listeners: Dict[NodeId, RadioListener] = {}
        # Per-listener bound methods, prebound at attach: the reception loop
        # calls both once per receiver per transmission, and building a
        # bound method through two attribute walks each time is measurable
        # at millions of receptions.
        self._radio_receive: Dict[NodeId, Callable[[Frame, NodeId], None]] = {}
        self._is_transmitting: Dict[NodeId, Callable[[], bool]] = {}
        # Attach index per node: candidate sets from the grid are re-ordered
        # by it so neighbour lists match the brute-force scan exactly.
        self._attach_order: Dict[NodeId, int] = {}
        # Min-heap of (end_time, sequence, transmission); lazily pruned.
        self._active_transmissions: List[Tuple[float, int, _Transmission]] = []
        self._transmission_seq = 0
        self._active_receptions: Dict[NodeId, List[_Reception]] = {}
        # Position cache, valid only while simulator.now == self._cache_time.
        self._cache_time: float = -1.0
        self._positions: Dict[NodeId, Tuple[float, float]] = {}
        # Last exactly-computed position per node: (x, y, exact_until).  The
        # third element is the latest time at which the coordinates are
        # still known to be exact: the computation time for a moving node,
        # but the pause leg's departure time when the mobility segment says
        # the node is sitting still — so range predicates see *zero* drift
        # for paused nodes (the bulk of the paper's high-pause-time trials)
        # and interpolate only when genuinely uncertain.  Range predicates
        # clamp a negative age to zero drift; see _nodes_in_range_of /
        # is_busy_near.
        self._last_exact: Dict[NodeId, Tuple[float, float, float]] = {}
        # Spatial index over a position snapshot taken at _grid_time.
        self._use_spatial_index = use_spatial_index
        self._max_node_speed = max(float(max_node_speed), 0.0)
        self._grid = SpatialGrid(phy.reception_range)
        self._grid_time: float = 0.0
        self._grid_dirty = True
        # Rebuild once queries would have to inflate their radius by more
        # than this.  A quarter range lets a 20 m/s node age a snapshot for
        # ~3 simulated seconds; with the grid prefilter on, a tenth keeps
        # the snapshot-coordinate ambiguity band narrow (rebuilds are O(N)
        # and trivially cheap next to the queries they sharpen).
        self._use_grid_prefilter = use_grid_prefilter
        self._stale_budget = (
            0.1 if use_grid_prefilter else 0.25
        ) * phy.reception_range
        # Exact fast paths (see repro.sim.tuning for the exactness argument
        # of each); every one of them can be disabled independently and the
        # trial outcome is bit-identical either way.
        self._use_reception_memo = use_reception_memo
        self._use_busy_cache = use_busy_cache
        self._use_object_pool = use_object_pool
        self._use_batch_receptions = use_batch_receptions
        # Reception sets per origin node, valid only at _memo_time.
        self._reception_memo: Dict[NodeId, List[NodeId]] = {}
        self._memo_time: float = -1.0
        # node -> time before which the node is provably inside carrier-sense
        # range of a transmission that is still on the air.
        self._busy_until: Dict[NodeId, float] = {}
        # Reception-to-carrier-sense slack: a node within reception range
        # stays within carrier-sense range for any interval over which it
        # can drift at most this far.
        self._cs_margin = phy.carrier_sense_range - phy.reception_range
        # Air time per distinct packet size (pure in size_bytes).
        self._airtime_memo: Optional[Dict[int, float]] = (
            {} if use_airtime_memo else None
        )
        # Free list of _Reception records (recycled at end-of-air-time).
        self._reception_pool: List[_Reception] = []
        # Mobility segment providers (node -> segment_for) and the cached
        # active segment per node: position interpolation evaluated locally
        # from seven floats instead of a call chain into the mobility model
        # per cache miss.  See repro.sim.mobility.Segment.
        self._segment_providers: Dict[NodeId, Callable[[float], object]] = {}
        self._segment_cache: Dict[NodeId, tuple] = {}
        # Fault-injection state (repro.sim.faults.ChannelFaults), installed
        # only when the scenario declares faults; None keeps the reception
        # loop on its original instruction sequence (bit-identity contract).
        self._faults = None
        # Finite propagation delay (s/m).  Zero routes transmit/carrier-sense
        # through the original instantaneous-propagation code paths
        # unchanged; positive switches to the delayed variants below (a
        # model change, held to the science gate — see PhyConfig).
        self._pd = phy.propagation_delay_s_per_m
        # Transmission observer for the windowed process mode: called as
        # tap(transmitter, frame, now) for every frame put on the air.
        # Only consulted on the delayed paths (the windowed mode requires a
        # finite delay), so the instantaneous hot path gains no branch.
        self._transmit_tap = None
        # Sharded-PDES probe (repro.sim.pdes.ShardedSimulator), installed
        # only under engine_backend="sharded": deliveries switch the
        # delivery context to the receiver's shard and cross-seam effects
        # (receptions, busy-until certifications) are counted as boundary
        # events.  None under the serial backend.
        self._pdes = None
        # Frozen-backoff sleepers (mac_model="frozen"): node -> mutable
        # [horizon_hint, on_idle] pairs, woken by the idle-edge check at the
        # end of each transmission's finish event.  Empty (and therefore
        # free) under the poll MAC model.
        self._sleepers: Dict[NodeId, list] = {}
        self.stats = ChannelStats()

    # -- membership -------------------------------------------------------------

    def attach(self, listener: RadioListener) -> None:
        """Register a node's MAC with the channel."""
        self._listeners[listener.node_id] = listener
        self._radio_receive[listener.node_id] = listener.radio_receive
        self._is_transmitting[listener.node_id] = listener.is_transmitting
        self._attach_order[listener.node_id] = len(self._attach_order)
        self._active_receptions.setdefault(listener.node_id, [])
        self._grid_dirty = True
        self._positions.pop(listener.node_id, None)
        self._last_exact.pop(listener.node_id, None)
        self._busy_until.pop(listener.node_id, None)
        self._segment_providers.pop(listener.node_id, None)
        self._segment_cache.pop(listener.node_id, None)
        self._reception_memo.clear()

    def register_segment_provider(
        self, node_id: NodeId, provider: Callable[[float], object]
    ) -> None:
        """Let the channel interpolate ``node_id``'s position locally.

        ``provider(t)`` must return a :data:`repro.sim.mobility.Segment`
        covering ``t`` (or ``None`` to decline), and the node's position
        must follow that segment exactly — true for the built-in mobility
        models, registered by ``build_network`` when the
        ``mobility_segments`` fast path is on.  The listener's ``position()``
        remains the fallback and the reference behaviour.
        """
        self._segment_providers[node_id] = provider
        self._segment_cache.pop(node_id, None)

    def install_faults(self, faults) -> None:
        """Attach the trial's :class:`~repro.sim.faults.ChannelFaults` state.

        Once installed, every candidate reception consults
        ``faults.blocked(...)`` — an O(active faults) check that suppresses
        the reception entirely (no collision, no busy-cache seeding, no
        delivery) when a fault window covers the link.
        """
        self._faults = faults

    def install_pdes(self, simulator) -> None:
        """Attach the sharded backend's boundary-event probe.

        ``simulator`` must expose ``deliver_context`` / ``note_busy_mark``
        / ``set_node_context`` (:class:`~repro.sim.pdes.ShardedSimulator`).
        The probe only switches delivery contexts and counts seam
        crossings; it changes no schedule entry and no RNG draw, so a
        sharded trial stays bit-identical to a serial one.
        """
        self._pdes = simulator

    def set_transmit_tap(self, tap) -> None:
        """Observe every frame put on the air: ``tap(transmitter, frame, now)``.

        The windowed process mode (:mod:`repro.sim.pdes`) installs one per
        worker to record its owned shard's transmissions for barrier
        exchange.  Requires the finite-propagation-delay channel; the
        instantaneous paths never consult it.
        """
        self._transmit_tap = tap

    def mute(self, node_id: NodeId) -> None:
        """Permanently drop deliveries to ``node_id``'s radio.

        The windowed process mode replicates the full node population in
        every worker but executes only the home strip's protocol stacks;
        muting the foreign replicas keeps their radios as pure geometry
        (they still occupy the medium for carrier sense and collisions)
        without processing frames whose authoritative copies run in another
        worker.  Replacing the prebound callback costs the serial delivery
        path nothing.
        """
        self._radio_receive[node_id] = _discard_frame

    @property
    def faults(self):
        """The installed :class:`~repro.sim.faults.ChannelFaults` (or None)."""
        return self._faults

    @property
    def phy(self) -> PhyConfig:
        """The shared physical-layer configuration."""
        return self._phy

    def busy_until_view(self) -> Dict[NodeId, float]:
        """Read-only view of the carrier-sense busy-until cache.

        ``view.get(node, 0.0) > now`` means the node is provably inside
        carrier-sense range of a transmission still on the air (see
        :meth:`is_busy_near`).  The MAC's backoff fast path checks this
        dictionary directly before paying for a full carrier-sense call;
        with the cache disabled the dictionary simply stays empty.  Callers
        must never write to it.
        """
        return self._busy_until

    def airtime(self, frame: Frame) -> float:
        """``phy.transmission_time(frame)``, memoised per packet size.

        The air time is a pure function of ``frame.packet.size_bytes``; a
        trial sees a handful of distinct sizes (the CBR payload plus the
        control-packet sizes) but computes the time hundreds of thousands of
        times.
        """
        memo = self._airtime_memo
        if memo is None:
            return self._phy.transmission_time(frame)
        size = frame.packet.size_bytes
        duration = memo.get(size)
        if duration is None:
            duration = self._phy.transmission_time(frame)
            memo[size] = duration
        return duration

    # -- position cache ----------------------------------------------------------

    def invalidate_positions(self) -> None:
        """Forget cached positions and the grid snapshot.

        Needed only if a listener's position changes by some means other than
        the simulation clock advancing (e.g. a test harness teleporting a
        node); normal mobility models never require it.
        """
        self._cache_time = -1.0
        self._positions.clear()
        self._last_exact.clear()
        self._grid_dirty = True
        # All of these derive from cached positions / drift bounds; a
        # teleport invalidates them with everything else.
        self._reception_memo.clear()
        self._memo_time = -1.0
        self._busy_until.clear()
        self._segment_cache.clear()

    def _position_of(self, node_id: NodeId) -> Tuple[float, float]:
        """``node_id``'s position now, interpolated at most once per timestamp.

        Cache misses evaluate the node's registered mobility segment in
        place (expression-for-expression the mobility model's own fast
        path, so the floats are identical) and only fall back to the
        listener's ``position()`` call chain when no segment covers ``now``.
        """
        now = self._simulator.now
        if now != self._cache_time:
            self._positions.clear()
            self._cache_time = now
        position = self._positions.get(node_id)
        if position is None:
            segment = self._segment_cache.get(node_id)
            if segment is None or not (segment[0] <= now <= segment[2]):
                provider = self._segment_providers.get(node_id)
                segment = provider(now) if provider is not None else None
                if segment is not None:
                    self._segment_cache[node_id] = segment
            if segment is not None:
                # Inlined RandomWaypointMobility.position_at_xy over the
                # seven segment floats.
                depart = segment[1]
                if now <= depart:
                    # Mid-pause: the position stays exact until departure.
                    position = (segment[3], segment[4])
                    self._positions[node_id] = position
                    self._last_exact[node_id] = (position[0], position[1], depart)
                    return position
                if now >= segment[2]:
                    position = (segment[5], segment[6])
                else:
                    travel = segment[2] - depart
                    fraction = (now - depart) / travel if travel > 0 else 1.0
                    fraction = min(max(fraction, 0.0), 1.0)
                    sx = segment[3]
                    sy = segment[4]
                    position = (
                        sx + (segment[5] - sx) * fraction,
                        sy + (segment[6] - sy) * fraction,
                    )
            else:
                position = self._listeners[node_id].position()
            self._positions[node_id] = position
            self._last_exact[node_id] = (position[0], position[1], now)
        return position

    # -- geometry -----------------------------------------------------------------

    @staticmethod
    def _distance(a: "tuple[float, float]", b: "tuple[float, float]") -> float:
        dx, dy = a[0] - b[0], a[1] - b[1]
        return (dx * dx + dy * dy) ** 0.5

    def _grid_slack(self) -> float:
        """Refresh the grid snapshot if too stale; return the drift bound."""
        now = self._simulator.now
        slack = self._max_node_speed * (now - self._grid_time)
        if self._grid_dirty or slack > self._stale_budget or slack < 0.0:
            self._grid.build(
                (node_id, *self._position_of(node_id)) for node_id in self._listeners
            )
            self._grid_time = now
            self._grid_dirty = False
            slack = 0.0
        return slack

    def _nodes_in_range_of(
        self, origin: Tuple[float, float], exclude: NodeId
    ) -> List[NodeId]:
        """Nodes within reception range of ``origin``, in attach order.

        Exact: candidates come from the (possibly stale) grid with the radius
        inflated by the drift bound, then are filtered against fresh cached
        positions with the same inclusive distance test the brute-force scan
        uses.
        """
        reception_range = self._phy.reception_range
        ox, oy = origin
        result: List[NodeId] = []
        if self._use_spatial_index:
            slack = self._grid_slack()
            now = self._simulator.now
            known_get = self._last_exact.get
            max_speed = self._max_node_speed
            position_of = self._position_of
            append = result.append
            prefilter = self._use_grid_prefilter
            for bucket in self._grid.candidate_buckets(
                origin, reception_range + slack
            ):
                for node_id, bx, by in bucket:
                    if node_id == exclude:
                        continue
                    if prefilter:
                        # First filter from the snapshot coordinates already
                        # in hand: the node has drifted at most `slack`
                        # since the snapshot, so a snapshot distance at
                        # least that far inside (outside) the range decides
                        # membership with no per-node lookup at all.
                        dx = bx - ox
                        dy = by - oy
                        snapshot_distance = (dx * dx + dy * dy) ** 0.5
                        if snapshot_distance + slack <= reception_range:
                            append(node_id)
                            continue
                        if snapshot_distance > reception_range + slack:
                            continue
                    # Decide d <= range from the last exact position when
                    # the drift bound allows; interpolate only in the
                    # ambiguous band.  A negative age means the position is
                    # exact until a future time (paused node): zero drift.
                    known = known_get(node_id)
                    if known is not None:
                        # Clamp the age, not the product: an age of -inf
                        # (node static forever) times a zero speed bound
                        # would otherwise be NaN.
                        age = now - known[2]
                        drift = max_speed * age if age > 0.0 else 0.0
                        dx = known[0] - ox
                        dy = known[1] - oy
                        distance = (dx * dx + dy * dy) ** 0.5
                        if distance + drift <= reception_range:
                            append(node_id)
                            continue
                        if distance - drift > reception_range:
                            continue
                    position = position_of(node_id)
                    dx = position[0] - ox
                    dy = position[1] - oy
                    if (dx * dx + dy * dy) ** 0.5 <= reception_range:
                        append(node_id)
            result.sort(key=self._attach_order.__getitem__)
            return result
        for node_id in self._listeners:
            if node_id == exclude:
                continue
            position = self._position_of(node_id)
            dx = position[0] - ox
            dy = position[1] - oy
            if (dx * dx + dy * dy) ** 0.5 <= reception_range:
                result.append(node_id)
        return result

    def _reception_set(self, node_id: NodeId) -> List[NodeId]:
        """Nodes within reception range of ``node_id``, memoised per timestamp.

        Positions are pure functions of the clock and
        :meth:`_nodes_in_range_of` is deterministic in them, so two queries
        for the same node at one timestamp must agree — which is exactly
        what a flood burst does when several relays fire in the same slot.
        Callers must not mutate the returned list.
        """
        if not self._use_reception_memo:
            origin = self._position_of(node_id)
            return self._nodes_in_range_of(origin, exclude=node_id)
        now = self._simulator.now
        if now != self._memo_time:
            self._reception_memo.clear()
            self._memo_time = now
        cached = self._reception_memo.get(node_id)
        if cached is None:
            origin = self._position_of(node_id)
            cached = self._nodes_in_range_of(origin, exclude=node_id)
            self._reception_memo[node_id] = cached
        return cached

    def neighbors_of(self, node_id: NodeId) -> List[NodeId]:
        """Nodes currently within reception range of ``node_id``."""
        return list(self._reception_set(node_id))

    def in_range(self, a: NodeId, b: NodeId) -> bool:
        """True when nodes ``a`` and ``b`` can currently hear each other."""
        return (
            self._distance(self._position_of(a), self._position_of(b))
            <= self._phy.reception_range
        )

    # -- carrier sense ---------------------------------------------------------------

    def is_busy_near(self, node_id: NodeId) -> bool:
        """True when a transmission is in progress within carrier-sense range."""
        now = self._simulator.now
        if self._use_busy_cache and now < self._busy_until.get(node_id, 0.0):
            # A transmission still on the air was certified within
            # carrier-sense range for every instant before busy_until
            # (distance + worst-case drift at its end time <= cs range), so
            # no geometry is needed.  The hot case: a deferring MAC polls
            # many times during one long frame.
            return True
        if self._pd:
            return self._is_busy_near_delayed(node_id, now)
        active = self._active_transmissions
        while active and active[0][0] <= now:
            heapq.heappop(active)
        if not active:
            return False
        carrier_sense_range = self._phy.carrier_sense_range
        max_speed = self._max_node_speed
        known = self._last_exact.get(node_id) if self._use_spatial_index else None
        if known is not None:
            # Decide each d <= cs_range comparison from the last exact
            # position plus a drift bound; only an answer inside the
            # uncertainty band forces a fresh interpolation.  A negative age
            # means the position is exact until a future time (paused
            # node): zero drift.
            known_time = known[2]
            # Clamp the age, not the product: an age of -inf (node static
            # forever) times a zero speed bound would otherwise be NaN.
            age = now - known_time
            drift = max_speed * age if age > 0.0 else 0.0
            px = known[0]
            py = known[1]
            ambiguous = False
            for _, _, transmission in active:
                tx, ty = transmission.position
                dx = tx - px
                dy = ty - py
                distance = (dx * dx + dy * dy) ** 0.5
                if distance + drift <= carrier_sense_range:
                    if self._use_busy_cache:
                        exposure = transmission.end - known_time
                        margin = max_speed * exposure if exposure > 0.0 else 0.0
                        if distance + margin <= carrier_sense_range:
                            self._busy_until[node_id] = transmission.end
                    return True
                if distance - drift <= carrier_sense_range:
                    ambiguous = True
            if not ambiguous:
                return False
        position = self._position_of(node_id)
        px, py = position
        for _, _, transmission in active:
            tx, ty = transmission.position
            dx = tx - px
            dy = ty - py
            if (dx * dx + dy * dy) ** 0.5 <= carrier_sense_range:
                if (
                    self._use_busy_cache
                    and (dx * dx + dy * dy) ** 0.5
                    + max_speed * (transmission.end - now)
                    <= carrier_sense_range
                ):
                    self._busy_until[node_id] = transmission.end
                return True
        return False

    def _is_busy_near_delayed(self, node_id: NodeId, now: float) -> bool:
        """Carrier sense under finite propagation delay.

        A transmission occupies the medium at a node from its start until
        its trailing edge *arrives*: ``end + delay * distance``.  The
        leading edge is modelled conservatively as the transmit instant
        (physically it arrives ``delay * distance`` later; at realistic
        delays that is sub-microsecond, and sensing early only defers — it
        never misses a busy medium).  Heap entries are keyed by the latest
        possible trailing-edge arrival (``end + delay * cs_range``), so the
        lazy prune below is exact for every node.
        """
        active = self._active_transmissions
        while active and active[0][0] <= now:
            heapq.heappop(active)
        if not active:
            return False
        pd = self._pd
        carrier_sense_range = self._phy.carrier_sense_range
        max_speed = self._max_node_speed
        use_cache = self._use_busy_cache
        busy_until = self._busy_until
        px, py = self._position_of(node_id)
        for _, _, transmission in active:
            tx, ty = transmission.position
            dx = tx - px
            dy = ty - py
            distance = (dx * dx + dy * dy) ** 0.5
            if distance > carrier_sense_range:
                continue
            end = transmission.end
            if end + pd * distance <= now:
                continue
            if use_cache and distance + max_speed * (end - now) <= carrier_sense_range:
                # Certified to stay inside carrier-sense range until the
                # (undelayed) end — the conservative lower bound on this
                # node's trailing edge — so defer polls become cache hits.
                if busy_until.get(node_id, 0.0) < end:
                    busy_until[node_id] = end
            return True
        return False

    def busy_horizon(self, node_id: NodeId) -> float:
        """Latest end time of any in-progress transmission within carrier-sense
        range of ``node_id``, or ``0.0`` when the medium is idle there.

        The frozen-backoff MAC model (``mac_model="frozen"``) schedules a
        single wake-up at this time instead of polling the medium every
        backoff slot: a return value greater than ``now`` means *frozen until
        then*; a value at or below ``now`` means the medium is idle and the
        countdown may run.  The horizon is evaluated against exact current
        positions — a transmission outside carrier-sense range now may drift
        into range later, and a new transmission may start before the
        horizon, so callers must re-check at every wake-up (the frozen MAC
        does).  Expired transmissions are pruned here exactly as in
        :meth:`is_busy_near`, so a wake-up scheduled *at* the horizon
        observes an idle medium.

        The returned value is *exact* (each in-or-out-of-range decision is
        settled conservatively from the last exact position plus a drift
        bound, with fresh interpolation only inside the ambiguity band), and
        deliberately independent of every FastPaths flag — in particular it
        never consults the ``busy_until`` certification cache — so a
        frozen-model trial is bit-identical across FastPaths settings.

        Under the finite-delay channel the horizon is the latest trailing-
        edge *arrival* (``end + delay * distance``), and deadlock-freedom
        still holds: every transmission's completion event runs at
        ``end + delay * cs_range``, at or after any node's horizon for it,
        and wake-checks the sleepers.
        """
        now = self._simulator.now
        if self._pd:
            return self._busy_horizon_delayed(node_id, now)
        active = self._active_transmissions
        while active and active[0][0] <= now:
            heapq.heappop(active)
        if not active:
            return 0.0
        carrier_sense_range = self._phy.carrier_sense_range
        known = self._last_exact.get(node_id)
        if known is not None:
            age = now - known[2]
            # Clamp the age, not the product: an age of -inf (node static
            # forever) times a zero speed bound would otherwise be NaN.
            drift = self._max_node_speed * age if age > 0.0 else 0.0
            px = known[0]
            py = known[1]
            horizon = 0.0
            ambiguous_end = 0.0
            for _, _, transmission in active:
                end = transmission.end
                if end <= horizon:
                    continue
                tx, ty = transmission.position
                dx = tx - px
                dy = ty - py
                distance = (dx * dx + dy * dy) ** 0.5
                if distance + drift <= carrier_sense_range:
                    horizon = end
                elif distance - drift <= carrier_sense_range and end > ambiguous_end:
                    ambiguous_end = end
            if ambiguous_end <= horizon:
                # Every undecided transmission ends at or before a certainly
                # in-range one: the exact answer cannot differ.
                return horizon
        px, py = self._position_of(node_id)
        horizon = 0.0
        for _, _, transmission in active:
            end = transmission.end
            if end <= horizon:
                continue
            tx, ty = transmission.position
            dx = tx - px
            dy = ty - py
            if (dx * dx + dy * dy) ** 0.5 <= carrier_sense_range:
                horizon = end
        return horizon

    def _busy_horizon_delayed(self, node_id: NodeId, now: float) -> float:
        """Frozen-MAC wake horizon under finite propagation delay."""
        active = self._active_transmissions
        while active and active[0][0] <= now:
            heapq.heappop(active)
        if not active:
            return 0.0
        pd = self._pd
        carrier_sense_range = self._phy.carrier_sense_range
        px, py = self._position_of(node_id)
        horizon = 0.0
        for _, _, transmission in active:
            tx, ty = transmission.position
            dx = tx - px
            dy = ty - py
            distance = (dx * dx + dy * dy) ** 0.5
            if distance > carrier_sense_range:
                continue
            sense_end = transmission.end + pd * distance
            if sense_end > horizon and sense_end > now:
                horizon = sense_end
        return horizon

    def freeze(
        self, node_id: NodeId, horizon: float, on_idle: Callable[[], None]
    ) -> None:
        """Register a frozen-backoff sleeper to be woken at an idle edge.

        The frozen MAC model calls this instead of scheduling its own
        wake-up when :meth:`busy_horizon` says the medium is busy: the
        medium near a frozen node can only become idle when a transmission
        ends (mobility-induced idleness is picked up at the next end, a few
        air times later at most), and every transmission end runs a finish
        event here in the channel — so the finish loop wake-checks the
        sleepers and calls ``on_idle`` for those whose horizon has passed.
        This replaces the refreeze event churn (a wake-up scheduled at a
        horizon that a newer transmission has since extended) with one
        inline check per (finish, expired-hint sleeper) pair and makes the
        model *more* faithful: a node resumes at the true first idle edge,
        not at a stale horizon estimate.

        ``horizon`` — the :meth:`busy_horizon` value the caller just
        computed — is kept as a wake hint: finishes before it cannot be
        this node's idle edge (the certifying transmission is still on the
        air), so the per-finish loop skips the sleeper with one float
        compare.  When a finish at or past the hint still finds the medium
        busy (a newer transmission extended it), the hint is advanced in
        place instead of waking anyone.  ``on_idle`` runs only at a
        *verified* idle edge, so it draws its backoff without re-checking.

        One registration per node (the MAC serialises on its head-of-line
        frame); re-registering overwrites.  A stale callback — the node
        crashed while frozen — is popped at the next idle wake-check and
        no-ops on its epoch guard.  Deadlock-free: a node only freezes when
        an in-range transmission is active, and that transmission's finish
        (like every finish) wake-checks the sleepers.
        """
        self._sleepers[node_id] = [horizon, on_idle]

    # -- transmission ---------------------------------------------------------------

    def transmit(
        self,
        transmitter: NodeId,
        frame: Frame,
        on_complete: Optional[Callable[[bool], None]] = None,
    ) -> float:
        """Put ``frame`` on the air from ``transmitter``.

        Returns the air time.  ``on_complete`` (used for unicast frames) is
        called at the end of the transmission with ``True`` when the intended
        receiver decoded the frame successfully — the idealised 802.11 ACK.
        """
        if self._pd:
            return self._transmit_delayed(transmitter, frame, on_complete)
        now = self._simulator.now
        duration = self.airtime(frame)
        origin = self._position_of(transmitter)

        transmission = _Transmission(frame, transmitter, now, now + duration, origin)
        active = self._active_transmissions
        while active and active[0][0] <= now:
            heapq.heappop(active)
        self._transmission_seq += 1
        heapq.heappush(active, (now + duration, self._transmission_seq, transmission))
        self.stats.transmissions += 1

        receptions: List[_Reception] = []
        receptions_append = receptions.append
        stats = self.stats
        is_transmitting = self._is_transmitting
        active_receptions = self._active_receptions
        pool = self._reception_pool if self._use_object_pool else None
        end = now + duration
        # Carrier-sense certification for receivers (see below): every
        # receiver is within reception range now, so while the worst-case
        # drift over the air time fits inside the reception-to-carrier-sense
        # margin it provably stays within carrier-sense range until `end`.
        seed_busy = (
            self._use_busy_cache
            and self._max_node_speed * duration <= self._cs_margin
        )
        busy_until = self._busy_until
        faults = self._faults
        pdes = self._pdes
        position_of = self._position_of
        receiver_ids = self._reception_set(transmitter)
        if self._use_batch_receptions:
            # Loop fission over the whole reception set (exactness argument
            # in repro.sim.tuning): the fault filter consumes its draws in
            # reception-set order, the half-duplex flags are pure state
            # reads batched in one pass, and overlap marking plus record
            # materialisation run in a final pass over the surviving set.
            if faults is not None:
                kept: List[NodeId] = []
                kept_append = kept.append
                for receiver_id in receiver_ids:
                    if faults.blocked(transmitter, receiver_id, position_of):
                        # The frame never reaches this radio: no reception
                        # record, no collision, no busy-cache certification.
                        stats.fault_suppressed += 1
                    else:
                        kept_append(receiver_id)
                receiver_ids = kept
            collided_flags = [
                is_transmitting[receiver_id]() for receiver_id in receiver_ids
            ]
            for index, receiver_id in enumerate(receiver_ids):
                if pool:
                    reception = pool.pop()
                    reception.frame = frame
                    reception.transmitter = transmitter
                    reception.receiver = receiver_id
                    reception.start = now
                    reception.end = end
                    reception.collided = False
                else:
                    reception = _Reception(frame, transmitter, receiver_id, now, end)
                collided = collided_flags[index]
                actives = active_receptions[receiver_id]
                for other in actives:
                    if other.end > now:
                        other.collided = True
                        collided = True
                reception.collided = collided
                actives.append(reception)
                receptions_append(reception)
                if seed_busy and busy_until.get(receiver_id, 0.0) < end:
                    busy_until[receiver_id] = end
                    if pdes is not None:
                        pdes.note_busy_mark(transmitter, receiver_id)
        else:
            for receiver_id in receiver_ids:
                if faults is not None and faults.blocked(
                    transmitter, receiver_id, position_of
                ):
                    # The frame never reaches this radio: no reception record,
                    # no collision, no busy-cache certification.
                    stats.fault_suppressed += 1
                    continue
                if pool:
                    reception = pool.pop()
                    reception.frame = frame
                    reception.transmitter = transmitter
                    reception.receiver = receiver_id
                    reception.start = now
                    reception.end = end
                    reception.collided = False
                else:
                    reception = _Reception(frame, transmitter, receiver_id, now, end)
                # Half-duplex: a node that is itself transmitting cannot receive.
                collided = is_transmitting[receiver_id]()
                # Overlap with any reception already in progress collides both.
                actives = active_receptions[receiver_id]
                for other in actives:
                    if other.end > now:
                        other.collided = True
                        collided = True
                reception.collided = collided
                actives.append(reception)
                receptions_append(reception)
                if seed_busy and busy_until.get(receiver_id, 0.0) < end:
                    # These are exactly the nodes about to contend to relay a
                    # flood: their defer polls become dictionary hits.
                    busy_until[receiver_id] = end
                    if pdes is not None:
                        pdes.note_busy_mark(transmitter, receiver_id)
        stats.receptions_started += len(receptions)

        radio_receive = self._radio_receive
        swap_remove = self._use_batch_receptions

        def finish() -> None:
            delivered_to_target = False
            is_unicast = not frame.is_broadcast
            target = frame.receiver
            collisions = 0
            delivered = 0
            # Re-read the fault state: a node that crashed *during* the air
            # time loses the frame (and the sender's idealised ACK with it).
            down = None
            current_faults = self._faults
            if current_faults is not None and current_faults.down:
                down = current_faults.down
            for reception in receptions:
                receiver = reception.receiver
                # Every reception was appended in the loop above and is only
                # ever removed here, so it is always present.
                if swap_remove:
                    # Exact despite reordering the list: active-reception
                    # lists are only consumed by the overlap scan, which
                    # marks every overlapping pair regardless of order.
                    records = active_receptions[receiver]
                    last = records.pop()
                    if last is not reception:
                        records[records.index(reception)] = last
                else:
                    active_receptions[receiver].remove(reception)
                if reception.collided:
                    collisions += 1
                    continue
                if down is not None and receiver in down:
                    stats.fault_suppressed += 1
                    continue
                delivered += 1
                if pdes is not None:
                    # Cross-shard delivery: the receiver's follow-on events
                    # belong to its owner shard (and a seam crossing is a
                    # boundary event).
                    pdes.deliver_context(transmitter, receiver)
                radio_receive[receiver](frame, transmitter)
                if is_unicast and receiver == target:
                    delivered_to_target = True
            stats.collisions += collisions
            stats.receptions_delivered += delivered
            if pool is not None:
                # The records are out of every active list and the local
                # references die with this closure: recycle them.
                pool.extend(receptions)
            if pdes is not None:
                # The completion callback is the sender's: run it (and the
                # stats that follow) back in the transmitter's shard.
                pdes.set_node_context(transmitter)
            if on_complete is not None:
                on_complete(delivered_to_target)
            # Idle-edge wake-check for frozen-backoff sleepers (see freeze()).
            # Runs last so a retry scheduled by on_complete contends from
            # this same edge like every woken sleeper.  Value mutation is
            # legal mid-iteration; deletions are batched after it.
            sleepers = self._sleepers
            if sleepers:
                wake_now = self._simulator.now
                active = self._active_transmissions
                while active and active[0][0] <= wake_now:
                    heapq.heappop(active)
                woke = None
                if not active:
                    # Medium idle everywhere: every sleeper wakes, no
                    # geometry needed.
                    woke = list(sleepers)
                else:
                    busy_horizon = self.busy_horizon
                    for node_id, entry in sleepers.items():
                        if entry[0] > wake_now:
                            continue
                        horizon = busy_horizon(node_id)
                        if horizon > wake_now:
                            entry[0] = horizon
                        elif woke is None:
                            woke = [node_id]
                        else:
                            woke.append(node_id)
                if woke is not None:
                    for node_id in woke:
                        on_idle = sleepers.pop(node_id)[1]
                        if pdes is not None:
                            # The resume belongs to the woken sleeper.
                            pdes.set_node_context(node_id)
                        on_idle()

        self._simulator.call_in(duration, finish, 1)
        return duration

    def _transmit_delayed(
        self,
        transmitter: NodeId,
        frame: Frame,
        on_complete: Optional[Callable[[bool], None]] = None,
    ) -> float:
        """:meth:`transmit` under the finite-propagation-delay channel.

        Each receiver's copy of the frame occupies ``[start + delay * d,
        end + delay * d]`` at distance ``d``, so a nearer receiver always
        finishes decoding no later than a farther one and collision overlap
        is judged per-receiver against the *delayed* intervals.  Deliveries
        are per-receiver events at each trailing-edge arrival (so delivery
        order follows distance), and a single completion event at
        ``end + delay * cs_range`` — after every possible delivery and
        sense edge — runs the sender's ACK callback and the frozen-MAC
        wake-check.  Half-duplex and fault checks are evaluated at the
        transmit instant like the instantaneous model (the leading-edge
        approximation; sub-microsecond at physical delays).
        """
        simulator = self._simulator
        now = simulator.now
        duration = self.airtime(frame)
        origin = self._position_of(transmitter)
        pd = self._pd
        phy = self._phy
        end = now + duration

        transmission = _Transmission(frame, transmitter, now, end, origin)
        active = self._active_transmissions
        # Heap key: the latest instant any node can still sense this frame
        # (trailing edge at the carrier-sense rim), so the lazy prunes in
        # the delayed query paths never drop a still-audible transmission.
        latest_sense = end + pd * phy.carrier_sense_range
        while active and active[0][0] <= now:
            heapq.heappop(active)
        self._transmission_seq += 1
        heapq.heappush(active, (latest_sense, self._transmission_seq, transmission))
        self.stats.transmissions += 1
        if self._transmit_tap is not None:
            self._transmit_tap(transmitter, frame, now)

        stats = self.stats
        is_transmitting = self._is_transmitting
        active_receptions = self._active_receptions
        pool = self._reception_pool if self._use_object_pool else None
        faults = self._faults
        pdes = self._pdes
        position_of = self._position_of
        busy_until = self._busy_until
        radio_receive = self._radio_receive
        call_in = simulator.call_in
        ox, oy = origin
        # Same conservative certification as the instantaneous path, against
        # the undelayed end (a lower bound on every receiver's trailing
        # edge): drift over the air time must fit the cs margin.
        seed_busy = (
            self._use_busy_cache
            and self._max_node_speed * duration <= self._cs_margin
        )
        receptions: List[_Reception] = []
        receptions_append = receptions.append
        # Mutable cell shared by the per-receiver deliveries and the
        # completion event: [delivered_to_target].
        outcome = [False]
        is_unicast = not frame.is_broadcast
        target = frame.receiver

        def deliver(reception: _Reception) -> None:
            receiver = reception.receiver
            records = active_receptions[receiver]
            last = records.pop()
            if last is not reception:
                records[records.index(reception)] = last
            if reception.collided:
                stats.collisions += 1
                return
            current_faults = self._faults
            if (
                current_faults is not None
                and current_faults.down
                and receiver in current_faults.down
            ):
                # Crashed while the frame was in flight: the radio is gone.
                stats.fault_suppressed += 1
                return
            stats.receptions_delivered += 1
            if pdes is not None:
                pdes.deliver_context(transmitter, receiver)
            radio_receive[receiver](frame, transmitter)
            if is_unicast and receiver == target:
                outcome[0] = True

        for receiver_id in self._reception_set(transmitter):
            if faults is not None and faults.blocked(
                transmitter, receiver_id, position_of
            ):
                stats.fault_suppressed += 1
                continue
            rx, ry = position_of(receiver_id)
            dx = rx - ox
            dy = ry - oy
            flight = pd * (dx * dx + dy * dy) ** 0.5
            arrival = now + flight
            rec_end = end + flight
            if pool:
                reception = pool.pop()
                reception.frame = frame
                reception.transmitter = transmitter
                reception.receiver = receiver_id
                reception.start = arrival
                reception.end = rec_end
                reception.collided = False
            else:
                reception = _Reception(
                    frame, transmitter, receiver_id, arrival, rec_end
                )
            collided = is_transmitting[receiver_id]()
            actives = active_receptions[receiver_id]
            for other in actives:
                if other.end > arrival and other.start < rec_end:
                    other.collided = True
                    collided = True
            reception.collided = collided
            actives.append(reception)
            receptions_append(reception)
            if seed_busy and busy_until.get(receiver_id, 0.0) < end:
                busy_until[receiver_id] = end
                if pdes is not None:
                    pdes.note_busy_mark(transmitter, receiver_id)
            call_in(rec_end - now, lambda r=reception: deliver(r), 1)
        stats.receptions_started += len(receptions)

        def complete() -> None:
            if pool is not None:
                # Every delivery event has run (they were scheduled earlier
                # at times <= this one): the records are free.
                pool.extend(receptions)
            if pdes is not None:
                pdes.set_node_context(transmitter)
            if on_complete is not None:
                on_complete(outcome[0])
            self._wake_sleepers(pdes)

        # At or after every delivery (reception range <= cs range) and every
        # node's sense horizon for this frame; scheduled after the delivery
        # events above, so equal-time ties still run deliveries first.
        call_in(duration + pd * phy.carrier_sense_range, complete, 1)
        return duration

    def _wake_sleepers(self, pdes) -> None:
        """Idle-edge wake-check for frozen-backoff sleepers (see freeze()).

        The delayed completion events call this; the instantaneous finish
        path keeps its original inline copy.
        """
        sleepers = self._sleepers
        if not sleepers:
            return
        wake_now = self._simulator.now
        active = self._active_transmissions
        while active and active[0][0] <= wake_now:
            heapq.heappop(active)
        woke = None
        if not active:
            woke = list(sleepers)
        else:
            busy_horizon = self.busy_horizon
            for node_id, entry in sleepers.items():
                if entry[0] > wake_now:
                    continue
                horizon = busy_horizon(node_id)
                if horizon > wake_now:
                    entry[0] = horizon
                elif woke is None:
                    woke = [node_id]
                else:
                    woke.append(node_id)
        if woke is not None:
            for node_id in woke:
                on_idle = sleepers.pop(node_id)[1]
                if pdes is not None:
                    pdes.set_node_context(node_id)
                on_idle()
