"""The shared wireless channel: unit-disk propagation with collisions.

The channel is the meeting point of every node's MAC: when a MAC transmits a
frame, the channel determines (from current mobility positions) which nodes
are in reception range, starts a *reception* at each of them, and marks
receptions as collided when they overlap in time at the same receiver or when
the receiver is itself transmitting (half-duplex).  At the end of the air time
each un-collided reception is delivered to the receiver's MAC, and the sender
is told whether its intended unicast receiver got the frame — the link-layer
loss signal the routing protocols rely on (the paper: "link-layer unicast loss
detection, without hello packets").

Carrier sensing queries ask whether any transmission is in progress within the
carrier-sense range of a prospective sender.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Protocol

from .engine import Simulator
from .packet import Frame
from .phy import PhyConfig

__all__ = ["Channel", "ChannelStats", "RadioListener"]

NodeId = Hashable


class RadioListener(Protocol):
    """What the channel needs from an attached node (implemented by the MAC)."""

    node_id: NodeId

    def position(self) -> "tuple[float, float]":
        """Current (x, y) position in metres."""

    def is_transmitting(self) -> bool:
        """True while the node's own radio is sending."""

    def radio_receive(self, frame: Frame, transmitter: NodeId) -> None:
        """Deliver a successfully received frame."""


@dataclass
class _Transmission:
    """One frame in flight."""

    frame: Frame
    transmitter: NodeId
    start: float
    end: float
    position: "tuple[float, float]"


@dataclass
class _Reception:
    """One frame arriving at one receiver."""

    frame: Frame
    transmitter: NodeId
    receiver: NodeId
    start: float
    end: float
    collided: bool = False


@dataclass
class ChannelStats:
    """Channel-wide counters (collision accounting feeds Fig. 3)."""

    transmissions: int = 0
    receptions_started: int = 0
    receptions_delivered: int = 0
    collisions: int = 0


class Channel:
    """The shared medium connecting every attached MAC."""

    def __init__(self, simulator: Simulator, phy: PhyConfig) -> None:
        self._simulator = simulator
        self._phy = phy
        self._listeners: Dict[NodeId, RadioListener] = {}
        self._active_transmissions: List[_Transmission] = []
        self._active_receptions: Dict[NodeId, List[_Reception]] = {}
        self.stats = ChannelStats()

    # -- membership -------------------------------------------------------------

    def attach(self, listener: RadioListener) -> None:
        """Register a node's MAC with the channel."""
        self._listeners[listener.node_id] = listener
        self._active_receptions.setdefault(listener.node_id, [])

    @property
    def phy(self) -> PhyConfig:
        """The shared physical-layer configuration."""
        return self._phy

    # -- geometry -----------------------------------------------------------------

    @staticmethod
    def _distance(a: "tuple[float, float]", b: "tuple[float, float]") -> float:
        dx, dy = a[0] - b[0], a[1] - b[1]
        return (dx * dx + dy * dy) ** 0.5

    def neighbors_of(self, node_id: NodeId) -> List[NodeId]:
        """Nodes currently within reception range of ``node_id``."""
        origin = self._listeners[node_id].position()
        result = []
        for other_id, listener in self._listeners.items():
            if other_id == node_id:
                continue
            if self._distance(origin, listener.position()) <= self._phy.reception_range:
                result.append(other_id)
        return result

    def in_range(self, a: NodeId, b: NodeId) -> bool:
        """True when nodes ``a`` and ``b`` can currently hear each other."""
        return (
            self._distance(
                self._listeners[a].position(), self._listeners[b].position()
            )
            <= self._phy.reception_range
        )

    # -- carrier sense ---------------------------------------------------------------

    def is_busy_near(self, node_id: NodeId) -> bool:
        """True when a transmission is in progress within carrier-sense range."""
        now = self._simulator.now
        position = self._listeners[node_id].position()
        self._prune(now)
        for transmission in self._active_transmissions:
            if transmission.end <= now:
                continue
            if (
                self._distance(position, transmission.position)
                <= self._phy.carrier_sense_range
            ):
                return True
        return False

    def _prune(self, now: float) -> None:
        self._active_transmissions = [
            t for t in self._active_transmissions if t.end > now
        ]

    # -- transmission ---------------------------------------------------------------

    def transmit(
        self,
        transmitter: NodeId,
        frame: Frame,
        on_complete: Optional[Callable[[bool], None]] = None,
    ) -> float:
        """Put ``frame`` on the air from ``transmitter``.

        Returns the air time.  ``on_complete`` (used for unicast frames) is
        called at the end of the transmission with ``True`` when the intended
        receiver decoded the frame successfully — the idealised 802.11 ACK.
        """
        now = self._simulator.now
        duration = self._phy.transmission_time(frame)
        sender = self._listeners[transmitter]
        origin = sender.position()

        transmission = _Transmission(frame, transmitter, now, now + duration, origin)
        self._active_transmissions.append(transmission)
        self.stats.transmissions += 1

        receptions: List[_Reception] = []
        for receiver_id, listener in self._listeners.items():
            if receiver_id == transmitter:
                continue
            if self._distance(origin, listener.position()) > self._phy.reception_range:
                continue
            reception = _Reception(
                frame, transmitter, receiver_id, now, now + duration
            )
            self.stats.receptions_started += 1
            # Half-duplex: a node that is itself transmitting cannot receive.
            if listener.is_transmitting():
                reception.collided = True
            # Overlap with any reception already in progress collides both.
            for other in self._active_receptions[receiver_id]:
                if other.end > now:
                    other.collided = True
                    reception.collided = True
            self._active_receptions[receiver_id].append(reception)
            receptions.append(reception)

        def finish() -> None:
            delivered_to_target = False
            for reception in receptions:
                active = self._active_receptions[reception.receiver]
                if reception in active:
                    active.remove(reception)
                if reception.collided:
                    self.stats.collisions += 1
                    continue
                self.stats.receptions_delivered += 1
                self._listeners[reception.receiver].radio_receive(
                    frame, transmitter
                )
                if not frame.is_broadcast and reception.receiver == frame.receiver:
                    delivered_to_target = True
            if on_complete is not None:
                on_complete(delivered_to_target)

        self._simulator.schedule_in(duration, finish, priority=1)
        return duration
