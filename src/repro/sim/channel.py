"""The shared wireless channel: unit-disk propagation with collisions.

The channel is the meeting point of every node's MAC: when a MAC transmits a
frame, the channel determines (from current mobility positions) which nodes
are in reception range, starts a *reception* at each of them, and marks
receptions as collided when they overlap in time at the same receiver or when
the receiver is itself transmitting (half-duplex).  At the end of the air time
each un-collided reception is delivered to the receiver's MAC, and the sender
is told whether its intended unicast receiver got the frame — the link-layer
loss signal the routing protocols rely on (the paper: "link-layer unicast loss
detection, without hello packets").

Carrier sensing queries ask whether any transmission is in progress within the
carrier-sense range of a prospective sender.

Performance design (and its invariants)
---------------------------------------

The geometry queries sit on the simulation's hottest path — every broadcast
flood asks for a reception set, every MAC attempt carrier-senses — so the
channel layers three caches over the brute-force O(N) scans.  All three are
exact: for a fixed seed, a trial produces bit-identical results with them on
or off (``use_spatial_index=False`` restores the brute-force scan).

1. **Per-timestamp position cache.**  Node positions are pure functions of
   the simulation clock, so the channel interpolates each node's mobility
   trace at most once per distinct value of ``simulator.now`` and serves
   repeated lookups from a dict.  The cache is invalidated whenever the clock
   advances.  *Invariant:* a listener's ``position()`` must depend only on
   ``simulator.now`` (true for every mobility model; a listener that
   teleports independently of the clock must not be cached).

2. **Uniform-grid spatial index** (:class:`~repro.sim.spatial.SpatialGrid`,
   cell size = reception range).  Range queries inspect only the grid cells
   overlapping the query disk instead of every node.  The grid is a position
   *snapshot*: rebuilding it every query would cost the same O(N) as the
   scan it replaces, so the channel reuses a snapshot taken at time ``t0``
   until nodes could have drifted more than a staleness budget
   (``max_node_speed * (now - t0)``).  Queries inflate their radius by the
   current drift bound — making the candidate set a strict superset of the
   true neighbour set — and then re-filter against exact cached positions
   with the same inclusive ``sqrt(dx²+dy²) <= r`` test, in listener attach
   order, as the brute-force scan.  *Invariant:* no node moves faster than
   ``max_node_speed`` (paper mobility: 20 m/s); a model that violates it must
   lower the budget via the constructor or disable the index.

3. **End-time heap for in-flight transmissions.**  Carrier sense used to
   rebuild the whole active-transmission list on every query; the list is now
   a min-heap on end time, so expired entries are lazily popped in O(log T)
   and the surviving entries scanned directly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Protocol, Tuple

from .engine import Simulator
from .packet import Frame
from .phy import PhyConfig
from .spatial import SpatialGrid

__all__ = ["Channel", "ChannelStats", "RadioListener"]

NodeId = Hashable

#: Fallback speed bound (m/s) when the caller does not say how fast its nodes
#: move — comfortably above the paper's 20 m/s random-waypoint maximum.
DEFAULT_MAX_NODE_SPEED = 50.0


class RadioListener(Protocol):
    """What the channel needs from an attached node (implemented by the MAC)."""

    node_id: NodeId

    def position(self) -> "tuple[float, float]":
        """Current (x, y) position in metres."""

    def is_transmitting(self) -> bool:
        """True while the node's own radio is sending."""

    def radio_receive(self, frame: Frame, transmitter: NodeId) -> None:
        """Deliver a successfully received frame."""


@dataclass(slots=True)
class _Transmission:
    """One frame in flight."""

    frame: Frame
    transmitter: NodeId
    start: float
    end: float
    position: "tuple[float, float]"


@dataclass(slots=True)
class _Reception:
    """One frame arriving at one receiver."""

    frame: Frame
    transmitter: NodeId
    receiver: NodeId
    start: float
    end: float
    collided: bool = False


@dataclass
class ChannelStats:
    """Channel-wide counters (collision accounting feeds Fig. 3)."""

    transmissions: int = 0
    receptions_started: int = 0
    receptions_delivered: int = 0
    collisions: int = 0


class Channel:
    """The shared medium connecting every attached MAC."""

    def __init__(
        self,
        simulator: Simulator,
        phy: PhyConfig,
        *,
        max_node_speed: float = DEFAULT_MAX_NODE_SPEED,
        use_spatial_index: bool = True,
    ) -> None:
        self._simulator = simulator
        self._phy = phy
        self._listeners: Dict[NodeId, RadioListener] = {}
        # Attach index per node: candidate sets from the grid are re-ordered
        # by it so neighbour lists match the brute-force scan exactly.
        self._attach_order: Dict[NodeId, int] = {}
        # Min-heap of (end_time, sequence, transmission); lazily pruned.
        self._active_transmissions: List[Tuple[float, int, _Transmission]] = []
        self._transmission_seq = 0
        self._active_receptions: Dict[NodeId, List[_Reception]] = {}
        # Position cache, valid only while simulator.now == self._cache_time.
        self._cache_time: float = -1.0
        self._positions: Dict[NodeId, Tuple[float, float]] = {}
        # Last exactly-computed position per node: (x, y, computed_at).  Range
        # predicates use it with a drift bound (max_node_speed * age) and fall
        # back to exact interpolation only when the answer is within the
        # uncertainty band — see _nodes_in_range_of / is_busy_near.
        self._last_exact: Dict[NodeId, Tuple[float, float, float]] = {}
        # Spatial index over a position snapshot taken at _grid_time.
        self._use_spatial_index = use_spatial_index
        self._max_node_speed = max(float(max_node_speed), 0.0)
        self._grid = SpatialGrid(phy.reception_range)
        self._grid_time: float = 0.0
        self._grid_dirty = True
        # Rebuild once queries would have to inflate their radius by more
        # than this; a quarter range keeps candidate sets tight while letting
        # a 20 m/s node age a snapshot for ~3 simulated seconds.
        self._stale_budget = 0.25 * phy.reception_range
        self.stats = ChannelStats()

    # -- membership -------------------------------------------------------------

    def attach(self, listener: RadioListener) -> None:
        """Register a node's MAC with the channel."""
        self._listeners[listener.node_id] = listener
        self._attach_order[listener.node_id] = len(self._attach_order)
        self._active_receptions.setdefault(listener.node_id, [])
        self._grid_dirty = True
        self._positions.pop(listener.node_id, None)
        self._last_exact.pop(listener.node_id, None)

    @property
    def phy(self) -> PhyConfig:
        """The shared physical-layer configuration."""
        return self._phy

    # -- position cache ----------------------------------------------------------

    def invalidate_positions(self) -> None:
        """Forget cached positions and the grid snapshot.

        Needed only if a listener's position changes by some means other than
        the simulation clock advancing (e.g. a test harness teleporting a
        node); normal mobility models never require it.
        """
        self._cache_time = -1.0
        self._positions.clear()
        self._last_exact.clear()
        self._grid_dirty = True

    def _position_of(self, node_id: NodeId) -> Tuple[float, float]:
        """``node_id``'s position now, interpolated at most once per timestamp."""
        now = self._simulator.now
        if now != self._cache_time:
            self._positions.clear()
            self._cache_time = now
        position = self._positions.get(node_id)
        if position is None:
            position = self._listeners[node_id].position()
            self._positions[node_id] = position
            self._last_exact[node_id] = (position[0], position[1], now)
        return position

    # -- geometry -----------------------------------------------------------------

    @staticmethod
    def _distance(a: "tuple[float, float]", b: "tuple[float, float]") -> float:
        dx, dy = a[0] - b[0], a[1] - b[1]
        return (dx * dx + dy * dy) ** 0.5

    def _grid_slack(self) -> float:
        """Refresh the grid snapshot if too stale; return the drift bound."""
        now = self._simulator.now
        slack = self._max_node_speed * (now - self._grid_time)
        if self._grid_dirty or slack > self._stale_budget or slack < 0.0:
            self._grid.build(
                (node_id, *self._position_of(node_id)) for node_id in self._listeners
            )
            self._grid_time = now
            self._grid_dirty = False
            slack = 0.0
        return slack

    def _nodes_in_range_of(
        self, origin: Tuple[float, float], exclude: NodeId
    ) -> List[NodeId]:
        """Nodes within reception range of ``origin``, in attach order.

        Exact: candidates come from the (possibly stale) grid with the radius
        inflated by the drift bound, then are filtered against fresh cached
        positions with the same inclusive distance test the brute-force scan
        uses.
        """
        reception_range = self._phy.reception_range
        ox, oy = origin
        result: List[NodeId] = []
        if self._use_spatial_index:
            slack = self._grid_slack()
            now = self._simulator.now
            last_exact = self._last_exact
            max_speed = self._max_node_speed
            position_of = self._position_of
            for node_id in self._grid.candidates_within(
                origin, reception_range + slack
            ):
                if node_id == exclude:
                    continue
                # Decide d <= range from the last exact position when the
                # drift bound allows; interpolate only in the ambiguous band.
                known = last_exact.get(node_id)
                if known is not None:
                    drift = max_speed * (now - known[2])
                    if drift >= 0.0:
                        dx = known[0] - ox
                        dy = known[1] - oy
                        distance = (dx * dx + dy * dy) ** 0.5
                        if distance + drift <= reception_range:
                            result.append(node_id)
                            continue
                        if distance - drift > reception_range:
                            continue
                position = position_of(node_id)
                dx = position[0] - ox
                dy = position[1] - oy
                if (dx * dx + dy * dy) ** 0.5 <= reception_range:
                    result.append(node_id)
            result.sort(key=self._attach_order.__getitem__)
            return result
        for node_id in self._listeners:
            if node_id == exclude:
                continue
            position = self._position_of(node_id)
            dx = position[0] - ox
            dy = position[1] - oy
            if (dx * dx + dy * dy) ** 0.5 <= reception_range:
                result.append(node_id)
        return result

    def neighbors_of(self, node_id: NodeId) -> List[NodeId]:
        """Nodes currently within reception range of ``node_id``."""
        origin = self._position_of(node_id)
        return self._nodes_in_range_of(origin, exclude=node_id)

    def in_range(self, a: NodeId, b: NodeId) -> bool:
        """True when nodes ``a`` and ``b`` can currently hear each other."""
        return (
            self._distance(self._position_of(a), self._position_of(b))
            <= self._phy.reception_range
        )

    # -- carrier sense ---------------------------------------------------------------

    def is_busy_near(self, node_id: NodeId) -> bool:
        """True when a transmission is in progress within carrier-sense range."""
        now = self._simulator.now
        active = self._active_transmissions
        while active and active[0][0] <= now:
            heapq.heappop(active)
        if not active:
            return False
        carrier_sense_range = self._phy.carrier_sense_range
        known = self._last_exact.get(node_id) if self._use_spatial_index else None
        if known is not None:
            # Decide each d <= cs_range comparison from the last exact
            # position plus a drift bound; only an answer inside the
            # uncertainty band forces a fresh interpolation.
            drift = self._max_node_speed * (now - known[2])
            if drift >= 0.0:
                px = known[0]
                py = known[1]
                ambiguous = False
                for _, _, transmission in active:
                    tx, ty = transmission.position
                    dx = tx - px
                    dy = ty - py
                    distance = (dx * dx + dy * dy) ** 0.5
                    if distance + drift <= carrier_sense_range:
                        return True
                    if distance - drift <= carrier_sense_range:
                        ambiguous = True
                if not ambiguous:
                    return False
        position = self._position_of(node_id)
        px, py = position
        for _, _, transmission in active:
            tx, ty = transmission.position
            dx = tx - px
            dy = ty - py
            if (dx * dx + dy * dy) ** 0.5 <= carrier_sense_range:
                return True
        return False

    # -- transmission ---------------------------------------------------------------

    def transmit(
        self,
        transmitter: NodeId,
        frame: Frame,
        on_complete: Optional[Callable[[bool], None]] = None,
    ) -> float:
        """Put ``frame`` on the air from ``transmitter``.

        Returns the air time.  ``on_complete`` (used for unicast frames) is
        called at the end of the transmission with ``True`` when the intended
        receiver decoded the frame successfully — the idealised 802.11 ACK.
        """
        now = self._simulator.now
        duration = self._phy.transmission_time(frame)
        origin = self._position_of(transmitter)

        transmission = _Transmission(frame, transmitter, now, now + duration, origin)
        active = self._active_transmissions
        while active and active[0][0] <= now:
            heapq.heappop(active)
        self._transmission_seq += 1
        heapq.heappush(active, (now + duration, self._transmission_seq, transmission))
        self.stats.transmissions += 1

        receptions: List[_Reception] = []
        stats = self.stats
        listeners = self._listeners
        active_receptions = self._active_receptions
        end = now + duration
        for receiver_id in self._nodes_in_range_of(origin, exclude=transmitter):
            reception = _Reception(frame, transmitter, receiver_id, now, end)
            stats.receptions_started += 1
            # Half-duplex: a node that is itself transmitting cannot receive.
            if listeners[receiver_id].is_transmitting():
                reception.collided = True
            # Overlap with any reception already in progress collides both.
            for other in active_receptions[receiver_id]:
                if other.end > now:
                    other.collided = True
                    reception.collided = True
            active_receptions[receiver_id].append(reception)
            receptions.append(reception)

        def finish() -> None:
            delivered_to_target = False
            is_unicast = not frame.is_broadcast
            target = frame.receiver
            for reception in receptions:
                # Every reception was appended in the loop above and is only
                # ever removed here, so it is always present.
                active_receptions[reception.receiver].remove(reception)
                if reception.collided:
                    stats.collisions += 1
                    continue
                stats.receptions_delivered += 1
                listeners[reception.receiver].radio_receive(frame, transmitter)
                if is_unicast and reception.receiver == target:
                    delivered_to_target = True
            if on_complete is not None:
                on_complete(delivered_to_target)

        self._simulator.call_in(duration, finish, 1)
        return duration
