"""A simplified CSMA/CA MAC with retries and link-layer loss reporting.

The MAC models the parts of 802.11 DCF the paper's evaluation depends on:

* a drop-tail interface queue of bounded length,
* carrier sensing with random binary-exponential backoff,
* unicast frames that are retried up to a retry limit and reported to the
  routing protocol as a *link failure* when every retry fails (the paper's
  protocols — SRP, AODV, DSR, LDR — all use link-layer unicast loss detection
  instead of hello packets),
* broadcast frames sent once with a small random jitter and no retries, and
* per-node MAC drop counters (queue overflows plus retry exhaustion), the
  metric plotted in Fig. 3.

Collisions themselves are decided by the :class:`~repro.sim.channel.Channel`.

Two backoff models are implemented, selected by ``mac_model``
(:class:`~repro.sim.tuning.EngineTuning` wires it through ``build_network``):

``"poll"`` (default)
    The seed-faithful polling loop: while the medium is busy the MAC draws a
    random defer and re-senses after it, so a saturated channel costs tens
    of poll events per transmitted frame — ~85% of all events in a
    paper-tier SRP trial.  Bit-identical across every FastPaths setting.

``"frozen"``
    Event-driven freeze/resume: while the medium is busy the MAC schedules
    exactly one wake-up at the channel's *busy horizon* (the latest end time
    of any carrier-sensed transmission — the same certification the
    busy-until cache is built from), and counts its random backoff down only
    from an idle edge, re-freezing if the countdown is interrupted.  The
    poll storm disappears outright.  This is a *model* change — the backoff
    process differs, so trials are not bit-identical to the poll model — and
    its contract is the science gate (paper + faults registries) plus the
    A/B trajectory in EXPERIMENTS.md.  Within the frozen model, FastPaths
    on/off remains bit-identical.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Hashable, Optional

from .channel import Channel
from .engine import Simulator
from .packet import BROADCAST, Frame, Packet

__all__ = ["Mac", "MacStats"]

NodeId = Hashable

#: Callback signature used to hand received packets up to the routing layer.
ReceiveHandler = Callable[[Packet, NodeId], None]
#: Callback signature for unicast loss: (packet, intended next hop).
FailureHandler = Callable[[Packet, NodeId], None]


@dataclass(slots=True)
class MacStats:
    """Per-node MAC counters."""

    enqueued: int = 0
    transmitted_frames: int = 0
    delivered_unicasts: int = 0
    queue_drops: int = 0
    retry_drops: int = 0
    retries: int = 0
    #: Frames lost to a node crash (fault injection): queued frames dropped at
    #: power-down plus sends attempted while down.  Counted separately so
    #: Fig. 3's congestion-driven drop metric is not polluted by faults.
    fault_drops: int = 0

    @property
    def drops(self) -> int:
        """Total MAC-layer drops (queue overflow + retry exhaustion) — Fig. 3."""
        return self.queue_drops + self.retry_drops


class Mac:
    """One node's MAC instance; also the channel's :class:`RadioListener`."""

    def __init__(
        self,
        node_id: NodeId,
        simulator: Simulator,
        channel: Channel,
        rng: random.Random,
        *,
        position_provider: Callable[[], "tuple[float, float]"],
        use_fast_backoff: bool = True,
        use_frame_pool: bool = True,
        mac_model: str = "poll",
    ) -> None:
        self.node_id = node_id
        self._simulator = simulator
        self._channel = channel
        self._rng = rng
        # Bound-method caches for the per-attempt hot path (a trial makes
        # hundreds of thousands of backoff decisions).
        self._call_in = simulator.call_in
        self._randint = rng.randint
        # The fast backoff path draws slots straight through the primitive
        # ``randint`` bottoms out in: ``randint(a, b)`` is exactly
        # ``a + _randbelow(b - a + 1)``, and ``Random._randbelow`` is the
        # rejection loop over ``getrandbits(n.bit_length())``.  Re-running
        # that loop inline with a precomputed bit length consumes the
        # identical underlying getrandbits draws, so the slot sequence is
        # bit-identical while skipping three layers of dispatch per draw.
        # Only exact for random.Random itself (a subclass could override
        # the primitives), hence the type check.
        self._use_fast_backoff = use_fast_backoff and type(rng) is random.Random
        if mac_model not in ("poll", "frozen"):
            raise ValueError(
                f"unknown MAC model {mac_model!r}; expected 'poll' or 'frozen'"
            )
        self._use_frozen = mac_model == "frozen"
        # Free list of Frame objects (recycled once off the air).
        self._frame_pool: "list[Frame]" = []
        self._use_frame_pool = use_frame_pool
        self._position_provider = position_provider
        self._phy = channel.phy
        # Contention windows per attempt, precomputed: the window formula sits
        # on the per-attempt hot path and is pure in `attempt`, which never
        # exceeds retry_limit + 1.
        self._windows = tuple(
            min(self._phy.min_contention_window * (2**attempt),
                self._phy.max_contention_window)
            for attempt in range(self._phy.retry_limit + 2)
        )
        self._slot_time = self._phy.slot_time_s
        self._queue: Deque[Frame] = deque()
        self._busy = False
        self._transmitting_until = 0.0
        # Fault-injection lifecycle.  `_epoch` increments at every power-down;
        # deferred backoff/retry closures capture the epoch they were created
        # in and abort on mismatch, so a rebooted MAC never executes a stale
        # continuation against a dropped frame.  Without faults the epoch is
        # constant and every guard is a no-op (no RNG draw, no event change).
        self._down = False
        self._epoch = 0
        self._receive_handler: Optional[ReceiveHandler] = None
        self._failure_handler: Optional[FailureHandler] = None
        self.stats = MacStats()
        channel.attach(self)

    # -- wiring --------------------------------------------------------------------

    def set_handlers(
        self, on_receive: ReceiveHandler, on_failure: FailureHandler
    ) -> None:
        """Install the routing layer's receive and link-failure callbacks."""
        self._receive_handler = on_receive
        self._failure_handler = on_failure

    # -- RadioListener interface ------------------------------------------------------

    def position(self) -> "tuple[float, float]":
        """Current node position, supplied by the owning node's mobility model."""
        return self._position_provider()

    def is_transmitting(self) -> bool:
        """True while this radio is on the air (half-duplex check)."""
        return self._simulator.now < self._transmitting_until

    def radio_receive(self, frame: Frame, transmitter: NodeId) -> None:
        """Called by the channel for each successfully decoded frame."""
        if self._down:
            return
        receiver = frame.receiver
        if receiver is BROADCAST or receiver == self.node_id:
            if self._receive_handler is not None:
                self._receive_handler(frame.packet, transmitter)

    # -- transmit path -----------------------------------------------------------------

    def power_down(self) -> None:
        """Fault injection: the node crashes.

        Queued frames are lost (counted as ``fault_drops``, not Fig. 3
        drops), the radio stops mid-transmission, and every outstanding
        backoff/retry continuation is invalidated via the epoch bump.
        """
        if self._down:
            return
        self._down = True
        self._epoch += 1
        self.stats.fault_drops += len(self._queue)
        self._queue.clear()
        self._busy = False
        self._transmitting_until = 0.0

    def power_up(self) -> None:
        """Fault injection: the node reboots with an empty interface queue."""
        self._down = False

    def send(self, packet: Packet, next_hop: Optional[NodeId]) -> None:
        """Queue ``packet`` for transmission to ``next_hop`` (``None`` = broadcast)."""
        if self._down:
            self.stats.fault_drops += 1
            return
        if len(self._queue) >= self._phy.max_queue_length:
            self.stats.queue_drops += 1
            return
        pool = self._frame_pool
        if pool:
            frame = pool.pop().reinit(
                packet, self.node_id, next_hop, self._simulator.now
            )
        else:
            frame = Frame(
                packet=packet,
                transmitter=self.node_id,
                receiver=next_hop,
                enqueued_at=self._simulator.now,
            )
        self._queue.append(frame)
        self.stats.enqueued += 1
        self._try_dequeue()

    @property
    def queue_length(self) -> int:
        """Frames currently waiting for the channel."""
        return len(self._queue)

    def _try_dequeue(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        frame = self._queue[0]
        self._attempt(frame, attempt=0)

    def _attempt(self, frame: Frame, attempt: int, epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch:
            return
        if self._use_frozen:
            self._frozen_attempt(frame, attempt)
            return
        if self._use_fast_backoff:
            self._fast_attempt(frame, attempt)
            return
        if self._channel.is_busy_near(self.node_id):
            self._defer(frame, attempt)
            return
        # Random pre-transmission jitter breaks synchronisation of broadcast
        # floods (every node relaying the same RREQ at the same instant).
        jitter_slots = self._randint(0, self._windows[attempt])
        epoch_now = self._epoch
        self._call_in(
            jitter_slots * self._slot_time,
            lambda: self._transmit(frame, attempt, epoch_now),
        )

    def _fast_attempt(self, frame: Frame, attempt: int) -> None:
        """The backoff loop as two closures reused across every defer.

        A saturated channel makes tens of defer polls per transmitted frame,
        and the slow path pays for each with a fresh lambda, a dispatch
        through ``_attempt``/``_defer``, three layers of ``randint``
        validation and the ``call_in`` wrapper.  Here one ``poll``/``fire``
        closure pair serves the whole (frame, attempt), slots come from the
        inlined ``_randbelow`` rejection loop with the bit length
        precomputed (the window is a per-attempt constant), and entries go
        straight onto the engine heap via
        :meth:`~repro.sim.engine.Simulator.hot_scheduler`.  The decision
        sequence, the RNG draws, the scheduled (time, priority, sequence)
        entries and the global scheduling order are identical to the slow
        path:

        * defer  = ``randint(1, w)``  = ``1 + _randbelow(w)``
        * jitter = ``randint(0, w)``  = ``_randbelow(w + 1)``
        * ``_randbelow(n)`` = ``getrandbits(n.bit_length())`` redrawn while
          ``>= n``
        """
        epoch = self._epoch
        window = self._windows[attempt]
        defer_bits = window.bit_length()
        jitter_n = window + 1
        jitter_bits = jitter_n.bit_length()
        slot = self._slot_time
        getrandbits = self._rng.getrandbits
        is_busy_near = self._channel.is_busy_near
        # The channel's busy-until cache, consulted inline: a hit answers
        # the carrier-sense question from one dict lookup (the cache is
        # exact — see Channel.is_busy_near); a miss falls through to the
        # full call.  Disabled cache => empty dict => always falls through.
        busy_until = self._channel.busy_until_view().get
        node_id = self.node_id
        simulator = self._simulator
        push, next_sequence = simulator.hot_scheduler()

        def poll() -> None:
            if self._epoch != epoch:
                return
            now = simulator.now
            if now < busy_until(node_id, 0.0) or is_busy_near(node_id):
                r = getrandbits(defer_bits)
                while r >= window:
                    r = getrandbits(defer_bits)
                push(((1 + r) * slot + now, 0, next_sequence(), poll))
            else:
                r = getrandbits(jitter_bits)
                while r >= jitter_n:
                    r = getrandbits(jitter_bits)
                push((r * slot + now, 0, next_sequence(), fire))

        def fire() -> None:
            if self._epoch != epoch:
                return
            now = simulator.now
            if now < busy_until(node_id, 0.0) or is_busy_near(node_id):
                r = getrandbits(defer_bits)
                while r >= window:
                    r = getrandbits(defer_bits)
                push(((1 + r) * slot + now, 0, next_sequence(), poll))
            else:
                self._transmit_frame(frame, attempt)

        poll()

    def _frozen_attempt(self, frame: Frame, attempt: int) -> None:
        """The event-driven freeze/resume backoff (``mac_model="frozen"``).

        One ``resume``/``fire`` closure pair serves the whole (frame,
        attempt), like the poll model's fast path — but a busy medium costs
        *no events at all*: the MAC registers ``resume`` as a channel
        sleeper (:meth:`~repro.sim.channel.Channel.freeze`) and the
        channel's own end-of-transmission finish events wake it at the
        first idle edge:

        * ``resume`` runs at an idle edge (or inline at the first attempt).
          Medium busy — freeze: register with the channel and wait, with
          **no RNG draw** (the counter is frozen).  Medium idle — draw the
          backoff ``randint(0, w)`` once and count it down in a single
          scheduled event.
        * ``fire`` runs when the countdown elapses.  Medium busy — the
          countdown was interrupted; freeze, and redraw at the next idle
          edge.  Medium idle — transmit.

        Contention resolution is DCF-shaped: every contender frozen on one
        transmission wakes at the same idle edge and draws an independent
        backoff, so the earliest draw wins the channel and equal draws
        collide.  The draw uses the same inlined ``_randbelow`` rejection
        loop as the fast poll path (or ``randint`` with fast backoff
        disabled — identical draw sequence), so within the frozen model a
        trial is bit-identical across every FastPaths setting.
        """
        epoch = self._epoch
        window = self._windows[attempt]
        jitter_n = window + 1
        slot = self._slot_time
        node_id = self.node_id
        simulator = self._simulator
        channel = self._channel
        busy_horizon = channel.busy_horizon
        freeze = channel.freeze
        push, next_sequence = simulator.hot_scheduler()
        if self._use_fast_backoff:
            getrandbits = self._rng.getrandbits
            jitter_bits = jitter_n.bit_length()

            def draw() -> int:
                r = getrandbits(jitter_bits)
                while r >= jitter_n:
                    r = getrandbits(jitter_bits)
                return r
        else:
            randint = self._randint

            def draw() -> int:
                return randint(0, window)

        def on_idle() -> None:
            # Called by the channel's wake-check at a *verified* idle edge
            # (and only there), so the countdown starts without re-checking.
            if self._epoch != epoch:
                return
            push((draw() * slot + simulator.now, 0, next_sequence(), fire))

        def fire() -> None:
            if self._epoch != epoch:
                return
            now = simulator.now
            horizon = busy_horizon(node_id)
            if horizon > now:
                # Interrupted countdown: freeze; redraw at the next idle
                # edge the channel wakes us at.
                freeze(node_id, horizon, on_idle)
            else:
                self._transmit_frame(frame, attempt)

        now = simulator.now
        horizon = busy_horizon(node_id)
        if horizon > now:
            freeze(node_id, horizon, on_idle)
        else:
            push((draw() * slot + now, 0, next_sequence(), fire))

    def _defer(self, frame: Frame, attempt: int) -> None:
        backoff_slots = self._randint(1, self._windows[attempt])
        epoch_now = self._epoch
        self._call_in(
            backoff_slots * self._slot_time,
            lambda: self._attempt(frame, attempt, epoch_now),
        )

    def _transmit(
        self, frame: Frame, attempt: int, epoch: Optional[int] = None
    ) -> None:
        if epoch is not None and epoch != self._epoch:
            return
        if self._channel.is_busy_near(self.node_id):
            self._defer(frame, attempt)
            return
        self._transmit_frame(frame, attempt)

    def _transmit_frame(self, frame: Frame, attempt: int) -> None:
        """Put the frame on the air (the channel was just sensed idle)."""
        duration = self._channel.airtime(frame)
        self._transmitting_until = self._simulator.now + duration
        self.stats.transmitted_frames += 1
        frame.packet.hops += 1
        if attempt > 0:
            self.stats.retries += 1

        if frame.is_broadcast:
            self._channel.transmit(self.node_id, frame)
            self._finish_frame()
            return

        epoch = self._epoch

        def on_complete(success: bool) -> None:
            if self._epoch != epoch:
                # The node crashed while the frame was on the air: the
                # power-down already reset the queue and busy state, and the
                # retry chain must not resurrect the abandoned frame.
                return
            if success:
                self.stats.delivered_unicasts += 1
                self._finish_frame()
            elif attempt + 1 <= self._phy.retry_limit:
                self._attempt(frame, attempt + 1)
            else:
                self.stats.retry_drops += 1
                self._finish_frame()
                if self._failure_handler is not None:
                    self._failure_handler(frame.packet, frame.receiver)

        self._channel.transmit(self.node_id, frame, on_complete)

    def _finish_frame(self) -> None:
        """The head-of-line frame is done (delivered, dropped, or broadcast)."""
        epoch = self._epoch

        def proceed() -> None:
            if self._epoch != epoch:
                return
            if self._queue:
                frame = self._queue.popleft()
                if self._use_frame_pool:
                    # The channel's end-of-air-time completion ran at this
                    # timestamp with priority 1, before this priority-2
                    # callback: every reception of the frame is settled and
                    # nothing will read it again.
                    self._frame_pool.append(frame)
            self._busy = False
            self._try_dequeue()

        # Wait out our own air time before starting the next frame.
        remaining = max(self._transmitting_until - self._simulator.now, 0.0)
        self._call_in(remaining, proceed, 2)
