"""A simplified CSMA/CA MAC with retries and link-layer loss reporting.

The MAC models the parts of 802.11 DCF the paper's evaluation depends on:

* a drop-tail interface queue of bounded length,
* carrier sensing with random binary-exponential backoff,
* unicast frames that are retried up to a retry limit and reported to the
  routing protocol as a *link failure* when every retry fails (the paper's
  protocols — SRP, AODV, DSR, LDR — all use link-layer unicast loss detection
  instead of hello packets),
* broadcast frames sent once with a small random jitter and no retries, and
* per-node MAC drop counters (queue overflows plus retry exhaustion), the
  metric plotted in Fig. 3.

Collisions themselves are decided by the :class:`~repro.sim.channel.Channel`.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Hashable, Optional

from .channel import Channel
from .engine import Simulator
from .packet import BROADCAST, Frame, Packet

__all__ = ["Mac", "MacStats"]

NodeId = Hashable

#: Callback signature used to hand received packets up to the routing layer.
ReceiveHandler = Callable[[Packet, NodeId], None]
#: Callback signature for unicast loss: (packet, intended next hop).
FailureHandler = Callable[[Packet, NodeId], None]


@dataclass
class MacStats:
    """Per-node MAC counters."""

    enqueued: int = 0
    transmitted_frames: int = 0
    delivered_unicasts: int = 0
    queue_drops: int = 0
    retry_drops: int = 0
    retries: int = 0

    @property
    def drops(self) -> int:
        """Total MAC-layer drops (queue overflow + retry exhaustion) — Fig. 3."""
        return self.queue_drops + self.retry_drops


class Mac:
    """One node's MAC instance; also the channel's :class:`RadioListener`."""

    def __init__(
        self,
        node_id: NodeId,
        simulator: Simulator,
        channel: Channel,
        rng: random.Random,
        *,
        position_provider: Callable[[], "tuple[float, float]"],
    ) -> None:
        self.node_id = node_id
        self._simulator = simulator
        self._channel = channel
        self._rng = rng
        # Bound-method caches for the per-attempt hot path (a trial makes
        # hundreds of thousands of backoff decisions).
        self._call_in = simulator.call_in
        self._randint = rng.randint
        self._position_provider = position_provider
        self._phy = channel.phy
        # Contention windows per attempt, precomputed: the window formula sits
        # on the per-attempt hot path and is pure in `attempt`, which never
        # exceeds retry_limit + 1.
        self._windows = tuple(
            min(self._phy.min_contention_window * (2**attempt),
                self._phy.max_contention_window)
            for attempt in range(self._phy.retry_limit + 2)
        )
        self._slot_time = self._phy.slot_time_s
        self._queue: Deque[Frame] = deque()
        self._busy = False
        self._transmitting_until = 0.0
        self._receive_handler: Optional[ReceiveHandler] = None
        self._failure_handler: Optional[FailureHandler] = None
        self.stats = MacStats()
        channel.attach(self)

    # -- wiring --------------------------------------------------------------------

    def set_handlers(
        self, on_receive: ReceiveHandler, on_failure: FailureHandler
    ) -> None:
        """Install the routing layer's receive and link-failure callbacks."""
        self._receive_handler = on_receive
        self._failure_handler = on_failure

    # -- RadioListener interface ------------------------------------------------------

    def position(self) -> "tuple[float, float]":
        """Current node position, supplied by the owning node's mobility model."""
        return self._position_provider()

    def is_transmitting(self) -> bool:
        """True while this radio is on the air (half-duplex check)."""
        return self._simulator.now < self._transmitting_until

    def radio_receive(self, frame: Frame, transmitter: NodeId) -> None:
        """Called by the channel for each successfully decoded frame."""
        receiver = frame.receiver
        if receiver is BROADCAST or receiver == self.node_id:
            if self._receive_handler is not None:
                self._receive_handler(frame.packet, transmitter)

    # -- transmit path -----------------------------------------------------------------

    def send(self, packet: Packet, next_hop: Optional[NodeId]) -> None:
        """Queue ``packet`` for transmission to ``next_hop`` (``None`` = broadcast)."""
        if len(self._queue) >= self._phy.max_queue_length:
            self.stats.queue_drops += 1
            return
        frame = Frame(
            packet=packet,
            transmitter=self.node_id,
            receiver=next_hop,
            enqueued_at=self._simulator.now,
        )
        self._queue.append(frame)
        self.stats.enqueued += 1
        self._try_dequeue()

    @property
    def queue_length(self) -> int:
        """Frames currently waiting for the channel."""
        return len(self._queue)

    def _try_dequeue(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        frame = self._queue[0]
        self._attempt(frame, attempt=0)

    def _attempt(self, frame: Frame, attempt: int) -> None:
        if self._channel.is_busy_near(self.node_id):
            self._defer(frame, attempt)
            return
        # Random pre-transmission jitter breaks synchronisation of broadcast
        # floods (every node relaying the same RREQ at the same instant).
        jitter_slots = self._randint(0, self._windows[attempt])
        self._call_in(
            jitter_slots * self._slot_time, lambda: self._transmit(frame, attempt)
        )

    def _defer(self, frame: Frame, attempt: int) -> None:
        backoff_slots = self._randint(1, self._windows[attempt])
        self._call_in(
            backoff_slots * self._slot_time, lambda: self._attempt(frame, attempt)
        )

    def _transmit(self, frame: Frame, attempt: int) -> None:
        if self._channel.is_busy_near(self.node_id):
            self._defer(frame, attempt)
            return
        duration = self._phy.transmission_time(frame)
        self._transmitting_until = self._simulator.now + duration
        self.stats.transmitted_frames += 1
        frame.packet.hops += 1
        if attempt > 0:
            self.stats.retries += 1

        if frame.is_broadcast:
            self._channel.transmit(self.node_id, frame)
            self._finish_frame()
            return

        def on_complete(success: bool) -> None:
            if success:
                self.stats.delivered_unicasts += 1
                self._finish_frame()
            elif attempt + 1 <= self._phy.retry_limit:
                self._attempt(frame, attempt + 1)
            else:
                self.stats.retry_drops += 1
                self._finish_frame()
                if self._failure_handler is not None:
                    self._failure_handler(frame.packet, frame.receiver)

        self._channel.transmit(self.node_id, frame, on_complete)

    def _finish_frame(self) -> None:
        """The head-of-line frame is done (delivered, dropped, or broadcast)."""

        def proceed() -> None:
            if self._queue:
                self._queue.popleft()
            self._busy = False
            self._try_dequeue()

        # Wait out our own air time before starting the next frame.
        remaining = max(self._transmitting_until - self._simulator.now, 0.0)
        self._call_in(remaining, proceed, 2)
