"""Deterministic fault injection: node churn, blackouts, partitions, loss bursts.

The paper's evaluation assumes a well-behaved world, yet the protocols under
study exist precisely to survive disruption.  This module makes disruption a
first-class, *seeded* part of a scenario: a :class:`FaultSpec` declares one
fault window, a :class:`Scenario` carries a tuple of them (serialized with the
scenario, so job content keys capture the fault plan), and
:class:`FaultSchedule` compiles the specs into ordinary simulator events at
build time.  Four fault kinds are modelled:

* ``node_crash`` — one node powers off for a window: its MAC drops the
  queued frames (counted separately from Fig. 3's drops), stops receiving,
  and the routing protocol is told to forget its volatile state
  (:meth:`~repro.protocols.base.RoutingProtocol.on_node_down`); on recovery
  the node reboots with empty tables.
* ``blackout`` — the whole channel goes deaf for a window (no frame reaches
  any receiver; carrier sense still works, as in a jammed band).
* ``partition`` — a vertical line splits the terrain: frames whose endpoints
  straddle ``boundary_x`` are suppressed while the window is active.
* ``loss_burst`` — every candidate reception is independently dropped with
  ``drop_rate`` using the dedicated ``"faults"`` RNG stream, so fault noise
  never perturbs the mobility/traffic/MAC streams.

Determinism and the off-path contract
-------------------------------------

Fault flips are scheduled with priority :data:`FAULT_PRIORITY` (below every
normal event) at build time, before any traffic event, so the event order is a
pure function of the scenario.  When a scenario declares **no** faults,
nothing here is ever constructed and the channel/MAC hot paths execute the
exact instruction sequence they always did — the bit-identity tests in
``tests/sim/test_faults.py`` enforce that the fault layer is precisely
off-path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PRIORITY",
    "FaultSpec",
    "FaultSchedule",
    "ChannelFaults",
    "FAULT_PRESETS",
    "fault_preset",
]

NodeId = Hashable

#: The recognised fault kinds, in documentation order.
FAULT_KINDS: Tuple[str, ...] = ("node_crash", "blackout", "partition", "loss_burst")

#: Scheduling priority of fault flips: below priority 0 (MAC/traffic), so a
#: fault taking effect at time t is visible to every normal event at t.
FAULT_PRIORITY = -1


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One declarative fault window.

    ``kind`` selects the model; ``node`` (node_crash), ``boundary_x``
    (partition) and ``drop_rate`` (loss_burst) are kind-specific.  Specs are
    part of the scenario's serialized identity, so every field is written by
    :meth:`to_dict` and validated on construction.
    """

    kind: str
    start: float
    duration: float
    node: Optional[int] = None
    boundary_x: Optional[float] = None
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.start < 0:
            raise ValueError("fault start must be non-negative")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")
        if self.kind == "node_crash" and self.node is None:
            raise ValueError("node_crash faults need a node id")
        if self.kind == "partition" and self.boundary_x is None:
            raise ValueError("partition faults need a boundary_x")
        if self.kind == "loss_burst" and not 0.0 < self.drop_rate <= 1.0:
            raise ValueError("loss_burst faults need a drop_rate in (0, 1]")

    @property
    def end(self) -> float:
        """The instant the fault heals."""
        return self.start + self.duration

    # -- constructors ------------------------------------------------------------

    @classmethod
    def node_crash(cls, *, node: int, start: float, duration: float) -> "FaultSpec":
        """Node ``node`` powers off at ``start`` and reboots ``duration`` later."""
        return cls(kind="node_crash", start=start, duration=duration, node=node)

    @classmethod
    def blackout(cls, *, start: float, duration: float) -> "FaultSpec":
        """No frame reaches any receiver while the window is active."""
        return cls(kind="blackout", start=start, duration=duration)

    @classmethod
    def partition(
        cls, *, boundary_x: float, start: float, duration: float
    ) -> "FaultSpec":
        """Frames crossing the vertical line ``x = boundary_x`` are suppressed."""
        return cls(
            kind="partition", start=start, duration=duration, boundary_x=boundary_x
        )

    @classmethod
    def loss_burst(
        cls, *, drop_rate: float, start: float, duration: float
    ) -> "FaultSpec":
        """Each candidate reception is dropped with ``drop_rate`` while active."""
        return cls(
            kind="loss_burst", start=start, duration=duration, drop_rate=drop_rate
        )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict of every field (part of the scenario identity)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild a spec written by :meth:`to_dict`."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault spec fields: {sorted(unknown)}")
        return cls(**dict(data))


class ChannelFaults:
    """The O(1)-consultable runtime fault state the channel reads per reception.

    One instance exists per trial *only when the scenario declares faults*;
    the channel holds ``None`` otherwise and never takes the branch.  All
    mutation happens through the flip callbacks :class:`FaultSchedule`
    schedules, so membership checks are plain set/int/list reads.
    """

    __slots__ = ("down", "blackout_depth", "partitions", "loss_rates", "_random")

    def __init__(self, rng: random.Random) -> None:
        #: Node ids currently powered off.
        self.down: Set[NodeId] = set()
        #: Number of concurrently active blackout windows.
        self.blackout_depth = 0
        #: Active partition boundaries (x coordinates).
        self.partitions: List[float] = []
        #: Active loss-burst drop rates, in activation order.
        self.loss_rates: List[float] = []
        self._random = rng.random

    def reseed(self, rng: random.Random) -> None:
        """Swap the loss-draw RNG (windowed process mode: per-shard streams).

        Only loss-burst draws consume this RNG at runtime; crash, blackout
        and partition flips are pre-scheduled deterministic events, so
        reseeding changes nothing for plans without loss bursts.
        """
        self._random = rng.random

    @property
    def any_active(self) -> bool:
        """True while at least one fault window is in effect."""
        return bool(
            self.down or self.blackout_depth or self.partitions or self.loss_rates
        )

    def blocked(
        self,
        transmitter: NodeId,
        receiver: NodeId,
        position_of: Callable[[NodeId], Tuple[float, float]],
    ) -> bool:
        """Should the reception ``transmitter -> receiver`` be suppressed now?

        Called once per candidate reception while any fault window is near;
        each check is O(active faults).  Loss-burst draws come from the
        dedicated fault RNG stream, in reception-loop order, which is
        identical across fast-path configurations (the reception sets are).
        """
        down = self.down
        if down and (transmitter in down or receiver in down):
            return True
        if self.blackout_depth:
            return True
        if self.partitions:
            tx = position_of(transmitter)[0]
            rx = position_of(receiver)[0]
            for boundary in self.partitions:
                if (tx < boundary) != (rx < boundary):
                    return True
        if self.loss_rates:
            for rate in self.loss_rates:
                if self._random() < rate:
                    return True
        return False


class FaultSchedule:
    """The compiled fault plan of one trial.

    Construction validates the specs; :meth:`install` wires them into a
    running network by scheduling the down/up flips as simulator events (at
    :data:`FAULT_PRIORITY`, before any same-instant traffic) and installing
    the shared :class:`ChannelFaults` state on the channel.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        if not specs:
            raise ValueError("a fault schedule needs at least one spec")
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)

    def activity_windows(self) -> Tuple[Tuple[float, float], ...]:
        """The merged, sorted ``(start, end)`` windows with any fault active."""
        intervals = sorted((spec.start, spec.end) for spec in self.specs)
        merged: List[Tuple[float, float]] = [intervals[0]]
        for start, end in intervals[1:]:
            last_start, last_end = merged[-1]
            if start <= last_end:
                merged[-1] = (last_start, max(last_end, end))
            else:
                merged.append((start, end))
        return tuple(merged)

    def heal_time(self) -> float:
        """The instant the last fault window closes (all faults healed)."""
        return max(spec.end for spec in self.specs)

    def install(
        self, simulator, channel, nodes, *, rng: random.Random
    ) -> ChannelFaults:
        """Schedule every fault flip and attach the runtime state to the channel."""
        state = ChannelFaults(rng)
        channel.install_faults(state)
        for spec in self.specs:
            if spec.kind == "node_crash":
                node = nodes.get(spec.node)
                if node is None:
                    raise ValueError(
                        f"fault names unknown node {spec.node!r} "
                        f"(scenario has nodes {0}..{len(nodes) - 1})"
                    )
                self._flip(
                    simulator,
                    spec,
                    down=lambda node=node: (
                        state.down.add(node.node_id),
                        node.go_down(),
                    ),
                    up=lambda node=node: (
                        state.down.discard(node.node_id),
                        node.go_up(),
                    ),
                )
            elif spec.kind == "blackout":
                self._flip(
                    simulator,
                    spec,
                    down=lambda: setattr(
                        state, "blackout_depth", state.blackout_depth + 1
                    ),
                    up=lambda: setattr(
                        state, "blackout_depth", state.blackout_depth - 1
                    ),
                )
            elif spec.kind == "partition":
                boundary = spec.boundary_x
                self._flip(
                    simulator,
                    spec,
                    down=lambda boundary=boundary: state.partitions.append(boundary),
                    up=lambda boundary=boundary: state.partitions.remove(boundary),
                )
            else:  # loss_burst (FAULT_KINDS is closed; __post_init__ validated)
                rate = spec.drop_rate
                self._flip(
                    simulator,
                    spec,
                    down=lambda rate=rate: state.loss_rates.append(rate),
                    up=lambda rate=rate: state.loss_rates.remove(rate),
                )
        return state

    @staticmethod
    def split_for_shards(seed: int, shard_count: int) -> "List[random.Random]":
        """Independent per-shard loss-draw streams for the windowed mode.

        Each shard's stream derives from the trial seed and the shard index
        (via the same sha256 derivation every named stream uses), so the
        split is a pure function of ``(seed, shard_count)``: re-running the
        same windowed trial replays identical draws, and no shard's draws
        depend on another shard's reception interleaving.  The serial
        engine's single shared stream interleaves draws across the whole
        terrain, so the split is part of the windowed *model* — validated
        by the faults gate, not bit-identity.
        """
        from .rng import RngStreams

        streams = RngStreams(seed)
        return [streams.get(f"faults:shard{index}") for index in range(shard_count)]

    @staticmethod
    def _flip(simulator, spec: FaultSpec, *, down, up) -> None:
        # The sharded PDES backend exposes fault_context: flips execute in
        # their target's shard (a crash in shard 2 is a cross-shard fault
        # event when scheduled from the coordinator) and are counted at the
        # seam.  The wrap changes no RNG draw and no schedule entry, so
        # faulted trials stay bit-identical across backends; the serial
        # engine has no such attribute and schedules the bare flips.
        fault_context = getattr(simulator, "fault_context", None)
        if fault_context is not None:
            down = fault_context(spec, down)
            up = fault_context(spec, up)
        simulator.schedule_at(spec.start, down, priority=FAULT_PRIORITY)
        # The up flip may land beyond the trial duration; the engine simply
        # never reaches it, which models a fault that outlives the trial.
        simulator.schedule_at(spec.end, up, priority=FAULT_PRIORITY)


# -- presets -------------------------------------------------------------------------


def _churn_partition(scenario) -> Tuple[FaultSpec, ...]:
    """Two staggered node crashes plus a mid-trial terrain partition.

    Everything scales with the scenario: crashes cover 30%-65% of the trial,
    the partition splits the terrain down the middle for 15% of it, and all
    faults heal by 0.65 * duration so the post-heal window is substantial.
    """
    duration = scenario.duration
    return (
        FaultSpec.node_crash(node=1, start=0.30 * duration, duration=0.20 * duration),
        FaultSpec.node_crash(
            node=scenario.node_count // 2,
            start=0.45 * duration,
            duration=0.20 * duration,
        ),
        FaultSpec.partition(
            boundary_x=scenario.terrain_width / 2.0,
            start=0.50 * duration,
            duration=0.15 * duration,
        ),
    )


def _blackout_burst(scenario) -> Tuple[FaultSpec, ...]:
    """A short total blackout followed by a lossy recovery period."""
    duration = scenario.duration
    return (
        FaultSpec.blackout(start=0.40 * duration, duration=0.10 * duration),
        FaultSpec.loss_burst(
            drop_rate=0.3, start=0.50 * duration, duration=0.10 * duration
        ),
    )


#: Named fault plans, each a function of the scenario they will disrupt.
FAULT_PRESETS: Dict[str, Callable[[Any], Tuple[FaultSpec, ...]]] = {
    "churn-partition": _churn_partition,
    "blackout-burst": _blackout_burst,
}


def fault_preset(name: str, scenario) -> Tuple[FaultSpec, ...]:
    """The specs of preset ``name`` instantiated for ``scenario``."""
    try:
        preset = FAULT_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault preset {name!r}; expected one of {sorted(FAULT_PRESETS)}"
        ) from None
    return preset(scenario)
