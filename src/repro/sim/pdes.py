"""Spatially sharded conservative parallel discrete-event backend.

The serial engine runs one trial on one core.  This module shards the
terrain into ``K`` contiguous vertical strips (the same decomposition the
spatial grid uses, cell-aligned regions of the plane) and gives every shard
its own event queue — a :class:`~repro.sim.eventq.CalendarQueue` per shard —
so a trial's event population is spatially partitioned the way a
Chandy–Misra conservative PDES partitions it across logical processes.

Two execution modes share the decomposition:

**Threaded (in-process) mode** — :class:`ShardedSimulator`, the default for
``EngineTuning.engine_backend = "sharded"`` and the mode every correctness
test and CI job runs.  Each shard owns a real queue; events are routed to
the queue of the shard that *scheduled* them (delivery context switches per
cross-shard reception, so a node's event chain migrates to its owner shard),
and the run loop advances all shards together by popping the globally
least entry — a deterministic K-way merge over per-shard ``peek()``.
Because pop order is totally determined by ``(time, priority, sequence)``
and the merge always selects the global minimum, the executed event
sequence is *identical* to the serial engine's for any K: shard-count
invariance holds bit-for-bit by construction, and the window/barrier/
handoff machinery below is pure attribution and accounting on top of it.
The machinery is exactly what the process mode needs — bounded time
windows, barrier bookkeeping, boundary-event counting, mobility handoffs —
exercised deterministically so its costs are measurable (the profile's
``engine.sync`` layer) and its accounting testable.

**Process mode** — :func:`run_trial_sharded_processes`, shared-nothing
workers.  Two sub-modes share the entry point:

*Group mode* (instantaneous propagation, the exact path): with
``propagation_delay_s_per_m == 0`` the conservative lookahead between
radio-coupled shards collapses (see below), so true parallelism is only
available between shard **groups** that are radio-decoupled for the whole
trial.  Groups are the connected components of the carrier-sense
reachability graph over the initial (static) positions; each worker
deterministically rebuilds the full network from the scenario seed (RNG
streams are per-node, and the shared ``traffic`` stream is replayed
identically by every worker — foreign flows are "shadow" flows whose draws
are consumed but whose packets are never originated) and simulates only its
own groups' nodes.  Mobile scenarios roam the whole terrain and therefore
form one group; they fall back to a serial run, reported honestly.  Group
mode is *exact*: its ``TrialSummary`` matches the serial engine.

*Windowed mode* (finite propagation delay, the concurrent path): when the
scenario's PHY sets a positive ``propagation_delay_s_per_m`` the lookahead
is non-degenerate and radio-coupled strips can genuinely advance
concurrently.  One worker process per strip replays the full deterministic
network build, mutes receive paths of foreign nodes, restricts traffic
origination to its strip, and runs window-by-window; at each window
barrier workers exchange the boundary frames their owned nodes put on the
air (serialized packet snapshots over pipes) and replay the foreign ones
locally, each at its original transmit time shifted by exactly one window
so the originating strip's inter-frame spacing survives the exchange.
Like ``EngineTuning.mac_model="frozen"``, the windowed mode is a *model*
(cross-strip frames arrive one window late; fault RNG streams are split
per shard) validated by the science gate — paper and faults registries —
not by bit-identity.

Lookahead derivation
--------------------

The conservative window is ``lookahead = min propagation delay into a
neighboring shard + the carrier-sense busy horizon granularity``.  Under
the default PHY (:class:`~repro.sim.phy.PhyConfig`) propagation is
instantaneous — a frame put on the air at ``t`` is sensed and received at
``t`` anywhere inside the disk — so the propagation term is **zero**, and
the only lower bound left on cross-shard influence is the MAC's decision
granularity, one slot time (20 µs).  A 20 µs window is far below the mean
event spacing, so radio-coupled shards cannot be advanced concurrently
without violating the repo's bit-identity bar; the threaded mode therefore
merges deterministically (parallel in structure, serial in time), and the
process mode extracts exact concurrency only across decoupled groups.

With ``propagation_delay_s_per_m > 0`` the propagation term becomes
``delay * carrier_sense_range`` — the time a signal needs to sweep the
whole influence disk of a transmitter at the seam (any receiver closer
than the carrier-sense radius hears the leading edge sooner, but no MAC
decision anywhere in the neighbour strip can depend on the frame before
its own arrival, and the busy window a frame imposes ends no later than
``end + delay * distance``).  The window used for barrier accounting is
``max(lookahead, frame_overhead_s)`` so one window spans at least a
frame's fixed overhead; the *process* windowed mode additionally floors
the exchange cadence at :data:`PROCESS_WINDOW_FLOOR_S` because a
microsecond-scale pipe round-trip would drown the concurrency it buys —
that floor is part of the model the science gate validates.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from .engine import Event, Simulator
from .eventq import CalendarQueue
from .stats import TrialStats, TrialSummary

__all__ = [
    "ShardPlan",
    "PdesSync",
    "ShardedSimulator",
    "PdesError",
    "radio_groups",
    "ProcessRunReport",
    "run_trial_sharded_processes",
    "PROCESS_WINDOW_FLOOR_S",
]

NodeId = Hashable

#: One queue entry, exactly the engine's shape.
_Entry = Tuple[float, int, int, object]


class PdesError(RuntimeError):
    """Raised when a PDES execution mode cannot honour its contract."""


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """The spatial decomposition of one trial: K contiguous vertical strips.

    ``boundaries`` are the K-1 interior seam x-coordinates; ``lookahead``
    and ``window`` carry the conservative-synchronization derivation from
    the module docstring (propagation delay across a neighbor's influence
    disk — zero under the default instantaneous PHY, ``delay * cs_range``
    under the finite-delay variant — plus the carrier-sense horizon
    granularity, one slot).
    ``refresh_interval`` is how often mobility can require an ownership
    refresh: a node needs ``strip_width / 4 / max_speed`` seconds to cross
    a quarter strip, so refreshing at that cadence bounds attribution
    staleness the same way the channel bounds grid-snapshot staleness.
    """

    shard_count: int
    terrain_width: float
    strip_width: float
    boundaries: Tuple[float, ...]
    lookahead: float
    window: float
    refresh_interval: float

    @classmethod
    def for_scenario(cls, scenario, shard_count: int) -> "ShardPlan":
        """The plan for ``scenario`` sharded ``shard_count`` ways."""
        if shard_count < 1:
            raise ValueError(f"shard count must be >= 1, got {shard_count}")
        width = float(scenario.terrain_width)
        strip = width / shard_count
        phy = scenario.phy
        # The propagation term is the time a seam transmission needs to
        # sweep its whole influence disk (delay * carrier-sense radius);
        # zero under the default instantaneous PHY.  The slot time is the
        # finest granularity at which a neighboring shard's carrier-sense
        # state can influence a MAC decision.
        propagation_delay = phy.propagation_delay_s_per_m * phy.carrier_sense_range
        lookahead = propagation_delay + phy.slot_time_s
        window = max(lookahead, phy.frame_overhead_s)
        max_speed = max(float(scenario.max_speed), 0.0)
        if max_speed > 0.0 and shard_count > 1:
            refresh = max(strip / 4.0 / max_speed, window)
        else:
            refresh = float("inf")
        return cls(
            shard_count=shard_count,
            terrain_width=width,
            strip_width=strip,
            boundaries=tuple(strip * i for i in range(1, shard_count)),
            lookahead=lookahead,
            window=window,
            refresh_interval=refresh,
        )

    def shard_of_x(self, x: float) -> int:
        """The shard owning x-coordinate ``x`` (edges clamp into range)."""
        shard = int(x / self.strip_width) if self.strip_width > 0.0 else 0
        if shard < 0:
            return 0
        last = self.shard_count - 1
        return last if shard > last else shard

    def shard_of_position(self, position) -> int:
        """The shard owning a :class:`~repro.sim.space.Position`."""
        return self.shard_of_x(position.x)


@dataclass
class PdesSync:
    """Synchronization accounting of one sharded run.

    ``executed_by_shard`` attributes every executed event to the shard whose
    queue held it; the boundary counters record cross-shard effects (a
    reception delivered into a different owner's shard, a busy-until
    certification seeded across a seam, a fault flip landing outside the
    coordinator shard); ``handoffs`` counts ownership changes from mobility
    refreshes; ``windows``/``barrier_seconds`` measure the window-barrier
    bookkeeping itself — the quantity the profile's ``engine.sync`` layer
    makes visible.
    """

    shard_count: int = 1
    executed_by_shard: List[int] = field(default_factory=list)
    windows: int = 0
    handoffs: int = 0
    boundary_receptions: int = 0
    boundary_busy_marks: int = 0
    boundary_faults: int = 0
    barrier_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.executed_by_shard:
            self.executed_by_shard = [0] * self.shard_count

    def report(self) -> Dict[str, Any]:
        """A JSON-safe roll-up (attached to profiles and benchmark records).

        ``boundary_events`` totals the three seam-crossing counters — the
        traffic a process-mode execution would ship at barriers — and
        ``events_per_window`` is the mean window occupancy, the direct
        measure of how much concurrency a window actually exposes (a
        single-shard run reports zero windows, so occupancy is zero too
        rather than a misleading whole-trial figure).
        """
        executed = sum(self.executed_by_shard)
        boundary_events = (
            self.boundary_receptions + self.boundary_busy_marks + self.boundary_faults
        )
        return {
            "shard_count": self.shard_count,
            "executed_by_shard": list(self.executed_by_shard),
            "windows": self.windows,
            "handoffs": self.handoffs,
            "boundary_receptions": self.boundary_receptions,
            "boundary_busy_marks": self.boundary_busy_marks,
            "boundary_faults": self.boundary_faults,
            "boundary_events": boundary_events,
            "events_per_window": (
                round(executed / self.windows, 1) if self.windows else 0.0
            ),
            "barrier_seconds": round(self.barrier_seconds, 6),
        }


class _ShardHeap:
    """A plain binary heap with the CalendarQueue push/pop/peek surface.

    Backs a shard when ``event_queue="heap"`` so the sharded backend
    composes with both queue flavours (the equivalence matrix covers the
    cross product).
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[_Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: _Entry) -> None:
        heappush(self._heap, entry)

    def pop(self) -> Optional[_Entry]:
        return heappop(self._heap) if self._heap else None

    def peek(self) -> Optional[_Entry]:
        return self._heap[0] if self._heap else None


class ShardedSimulator(Simulator):
    """K per-shard event queues advanced by a deterministic global merge.

    Drop-in for :class:`~repro.sim.engine.Simulator`: the scheduling API is
    inherited unchanged — only ``_push`` is rerouted to the queue of the
    *current delivery context* shard, and the run loop pops the globally
    least entry across all shards (per-shard ``peek``, one pop).  The
    sequence number stays globally unique, so the executed event sequence —
    and therefore every trial outcome — is bit-identical to the serial
    engine for any shard count.  What changes is the structure: event
    populations are spatially partitioned, cross-shard effects are counted
    at the seams, window barriers and mobility handoffs run exactly where a
    distributed conservative execution would place them.
    """

    def __init__(self, plan: ShardPlan, *, event_queue: str = "calendar") -> None:
        super().__init__(event_queue=event_queue)
        self.plan = plan
        # Neutralise the serial fast path: the base run loop reads
        # _calendar._active directly, which must never engage here.
        self._calendar = None
        self._queue = []
        if event_queue == "calendar":
            self._queues: List[Any] = [
                CalendarQueue() for _ in range(plan.shard_count)
            ]
        else:
            self._queues = [_ShardHeap() for _ in range(plan.shard_count)]
        self._push = self._route_push
        self._current_shard = 0
        self._owner: Dict[NodeId, int] = {}
        self._providers: Dict[NodeId, Callable[[], Tuple[float, float]]] = {}
        self._next_refresh = float("inf")
        self.sync = PdesSync(shard_count=plan.shard_count)

    # -- routing -----------------------------------------------------------------

    def _route_push(self, entry: _Entry) -> None:
        """Queue ``entry`` in the current delivery context's shard."""
        self._queues[self._current_shard].push(entry)

    @property
    def pending_events(self) -> int:
        total = sum(len(queue) for queue in self._queues)
        return total - self._cancelled_pending

    # -- ownership ---------------------------------------------------------------

    def bind_nodes(
        self,
        initial_positions: Dict[NodeId, Tuple[float, float]],
        providers: Dict[NodeId, Callable[[], Tuple[float, float]]],
    ) -> None:
        """Install node → shard ownership from initial positions.

        ``providers`` yield live positions for the periodic ownership
        refresh; positions are pure functions of the simulation clock, so
        querying them at barrier times is exact (leg extension consumes the
        per-node mobility streams in leg order regardless of query time).
        """
        plan = self.plan
        self._owner = {
            node_id: plan.shard_of_position(position)
            for node_id, position in initial_positions.items()
        }
        self._providers = dict(providers)
        if self._providers and plan.refresh_interval != float("inf"):
            self._next_refresh = plan.refresh_interval

    def shard_of_node(self, node_id: NodeId) -> int:
        """The shard currently owning ``node_id`` (unknown nodes: shard 0)."""
        return self._owner.get(node_id, 0)

    def set_node_context(self, node_id: Optional[NodeId]) -> None:
        """Switch the delivery context to ``node_id``'s owner shard.

        ``None`` selects shard 0, the coordinator shard that owns global
        work (traffic flow starts, fault flips at their scheduling time).
        """
        self._current_shard = 0 if node_id is None else self._owner.get(node_id, 0)

    # -- channel probe ------------------------------------------------------------

    def deliver_context(self, transmitter: NodeId, receiver: NodeId) -> None:
        """Switch context to the receiver's shard for one frame delivery.

        Counted as a boundary event when the frame crosses a seam — this is
        the reception a process-mode execution would ship between workers
        at a window barrier.
        """
        owner = self._owner
        shard = owner.get(receiver, 0)
        if shard != owner.get(transmitter, 0):
            self.sync.boundary_receptions += 1
        self._current_shard = shard

    def note_busy_mark(self, transmitter: NodeId, receiver: NodeId) -> None:
        """Record a carrier-sense busy-until certification crossing a seam."""
        owner = self._owner
        if owner.get(receiver, 0) != owner.get(transmitter, 0):
            self.sync.boundary_busy_marks += 1

    def fault_context(self, spec, flip: Callable[[], None]) -> Callable[[], None]:
        """Wrap a fault flip so it executes in its target's shard context.

        Fault flips are scheduled at build time from the coordinator shard;
        a flip whose target (a crashing node, a partition seam) lives in
        another shard is a cross-shard fault event and counted as such.
        The wrap changes no RNG draw and no schedule entry, so faulted
        trials stay bit-identical to the serial engine.
        """

        def apply() -> None:
            shard = self._fault_target_shard(spec)
            if shard != self._current_shard:
                self.sync.boundary_faults += 1
                self._current_shard = shard
            flip()

        return apply

    def _fault_target_shard(self, spec) -> int:
        if spec.kind == "node_crash":
            return self._owner.get(spec.node, 0)
        if spec.kind == "partition":
            return self.plan.shard_of_x(spec.boundary_x)
        return 0  # blackout / loss_burst affect every shard; coordinator owns them

    # -- window barriers -----------------------------------------------------------

    def _window_barrier(self, time: float) -> None:
        """Per-window synchronization point: accounting plus ownership refresh.

        In the threaded mode this is where a distributed execution would
        block on its neighbors and exchange boundary events; here the merge
        already ordered everything globally, so the barrier's only real work
        is the mobility-driven ownership refresh — and its cost, measured
        into ``barrier_seconds``, is exactly the synchronization overhead
        the ``engine.sync`` profile layer reports.
        """
        started = perf_counter()
        sync = self.sync
        sync.windows += 1
        if time >= self._next_refresh:
            self._refresh_ownership()
            self._next_refresh = time + self.plan.refresh_interval
        sync.barrier_seconds += perf_counter() - started

    def _refresh_ownership(self) -> None:
        """Re-derive node → shard ownership from live positions (handoffs)."""
        shard_of_x = self.plan.shard_of_x
        owner = self._owner
        handoffs = 0
        # Providers use the mobility model's allocation-free tuple fast path.
        for node_id, provider in self._providers.items():
            shard = shard_of_x(provider()[0])
            if shard != owner[node_id]:
                owner[node_id] = shard
                handoffs += 1
        self.sync.handoffs += handoffs

    # -- execution -----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Advance all shards by popping the globally least entry each step.

        Same contract as :meth:`Simulator.run`; the executed sequence is
        identical because the merge always selects the minimum of the
        per-shard minima and the total order is unique.
        """
        event_class = Event
        self._running = True
        processed = self._processed
        queues = self._queues
        peeks = [queue.peek for queue in queues]
        pops = [queue.pop for queue in queues]
        executed = self.sync.executed_by_shard
        inv_window = 1.0 / self.plan.window
        window_index = -1
        # A single shard has no seams: no barrier could exchange anything,
        # so a K=1 run reports zero windows/barriers instead of a
        # misleading whole-trial window count.
        track_windows = self.plan.shard_count > 1
        try:
            while self._running:
                best: Optional[_Entry] = None
                best_shard = 0
                for shard, peek in enumerate(peeks):
                    entry = peek()
                    if entry is not None and (best is None or entry < best):
                        best = entry
                        best_shard = shard
                if best is None:
                    break
                time = best[0]
                if until is not None and time > until:
                    # Unlike the serial loop there is nothing to push back:
                    # the winner was only peeked, never popped.
                    break
                if track_windows:
                    w = int(time * inv_window)
                    if w != window_index:
                        window_index = w
                        self._window_barrier(time)
                pops[best_shard]()
                payload = best[3]
                self._current_shard = best_shard
                if payload.__class__ is event_class:
                    if payload.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    callback = payload.callback
                    payload.callback = None
                    self.now = time
                    processed += 1
                    executed[best_shard] += 1
                    callback()
                else:
                    self.now = time
                    processed += 1
                    executed[best_shard] += 1
                    payload()
        finally:
            self._processed = processed
        if until is not None and self.now < until:
            self.now = until
        self._running = False

    def _pop_entry(self) -> Optional[_Entry]:
        best: Optional[_Entry] = None
        best_shard = 0
        for shard, queue in enumerate(self._queues):
            entry = queue.peek()
            if entry is not None and (best is None or entry < best):
                best = entry
                best_shard = shard
        if best is None:
            return None
        self._queues[best_shard].pop()
        self._current_shard = best_shard
        return best


# -- process mode ---------------------------------------------------------------------


def radio_groups(scenario) -> List[Tuple[int, ...]]:
    """Radio-decoupled node groups of ``scenario`` at its initial positions.

    Connected components of the graph with an edge wherever two nodes are
    within carrier-sense range: nodes in different components can neither
    receive from nor defer to each other, so (for static positions) their
    event populations have *infinite* mutual lookahead and may be simulated
    independently.  Initial positions are re-drawn exactly as
    ``build_network`` draws them — per node id, from the shared ``mobility``
    stream — so the decomposition is a pure function of the scenario.
    """
    from .rng import RngStreams  # local import: keep module import light

    streams = RngStreams(scenario.seed)
    rng = streams.get("mobility")
    terrain = scenario.terrain
    positions = [terrain.random_position(rng) for _ in range(scenario.node_count)]
    cs_range = scenario.phy.carrier_sense_range
    parent = list(range(scenario.node_count))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i in range(scenario.node_count):
        xi, yi = positions[i].x, positions[i].y
        for j in range(i + 1, scenario.node_count):
            dx = positions[j].x - xi
            dy = positions[j].y - yi
            if (dx * dx + dy * dy) ** 0.5 <= cs_range:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri
    components: Dict[int, List[int]] = {}
    for node in range(scenario.node_count):
        components.setdefault(find(node), []).append(node)
    return sorted(
        (tuple(members) for members in components.values()), key=lambda c: c[0]
    )


@dataclass(frozen=True, slots=True)
class ProcessRunReport:
    """Outcome of a process-mode run: the summary plus how it was obtained."""

    summary: TrialSummary
    groups: Tuple[Tuple[int, ...], ...]
    workers_used: int
    #: Why the run degenerated to one serial worker, or ``None`` when the
    #: group decomposition actually fanned out.
    fallback_reason: Optional[str] = None
    #: ``"groups"`` (exact, radio-decoupled fan-out), ``"windowed"``
    #: (finite-delay barrier exchange) or ``"serial"`` (fallback).
    mode: str = "groups"
    #: Windowed-mode accounting: barrier windows executed, boundary frames
    #: shipped between workers, wall-clock seconds spent blocked at
    #: barriers (max across workers — the critical path), and total events
    #: executed across all workers.
    windows: int = 0
    boundary_frames: int = 0
    barrier_seconds: float = 0.0
    events_processed: int = 0


def _group_worker(args) -> TrialStats:
    """Simulate one worker's owned groups inside a full deterministic replica.

    The worker rebuilds the complete network from the scenario (identical
    RNG streams, identical build order), then starts only the owned nodes'
    protocols and restricts traffic origination to owned sources — foreign
    flows stay "shadow" flows: their endpoint/lifetime draws are consumed
    from the shared ``traffic`` stream in the identical order, keeping every
    owned flow's draws bit-identical to the serial run, but their packets
    are never originated.  Unowned nodes are radio-unreachable from owned
    ones (that is what the group decomposition certifies), so the owned
    nodes observe exactly the frames they observe serially, and the
    worker's :class:`TrialStats` holds exactly the owned groups'
    contribution.
    """
    scenario, protocol_name, owned, fast_paths, tuning = args
    from ..protocols import protocol_factory  # local: after fork/spawn
    from .network import build_network
    from .tuning import EngineTuning

    worker_tuning = EngineTuning(
        event_queue=tuning.event_queue,
        mac_model=tuning.mac_model,
        engine_backend="serial",
    )
    network = build_network(
        scenario,
        protocol_factory(protocol_name),
        static_positions=True,
        fast_paths=fast_paths,
        tuning=worker_tuning,
    )
    owned_set = frozenset(owned)
    if network.traffic is not None:
        network.traffic.restrict_to(owned_set)
    for node_id in owned:
        network.nodes[node_id].protocol.start()
    if network.traffic is not None:
        network.traffic.start()
    network.simulator.run(until=scenario.duration)
    for node_id in owned:
        node = network.nodes[node_id]
        node.protocol.finalize()
        network.stats.record_mac_drops(node_id, node.mac.stats.drops)
        network.stats.record_sequence_number(
            node_id, node.protocol.sequence_number_metric()
        )
    return network.stats


def _merge_group_stats(parts: Sequence[TrialStats]) -> TrialStats:
    """Sum per-worker stats into one trial-wide :class:`TrialStats`.

    Counters add; per-node roll-ups merge (owned sets are disjoint);
    latency lists concatenate in group order.  Group order is canonical but
    differs from the serial interleaving, so ``mean_latency`` can differ
    from the serial value in the last float ulp — the integer counters are
    exact.  Resilience counters add the same way (every data packet is
    attributed to exactly one worker, its destination's owner), and
    ``route_recovery_time`` is the minimum non-negative per-worker value.
    """
    merged = TrialStats()
    recovery = -1.0
    for part in parts:
        merged.data_sent += part.data_sent
        merged.data_delivered += part.data_delivered
        merged.duplicate_deliveries += part.duplicate_deliveries
        merged.control_transmissions += part.control_transmissions
        merged.latencies.extend(part.latencies)
        merged.mac_drops_by_node.update(part.mac_drops_by_node)
        merged.sequence_numbers_by_node.update(part.sequence_numbers_by_node)
        merged.sent_during_fault += part.sent_during_fault
        merged.delivered_during_fault += part.delivered_during_fault
        merged.sent_post_fault += part.sent_post_fault
        merged.delivered_post_fault += part.delivered_post_fault
        merged.control_burst_on_heal += part.control_burst_on_heal
        # Each worker records the earliest post-heal delivery among its
        # owned destinations; the trial-wide recovery time is the earliest
        # across workers (workers that saw none report -1).
        if part.route_recovery_time >= 0.0 and (
            recovery < 0.0 or part.route_recovery_time < recovery
        ):
            recovery = part.route_recovery_time
    merged.route_recovery_time = recovery
    return merged


# -- windowed process mode ------------------------------------------------------------

#: Floor on the windowed mode's exchange cadence (seconds of simulated
#: time).  The conservative lookahead under a physical propagation delay is
#: ~1.3 us — a correct causality bound but an absurd IPC cadence.  The
#: windowed mode is already a *model* (cross-strip frames are injected at
#: the next barrier, fault streams are split per shard), so the window is a
#: staleness budget rather than a causality proof: 8 ms keeps the
#: cross-seam arrival distortion an order of magnitude below every protocol
#: timescale (HELLO intervals, CBR periods, route timeouts) while
#: amortising a pipe round-trip over thousands of events.  The science gate
#: (paper + faults registries) validates the budget.
PROCESS_WINDOW_FLOOR_S = 0.008

#: Disjoint packet-uid block per windowed worker, so end-to-end duplicate
#: suppression and latency keys stay globally unique when every worker
#: originates packets from its own local counter.
_UID_BLOCK = 1_000_000_000


def _pack_frame(frame) -> Tuple:
    """Snapshot one boundary frame for the pipe (packet fields by value).

    The snapshot is taken at transmit time because the MAC mutates
    ``packet.hops`` (and pools frames) after the air time; shipping live
    objects would leak retry-mutated state across the barrier.
    """
    packet = frame.packet
    return (
        frame.receiver,
        packet.kind,
        packet.source,
        packet.destination,
        packet.size_bytes,
        packet.created_at,
        packet.payload,
        packet.flow_id,
        packet.uid,
        packet.hops,
    )


def _windowed_worker(conn, args) -> None:
    """One strip of a windowed run: full replica, owned execution, barriers.

    The worker rebuilds the complete deterministic network (identical RNG
    streams and build order — geometry, mobility and fault flips replicate
    exactly), then narrows *execution* to its strip: foreign nodes' receive
    paths are muted at the channel, foreign protocols are never started,
    and traffic origination is restricted to owned sources.  A transmit tap
    records every frame an owned node puts on the air; at each window
    barrier the tap's outbox is shipped to the peers and their boundary
    frames are replayed locally via ``channel.transmit`` (the foreign
    transmitter's geometry is present, so carrier-sense and reception
    ranges are computed exactly — only the replay *time* is shifted, by
    one window).  Ownership is fixed at the t=0 strip assignment: mobility
    stays exact because every worker replays the full mobility model, so a
    roaming owned node keeps transmitting from its true position and
    foreign frames keep reaching whoever is in range.
    """
    (
        scenario,
        protocol_name,
        shard_index,
        shard_count,
        static_positions,
        fast_paths,
        tuning,
        window_s,
    ) = args
    from ..protocols import protocol_factory  # local: after fork/spawn
    from .faults import FaultSchedule
    from .network import build_network
    from .packet import Frame, Packet, reset_packet_ids
    from .tuning import EngineTuning

    reset_packet_ids(1 + shard_index * _UID_BLOCK)
    worker_tuning = EngineTuning(
        event_queue=tuning.event_queue,
        mac_model=tuning.mac_model,
        engine_backend="serial",
    )
    network = build_network(
        scenario,
        protocol_factory(protocol_name),
        static_positions=static_positions,
        fast_paths=fast_paths,
        tuning=worker_tuning,
    )
    plan = ShardPlan.for_scenario(scenario, shard_count)
    owned = tuple(
        sorted(
            node_id
            for node_id, node in network.nodes.items()
            if plan.shard_of_x(node.position()[0]) == shard_index
        )
    )
    owned_set = frozenset(owned)
    channel = network.channel
    for node_id in network.nodes:
        if node_id not in owned_set:
            channel.mute(node_id)
    if network.traffic is not None:
        network.traffic.restrict_to(owned_set)
    faults_state = channel.faults
    if faults_state is not None:
        faults_state.reseed(
            FaultSchedule.split_for_shards(scenario.seed, shard_count)[shard_index]
        )

    outbox: List[Tuple] = []
    sequence = 0

    def tap(transmitter, frame, now) -> None:
        nonlocal sequence
        if transmitter in owned_set:
            sequence += 1
            outbox.append((now, shard_index, sequence, transmitter, _pack_frame(frame)))

    channel.set_transmit_tap(tap)

    for node_id in owned:
        network.nodes[node_id].protocol.start()
    if network.traffic is not None:
        network.traffic.start()

    simulator = network.simulator
    duration = float(scenario.duration)
    windows = 0
    shipped = 0
    barrier_wait = 0.0
    t = 0.0
    while t < duration:
        t_next = t + window_s
        if t_next > duration:
            t_next = duration
        simulator.run(until=t_next)
        started = perf_counter()
        conn.send(outbox)
        inbox = conn.recv()
        barrier_wait += perf_counter() - started
        shipped += len(outbox)
        windows += 1
        outbox.clear()
        if inbox:
            # (time, shard, sequence) is unique, so the sort is total and
            # identical at every worker: injections happen in one
            # deterministic order regardless of pipe arrival order.  Each
            # foreign frame replays at its original transmit time shifted
            # by exactly one window — preserving the inter-frame spacing of
            # the originating strip instead of slamming a whole window's
            # boundary traffic onto the air at the barrier instant (which
            # manufactures collision storms no physical channel has).
            inbox.sort(key=lambda record: record[:3])
            for sent_at, _, _, foreign_transmitter, snapshot in inbox:
                packet = Packet(
                    snapshot[1],
                    snapshot[2],
                    snapshot[3],
                    snapshot[4],
                    snapshot[5],
                    snapshot[6],
                    snapshot[7],
                    snapshot[8],
                    snapshot[9],
                )
                replay = Frame(packet, foreign_transmitter, snapshot[0])
                simulator.schedule_at(
                    sent_at + window_s,
                    (
                        lambda tx=foreign_transmitter, fr=replay: channel.transmit(
                            tx, fr
                        )
                    ),
                    priority=1,
                )
        t = t_next

    for node_id in owned:
        node = network.nodes[node_id]
        node.protocol.finalize()
        network.stats.record_mac_drops(node_id, node.mac.stats.drops)
        network.stats.record_sequence_number(
            node_id, node.protocol.sequence_number_metric()
        )
    conn.send(
        (
            network.stats,
            {
                "owned": owned,
                "windows": windows,
                "boundary_frames": shipped,
                "barrier_seconds": barrier_wait,
                "events": simulator.events_processed,
            },
        )
    )
    conn.close()


def _run_windowed_processes(
    scenario,
    protocol: str,
    *,
    static_positions: bool,
    fast_paths,
    tuning,
    shard_count: int,
    window_s: Optional[float],
) -> ProcessRunReport:
    """Coordinate K strip workers through lock-step window barriers.

    The parent relays each worker's outbox to every peer (star topology:
    K pipes instead of K^2).  Parent and workers run the *same* float
    window arithmetic, so they agree exactly on the number of barriers.
    """
    import multiprocessing as mp

    plan = ShardPlan.for_scenario(scenario, shard_count)
    if window_s is None:
        window_s = max(plan.window, PROCESS_WINDOW_FLOOR_S)
    if window_s <= 0.0:
        raise ValueError(f"window must be positive, got {window_s}")

    ctx = mp.get_context()
    conns = []
    workers = []
    for shard_index in range(shard_count):
        parent_conn, child_conn = ctx.Pipe()
        worker = ctx.Process(
            target=_windowed_worker,
            args=(
                child_conn,
                (
                    scenario,
                    protocol,
                    shard_index,
                    shard_count,
                    static_positions,
                    fast_paths,
                    tuning,
                    window_s,
                ),
            ),
            daemon=True,
        )
        worker.start()
        child_conn.close()
        conns.append(parent_conn)
        workers.append(worker)

    try:
        duration = float(scenario.duration)
        t = 0.0
        try:
            while t < duration:
                t_next = t + window_s
                if t_next > duration:
                    t_next = duration
                outboxes = [conn.recv() for conn in conns]
                for shard_index, conn in enumerate(conns):
                    conn.send(
                        [
                            record
                            for peer, peer_outbox in enumerate(outboxes)
                            if peer != shard_index
                            for record in peer_outbox
                        ]
                    )
                t = t_next
            results = [conn.recv() for conn in conns]
        except EOFError:
            dead = [w.exitcode for w in workers if not w.is_alive()]
            raise PdesError(
                f"a windowed worker died mid-run (exit codes of dead "
                f"workers: {dead}); the trial cannot be merged"
            ) from None
    finally:
        for conn in conns:
            conn.close()
        for worker in workers:
            worker.join(timeout=30)
            if worker.is_alive():
                worker.terminate()

    parts = [stats for stats, _ in results]
    meta = [info for _, info in results]
    merged = _merge_group_stats(parts)
    return ProcessRunReport(
        summary=merged.summary(),
        # The strip ownership (t=0 assignment) plays the role the radio
        # groups play in exact mode: who executed whom.
        groups=tuple(tuple(info["owned"]) for info in meta),
        workers_used=shard_count,
        fallback_reason=None,
        mode="windowed",
        windows=max(info["windows"] for info in meta),
        boundary_frames=sum(info["boundary_frames"] for info in meta),
        barrier_seconds=max(info["barrier_seconds"] for info in meta),
        events_processed=sum(info["events"] for info in meta),
    )


def run_trial_sharded_processes(
    scenario,
    protocol: str,
    *,
    static_positions: bool = True,
    fast_paths=None,
    tuning=None,
    max_workers: Optional[int] = None,
    window_s: Optional[float] = None,
) -> ProcessRunReport:
    """Run one trial across shared-nothing worker processes.

    Under the default instantaneous-propagation PHY, exact concurrency
    exists only between radio-decoupled groups (module docstring: the
    conservative lookahead between coupled shards collapses to one slot).
    Mobile scenarios and single-component worlds fall back to one serial
    worker — reported, not hidden, in the returned
    :class:`ProcessRunReport`.  Faulted scenarios whose plan includes a
    ``loss_burst`` are refused in multi-group mode: loss draws consume one
    shared RNG stream whose order interleaves across groups (crash,
    blackout and partition flips are pre-scheduled deterministic events and
    replicate exactly).

    With ``scenario.phy.propagation_delay_s_per_m > 0`` the run switches to
    the windowed barrier-exchange mode (module docstring), which supports
    mobility and arbitrary fault plans and extracts concurrency between
    radio-*coupled* strips — as a gate-validated model, not bit-identity.
    ``window_s`` overrides the exchange cadence (default:
    ``max(plan.window, PROCESS_WINDOW_FLOOR_S)``).
    """
    from ..protocols import protocol_factory  # local import to avoid a cycle
    from .tuning import EngineTuning, FastPaths

    fp = FastPaths() if fast_paths is None else fast_paths
    engine_tuning = EngineTuning.from_env() if tuning is None else tuning

    if scenario.phy.propagation_delay_s_per_m > 0.0:
        shards = max_workers or engine_tuning.resolved_shard_count()
        return _run_windowed_processes(
            scenario,
            protocol,
            static_positions=static_positions,
            fast_paths=fp,
            tuning=engine_tuning,
            shard_count=max(int(shards), 1),
            window_s=window_s,
        )

    fallback: Optional[str] = None
    if not static_positions:
        groups: Tuple[Tuple[int, ...], ...] = (
            tuple(range(scenario.node_count)),
        )
        fallback = (
            "mobile nodes roam the whole terrain, so every shard is "
            "radio-coupled: one group"
        )
    else:
        groups = tuple(radio_groups(scenario))
        if len(groups) == 1:
            fallback = "initial positions form a single carrier-sense component"

    has_loss_burst = any(spec.kind == "loss_burst" for spec in scenario.faults)
    if has_loss_burst and len(groups) > 1:
        raise PdesError(
            "loss-burst fault plans cannot run in exact process mode with "
            "more than one radio group: loss draws consume one shared RNG "
            "stream whose order interleaves across groups. Use the threaded "
            "sharded backend (engine_backend='sharded'), which is "
            "bit-identical for faulted trials, or the finite-propagation-"
            "delay windowed mode (propagation_delay_s_per_m > 0), which "
            "splits the fault stream per shard."
        )

    if fallback is not None:
        from .network import run_trial

        summary = run_trial(
            scenario,
            protocol_factory(protocol),
            static_positions=static_positions,
            fast_paths=fp,
            tuning=EngineTuning(
                event_queue=engine_tuning.event_queue,
                mac_model=engine_tuning.mac_model,
                engine_backend="serial",
            ),
        )
        return ProcessRunReport(
            summary=summary,
            groups=groups,
            workers_used=1,
            fallback_reason=fallback,
            mode="serial",
        )

    workers = min(len(groups), max_workers or os.cpu_count() or 1)
    workers = max(workers, 1)
    # Round-robin the components over the workers so each process carries a
    # comparable share of nodes.
    assignments: List[List[int]] = [[] for _ in range(workers)]
    for index, group in enumerate(groups):
        assignments[index % workers].extend(group)
    jobs = [
        (scenario, protocol, tuple(sorted(owned)), fp, engine_tuning)
        for owned in assignments
        if owned
    ]
    if len(jobs) == 1:
        parts = [_group_worker(jobs[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(jobs)) as pool:
            parts = list(pool.map(_group_worker, jobs))
    merged = _merge_group_stats(parts)
    return ProcessRunReport(
        summary=merged.summary(),
        groups=groups,
        workers_used=len(jobs),
        fallback_reason=None,
    )
