"""Physical-layer timing and range parameters.

The paper simulates an 802.11 radio at 2 Mbps.  We model the channel with a
unit-disk reception range (GloMoSim's default two-ray model gives roughly a
250 m range at default power), a fixed per-frame physical-layer overhead and a
payload-proportional transmission time.  None of the routing results depend on
the exact constants; they set the load level at which MAC contention appears.
"""

from __future__ import annotations

from dataclasses import dataclass

from .packet import Frame

__all__ = ["PhyConfig"]


@dataclass(frozen=True, slots=True)
class PhyConfig:
    """Radio and channel timing constants.

    ``reception_range`` is the unit-disk radius in metres.
    ``carrier_sense_range`` is the radius within which a transmission keeps
    other senders silent (>= reception range, as for real 802.11).
    """

    bitrate_bps: float = 2_000_000.0
    reception_range: float = 250.0
    carrier_sense_range: float = 400.0
    frame_overhead_s: float = 0.000_75  # preamble + PLCP + MAC header + SIFS/ACK
    mac_header_bytes: int = 34
    slot_time_s: float = 0.000_02
    max_queue_length: int = 50
    retry_limit: int = 4
    min_contention_window: int = 16
    max_contention_window: int = 1024

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if self.reception_range <= 0:
            raise ValueError("reception range must be positive")
        if self.carrier_sense_range < self.reception_range:
            raise ValueError("carrier-sense range must be >= reception range")

    def transmission_time(self, frame: Frame) -> float:
        """Air time of one frame, in seconds."""
        bits = (frame.packet.size_bytes + self.mac_header_bytes) * 8
        return self.frame_overhead_s + bits / self.bitrate_bps
