"""Physical-layer timing and range parameters.

The paper simulates an 802.11 radio at 2 Mbps.  We model the channel with a
unit-disk reception range (GloMoSim's default two-ray model gives roughly a
250 m range at default power), a fixed per-frame physical-layer overhead and a
payload-proportional transmission time.  None of the routing results depend on
the exact constants; they set the load level at which MAC contention appears.
"""

from __future__ import annotations

from dataclasses import dataclass

from .packet import Frame

__all__ = ["PhyConfig", "SPEED_OF_LIGHT_DELAY_S_PER_M"]

#: Free-space propagation delay: one metre at the speed of light.  The
#: physically honest value for ``PhyConfig.propagation_delay_s_per_m``
#: (~3.336 ns/m); at the paper's 250 m reception range it puts ~0.8 us
#: between a transmission and its farthest receiver.
SPEED_OF_LIGHT_DELAY_S_PER_M = 1.0 / 299_792_458.0


@dataclass(frozen=True, slots=True)
class PhyConfig:
    """Radio and channel timing constants.

    ``reception_range`` is the unit-disk radius in metres.
    ``carrier_sense_range`` is the radius within which a transmission keeps
    other senders silent (>= reception range, as for real 802.11).

    ``propagation_delay_s_per_m`` selects between two channel models.  At
    the default ``0.0`` propagation is instantaneous — every receiver hears
    a frame over exactly ``[start, start + airtime]`` — and the engine is
    bit-identical to every release since the seed.  A positive value (use
    :data:`SPEED_OF_LIGHT_DELAY_S_PER_M` for physics) delays each receiver's
    copy by ``delay * distance``, which gives the sharded PDES a finite
    lookahead: a shard provably cannot be influenced by a neighbour strip
    faster than a signal crosses the seam.  The finite-delay variant is a
    *model* change held to the science gate (paper + faults registries),
    like ``EngineTuning.mac_model="frozen"``, not to bit-identity.
    """

    bitrate_bps: float = 2_000_000.0
    reception_range: float = 250.0
    carrier_sense_range: float = 400.0
    frame_overhead_s: float = 0.000_75  # preamble + PLCP + MAC header + SIFS/ACK
    mac_header_bytes: int = 34
    slot_time_s: float = 0.000_02
    max_queue_length: int = 50
    retry_limit: int = 4
    min_contention_window: int = 16
    max_contention_window: int = 1024
    propagation_delay_s_per_m: float = 0.0

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if self.reception_range <= 0:
            raise ValueError("reception range must be positive")
        if self.carrier_sense_range < self.reception_range:
            raise ValueError("carrier-sense range must be >= reception range")
        if self.propagation_delay_s_per_m < 0:
            raise ValueError("propagation delay must be >= 0")

    def transmission_time(self, frame: Frame) -> float:
        """Air time of one frame, in seconds."""
        bits = (frame.packet.size_bytes + self.mac_header_bytes) * 8
        return self.frame_overhead_s + bits / self.bitrate_bps
