"""Discrete-event simulation engine.

A minimal but complete event scheduler in the style GloMoSim provides to its
protocol models: events are ``(time, priority, sequence, payload)`` entries
executed in time order with FIFO tie-breaking.  Everything in
:mod:`repro.sim` — the MAC, mobility sampling, traffic generation and the
routing protocols' timers — runs on one :class:`Simulator` instance.

The queue stores plain tuples rather than ordered :class:`Event` objects: at
paper scale a trial pushes and pops millions of entries, and tuple comparison
(which never reaches the trailing payload because the sequence number is
unique) is several times cheaper than a dataclass-generated ``__lt__``.
:class:`Event` survives as the public handle returned by the scheduling
calls, keeping the ``cancel()`` API unchanged; hot-path callers that never
cancel use :meth:`Simulator.call_in`, which skips the handle allocation
entirely and queues the bare callback.

Two queue implementations back the engine, selected by the ``event_queue``
constructor argument (``repro.sim.tuning.EngineTuning`` wires it through
``build_network``):

``"calendar"`` (default)
    A bucketed calendar queue with an overflow ladder
    (:class:`~repro.sim.eventq.CalendarQueue`): O(1) amortized push and
    pop against the heap's O(log n), which is the measured difference at
    millions of events per trial.
``"heap"``
    The PR 1 binary heap (``heapq`` over a plain list), kept as the
    reference implementation and oracle.

Pop order is totally determined by ``(time, priority, sequence)`` — the
sequence number is unique — so the two queues dequeue the *identical* entry
sequence and a trial is bit-identical under either (the equivalence suite in
``tests/sim/test_eventq.py`` enforces this, including the priority ``-1``
fault events and cancellation).
"""

from __future__ import annotations

import heapq
import itertools
from functools import partial
from typing import Callable, List, Optional, Tuple

from .eventq import CalendarQueue

__all__ = ["Event", "Simulator", "SimulationError", "EVENT_QUEUES"]

#: The recognised event-queue implementations.
EVENT_QUEUES: Tuple[str, ...] = ("heap", "calendar")


class SimulationError(RuntimeError):
    """Raised for scheduling mistakes (negative delays, running a stopped sim)."""


class Event:
    """Handle for one scheduled callback.  Ordering: time, priority, FIFO.

    The engine orders events by the ``(time, priority, sequence)`` tuple it
    keeps on the queue; the handle exists so callers can :meth:`cancel` a
    timer and inspect when it was due.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "cancelled", "_simulator")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Optional[Callable[[], None]],
        simulator: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._simulator = simulator

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the head.

        The callback reference is dropped immediately, so a cancelled timer
        releases whatever its closure captured (packets, protocol state) even
        while its tombstone is still queued.
        """
        if self.cancelled or self.callback is None:
            # Already cancelled, or already executed: nothing left to release
            # and the pending-event accounting must not be touched twice.
            return
        self.cancelled = True
        self.callback = None
        if self._simulator is not None:
            self._simulator._cancelled_pending += 1


#: One queue entry.  The payload — an Event handle or, for fire-and-forget
#: scheduling, the bare callback — is never compared: sequence is unique.
_HeapEntry = Tuple[float, int, int, object]


class Simulator:
    """The event loop: schedule callbacks at absolute or relative times.

    The simulator is deliberately free of domain knowledge; the wireless
    channel, nodes and protocols schedule plain callbacks.  ``priority`` lets
    same-instant events order deterministically (lower runs first), which keeps
    trials reproducible under a fixed seed.  The repo's convention: ``-1``
    fault-schedule flips (:mod:`repro.sim.faults` — a node crashing at *t*
    must be down before any frame sent at *t*), ``0`` ordinary traffic and
    timers, ``1`` channel-transmission finishes, ``2`` MAC proceed steps.

    ``now`` is a plain attribute (read it, never assign it): the property
    protocol is measurably slower at millions of reads per trial.
    """

    def __init__(self, *, event_queue: str = "calendar") -> None:
        if event_queue not in EVENT_QUEUES:
            raise ValueError(
                f"unknown event queue {event_queue!r}; expected one of "
                f"{EVENT_QUEUES}"
            )
        self.event_queue = event_queue
        if event_queue == "calendar":
            self._calendar: Optional[CalendarQueue] = CalendarQueue()
            self._queue: List[_HeapEntry] = []  # unused; kept for introspection
            self._push: Callable[[_HeapEntry], None] = self._calendar.push
        else:
            self._calendar = None
            self._queue = []
            # partial(heappush, list) keeps the heap push one C-level call
            # for hot-path callers going through hot_scheduler().
            self._push = partial(heapq.heappush, self._queue)
        self._sequence = itertools.count()
        self.now = 0.0
        self._running = False
        self._processed = 0
        self._cancelled_pending = 0

    # -- clock -----------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for progress reporting)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Cancelled events stay queued as tombstones until the loop reaches
        them (their callbacks are already dropped), so both queue flavours
        subtract the tombstone count from their raw size.
        """
        if self._calendar is not None:
            return len(self._calendar) - self._cancelled_pending
        return len(self._queue) - self._cancelled_pending

    # -- scheduling --------------------------------------------------------------

    def schedule_at(
        self, time: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self.now:.6f}"
            )
        event = Event(time, priority, next(self._sequence), callback, self)
        self._push((time, priority, event.sequence, event))
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self.now + delay
        event = Event(time, priority, next(self._sequence), callback, self)
        self._push((time, priority, event.sequence, event))
        return event

    def call_in(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> None:
        """Fire-and-forget :meth:`schedule_in`: no :class:`Event` handle.

        Identical ordering semantics, but the callback cannot be cancelled.
        The MAC and channel schedule hundreds of thousands of uncancellable
        callbacks (backoffs, jitters, end-of-air-time completions) per trial;
        skipping the handle allocation is a measured win.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._push((self.now + delay, priority, next(self._sequence), callback))

    def hot_scheduler(
        self,
    ) -> "Tuple[Callable[[_HeapEntry], None], Callable[[], int]]":
        """The raw scheduling internals for trusted hot-path callers.

        Returns ``(push, next_sequence)``.  A caller may push entries shaped
        exactly like :meth:`call_in`'s — ``(self.now + delay, priority,
        next_sequence(), callback)`` with ``delay >= 0``.  This skips one
        Python call and the negative-delay check per event, which the MAC's
        backoff machinery pays many times per trial; ordering semantics are
        identical because the entries are.  ``push`` is queue-flavour
        agnostic: the heap's C ``heappush`` pre-bound to the list, or the
        calendar queue's ``push`` method.
        """
        return self._push, self._sequence.__next__

    # -- execution ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order until the queue drains or ``until`` is reached.

        When ``until`` is given the clock is advanced to exactly ``until`` at
        the end, even if the last event fired earlier, so periodic statistics
        normalised by elapsed time are consistent across trials.
        """
        event_class = Event
        self._running = True
        # The processed counter lives in a local inside the loop (one
        # instance-attribute store per event is measurable at 10M events);
        # the attribute is synced on every exit path, including callbacks
        # that raise.
        processed = self._processed
        calendar = self._calendar
        try:
            if calendar is not None:
                advance = calendar._advance
                push = calendar.push
                pop = heapq.heappop
                while self._running:
                    # Fast path at heap parity: one attribute load and a
                    # C-level heappop.  The attribute must be re-read every
                    # iteration — callbacks push into it and _advance
                    # replaces it wholesale at each bucket boundary.
                    active = calendar._active
                    if active:
                        entry = pop(active)
                    else:
                        entry = advance()
                        if entry is None:
                            break
                    time = entry[0]
                    if until is not None and time > until:
                        # Leave it queued for a potential later run() call;
                        # everything else in the queue is later still.
                        push(entry)
                        break
                    payload = entry[3]
                    if payload.__class__ is event_class:
                        if payload.cancelled:
                            self._cancelled_pending -= 1
                            continue
                        callback = payload.callback
                        # Drop the closure before executing so a fired event
                        # never pins its captured state, mirroring cancel()
                        # for tombstones.
                        payload.callback = None
                        self.now = time
                        processed += 1
                        callback()
                    else:
                        self.now = time
                        processed += 1
                        payload()
            else:
                queue = self._queue
                pop = heapq.heappop
                push = heapq.heappush
                while queue and self._running:
                    entry = pop(queue)
                    time = entry[0]
                    if until is not None and time > until:
                        # Leave it queued for a potential later run() call.
                        # (The heap is time-ordered, so everything else is
                        # beyond `until` too — pushing the one popped entry
                        # back is a single operation per run() call, cheaper
                        # than peeking every iteration.)
                        push(queue, entry)
                        break
                    payload = entry[3]
                    if payload.__class__ is event_class:
                        if payload.cancelled:
                            self._cancelled_pending -= 1
                            continue
                        callback = payload.callback
                        payload.callback = None
                        self.now = time
                        processed += 1
                        callback()
                    else:
                        self.now = time
                        processed += 1
                        payload()
        finally:
            self._processed = processed
        if until is not None and self.now < until:
            self.now = until
        self._running = False

    def _pop_entry(self) -> Optional[_HeapEntry]:
        """The next queued entry regardless of queue flavour, or ``None``."""
        if self._calendar is not None:
            return self._calendar.pop()
        if self._queue:
            return heapq.heappop(self._queue)
        return None

    def step(self) -> bool:
        """Execute the single next event; returns False when the queue is empty."""
        while True:
            entry = self._pop_entry()
            if entry is None:
                return False
            payload = entry[3]
            if payload.__class__ is Event:
                if payload.cancelled:
                    self._cancelled_pending -= 1
                    continue
                callback = payload.callback
                payload.callback = None
            else:
                callback = payload
            self.now = entry[0]
            self._processed += 1
            callback()
            return True

    def stop(self) -> None:
        """Stop :meth:`run` after the event currently executing."""
        self._running = False
