"""Discrete-event simulation engine.

A minimal but complete event scheduler in the style GloMoSim provides to its
protocol models: events are ``(time, priority, sequence, callback)`` tuples on
a binary heap, executed in time order with FIFO tie-breaking.  Everything in
:mod:`repro.sim` — the MAC, mobility sampling, traffic generation and the
routing protocols' timers — runs on one :class:`Simulator` instance.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling mistakes (negative delays, running a stopped sim)."""


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordering: time, then priority, then FIFO."""

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the head."""
        self.cancelled = True


class Simulator:
    """The event loop: schedule callbacks at absolute or relative times.

    The simulator is deliberately free of domain knowledge; the wireless
    channel, nodes and protocols schedule plain callbacks.  ``priority`` lets
    same-instant events order deterministically (lower runs first), which keeps
    trials reproducible under a fixed seed.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for progress reporting)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # -- scheduling --------------------------------------------------------------

    def schedule_at(
        self, time: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self._now:.6f}"
            )
        event = Event(time, priority, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority=priority)

    # -- execution ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order until the queue drains or ``until`` is reached.

        When ``until`` is given the clock is advanced to exactly ``until`` at
        the end, even if the last event fired earlier, so periodic statistics
        normalised by elapsed time are consistent across trials.
        """
        self._running = True
        while self._queue and self._running:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                # Put it back for a potential later run() call.
                heapq.heappush(self._queue, event)
                break
            self._now = event.time
            self._processed += 1
            event.callback()
        if until is not None and self._now < until:
            self._now = until
        self._running = False

    def step(self) -> bool:
        """Execute the single next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def stop(self) -> None:
        """Stop :meth:`run` after the event currently executing."""
        self._running = False
