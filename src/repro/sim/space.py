"""Terrain geometry: positions, distances and the rectangular simulation area.

The paper's evaluation uses a 2200 m x 600 m rectangle.  Positions are plain
immutable points; the terrain knows how to clamp and to draw uniform random
positions from a supplied random stream.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["Position", "Terrain"]


@dataclass(frozen=True, slots=True)
class Position:
    """A point in the 2-D terrain, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def interpolate(self, other: "Position", fraction: float) -> "Position":
        """The point ``fraction`` of the way from here to ``other`` (0..1)."""
        fraction = min(max(fraction, 0.0), 1.0)
        return Position(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )


@dataclass(frozen=True, slots=True)
class Terrain:
    """A rectangular simulation area with its origin at (0, 0)."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("terrain dimensions must be positive")

    def contains(self, position: Position) -> bool:
        """True when the position lies inside (or on the border of) the area."""
        return 0.0 <= position.x <= self.width and 0.0 <= position.y <= self.height

    def clamp(self, position: Position) -> Position:
        """The nearest point inside the terrain."""
        return Position(
            min(max(position.x, 0.0), self.width),
            min(max(position.y, 0.0), self.height),
        )

    def random_position(self, rng: random.Random) -> Position:
        """A uniformly distributed point inside the terrain."""
        return Position(rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))

    @property
    def diagonal(self) -> float:
        """Length of the terrain diagonal; an upper bound on any distance."""
        return math.hypot(self.width, self.height)
