"""Packet and frame models.

A :class:`Packet` is a network-layer unit: either an application data packet
(CBR payload) or a routing-protocol control packet whose ``payload`` carries
the protocol message object (RREQ, RREP, link-state advertisement, ...).  A
:class:`Frame` wraps a packet for one MAC-layer hop: it records the
transmitter and the intended receiver (``None`` for broadcast).

Sizes are in bytes and include idealised headers; they matter only for
transmission-time computation, not for any routing decision.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

__all__ = ["PacketKind", "Packet", "Frame", "BROADCAST", "reset_packet_ids"]

NodeId = Hashable

#: Sentinel receiver address used by broadcast frames.
BROADCAST: object = None

_packet_ids = itertools.count(1)
_frame_ids = itertools.count(1)


def reset_packet_ids(start: int = 1) -> None:
    """Restart the packet uid counter at ``start``.

    The windowed process mode gives each worker a disjoint uid block
    (worker k starts at ``1 + k * 10**9``) so end-to-end duplicate
    suppression and latency keys stay globally unique across workers that
    each originate packets from their own local counter.  Never call this
    mid-trial: uids identify packets across hops.
    """
    global _packet_ids
    _packet_ids = itertools.count(start)


class PacketKind(enum.Enum):
    """Network-layer packet classes used by the metrics collectors."""

    DATA = "data"
    CONTROL = "control"


@dataclass(slots=True)
class Packet:
    """A network-layer packet.

    ``uid`` identifies the original packet across hops (forwarded copies keep
    the uid so end-to-end latency and duplicate suppression work).  ``hops``
    counts MAC transmissions of this packet so far.
    """

    kind: PacketKind
    source: NodeId
    destination: NodeId
    size_bytes: int
    created_at: float
    payload: Any = None
    flow_id: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0

    def copy_for_forwarding(self) -> "Packet":
        """A per-hop copy sharing the uid and creation time.

        Built with positional arguments (field-declaration order): every
        forwarded data and relayed control packet comes through here, and
        keyword binding plus the uid default factory were a measurable slice
        of the forwarding path.
        """
        return Packet(
            self.kind,
            self.source,
            self.destination,
            self.size_bytes,
            self.created_at,
            self.payload,
            self.flow_id,
            self.uid,
            self.hops,
        )

    @property
    def is_data(self) -> bool:
        """True for application (CBR) packets."""
        return self.kind is PacketKind.DATA

    @property
    def is_control(self) -> bool:
        """True for routing-protocol control packets."""
        return self.kind is PacketKind.CONTROL


@dataclass(slots=True)
class Frame:
    """One MAC-layer transmission attempt of a packet over one hop.

    Frames are the highest-churn objects in a trial after events: one per
    MAC enqueue, dead as soon as the frame leaves the air.  The MAC's frame
    pool (``FastPaths.frame_pool``) recycles them through
    :meth:`reinit`; nothing in the simulation reads frame identity or
    ``uid`` for any routing or metrics decision, so recycling is exact.
    """

    packet: Packet
    transmitter: NodeId
    receiver: Optional[NodeId]
    enqueued_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_frame_ids))

    def reinit(
        self,
        packet: Packet,
        transmitter: NodeId,
        receiver: Optional[NodeId],
        enqueued_at: float,
    ) -> "Frame":
        """Repurpose a pooled frame for a new transmission attempt."""
        self.packet = packet
        self.transmitter = transmitter
        self.receiver = receiver
        self.enqueued_at = enqueued_at
        self.uid = next(_frame_ids)
        return self

    @property
    def is_broadcast(self) -> bool:
        """True when the frame is addressed to every node in range."""
        return self.receiver is BROADCAST
