"""Run-time routing-invariant monitoring.

The paper's central claim is *instantaneous* loop freedom: at no point in time
may the successor graph for any destination contain a cycle.  The
:class:`LoopFreedomMonitor` lets integration tests and failure-injection
experiments assert exactly that while a trial runs: protocols (or tests) call
:meth:`record_successors` whenever a routing table changes, and the monitor
re-checks acyclicity of the per-destination successor graph.

It is intentionally decoupled from the protocol implementations — any protocol
exposing its next-hop sets can be audited, which is how the tests demonstrate
that AODV-style baselines *can* transiently violate what SRP guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Set

import networkx as nx

__all__ = ["LoopFreedomMonitor", "LoopViolation"]

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class LoopViolation:
    """One observed successor-graph cycle."""

    time: float
    destination: NodeId
    cycle: tuple

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        return f"t={self.time:.3f}s dest={self.destination!r} cycle={self.cycle}"


class LoopFreedomMonitor:
    """Tracks per-destination successor sets and records any cycle."""

    def __init__(self) -> None:
        self._successors: Dict[NodeId, Dict[NodeId, Set[NodeId]]] = {}
        self.violations: List[LoopViolation] = []
        self.checks = 0

    def record_successors(
        self,
        time: float,
        destination: NodeId,
        node: NodeId,
        successors: Iterable[NodeId],
    ) -> None:
        """Update ``node``'s successor set toward ``destination`` and re-check."""
        per_destination = self._successors.setdefault(destination, {})
        per_destination[node] = set(successors)
        self._check(time, destination)

    def _check(self, time: float, destination: NodeId) -> None:
        self.checks += 1
        graph = nx.DiGraph()
        for node, successors in self._successors[destination].items():
            graph.add_node(node)
            for successor in successors:
                graph.add_edge(node, successor)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = tuple(edge for edge in nx.find_cycle(graph))
            self.violations.append(LoopViolation(time, destination, cycle))

    @property
    def is_clean(self) -> bool:
        """True when no routing loop has ever been observed."""
        return not self.violations

    def successor_graph(self, destination: NodeId) -> nx.DiGraph:
        """The most recent successor graph recorded for ``destination``."""
        graph = nx.DiGraph()
        for node, successors in self._successors.get(destination, {}).items():
            graph.add_node(node)
            for successor in successors:
                graph.add_edge(node, successor)
        return graph
