"""Per-trial performance tuning: the fast-path flag set.

Every optimization PR 5 added to the per-trial hot path is *exact*: for a
fixed seed a trial produces a bit-identical
:class:`~repro.sim.stats.TrialSummary` with the fast path on or off.  The
flags exist (all defaulting on, like ``use_spatial_index`` from PR 1) for A/B
benchmarking, for the equivalence tests that enforce that contract, and as an
escape hatch if an exotic configuration ever violates a fast path's
assumptions.

The flags, and the exactness argument for each:

``mobility_segments``
    :class:`~repro.sim.mobility.RandomWaypointMobility` keeps a precompiled
    flat segment table (plain float tuples) beside its :class:`Waypoint`
    legs; ``position_at_xy`` binary-searches the table and interpolates with
    expression-for-expression identical float arithmetic.
``reception_memo``
    The channel memoises reception sets per (timestamp, node): positions are
    pure functions of the clock and the membership test is deterministic, so
    two queries at one timestamp for one origin node must return the same
    set.  The memo is dropped whenever the clock advances or a listener
    attaches.
``busy_cache``
    Carrier sense caches a per-node *busy-until* time: when a transmission
    ending at ``t_end`` is within carrier-sense range by more than the node
    could travel before ``t_end`` (``distance + max_speed * (t_end -
    known_t) <= cs_range``), the node is provably inside carrier-sense range
    of an active transmission for every instant before ``t_end``, so polls
    until then answer True without any geometry.
``fast_backoff``
    The MAC draws backoff and jitter slots via ``Random._randbelow`` — the
    exact primitive ``Random.randint`` bottoms out in, consuming the
    identical underlying ``getrandbits`` draws — and reuses one poll closure
    per (frame, attempt) instead of allocating a lambda per defer.  Draw
    sequence, event times, priorities and scheduling order are unchanged.
``frame_pool``
    :class:`~repro.sim.packet.Frame` and the channel's internal reception
    records are recycled through free lists once the engine is provably done
    with them (after the end-of-air-time completion at the same timestamp
    has run).  No routing decision ever reads object identity.
``airtime_memo``
    Frame air time is a pure function of the packet size, so the channel
    memoises ``PhyConfig.transmission_time`` per distinct size.
``grid_prefilter``
    Reception-set queries first decide each candidate from the grid's own
    snapshot coordinates: a node has drifted at most the snapshot's
    staleness slack, so a snapshot distance at least ``slack`` inside
    (outside) the reception range proves membership (non-membership)
    without any per-node lookup.  The staleness budget is tightened so the
    undecided band stays narrow; membership is identical because the
    bounds are conservative and the band falls through to the exact path.

OLSR's incremental routing-table maintenance is the same kind of exact fast
path but lives in :class:`~repro.protocols.olsr.OlsrConfig`
(``incremental_routes``) because protocol instances are built by the protocol
factory, not by ``build_network``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["FastPaths"]


@dataclass(frozen=True, slots=True)
class FastPaths:
    """Which exact hot-path optimizations a trial runs with (default: all)."""

    mobility_segments: bool = True
    reception_memo: bool = True
    busy_cache: bool = True
    fast_backoff: bool = True
    frame_pool: bool = True
    airtime_memo: bool = True
    grid_prefilter: bool = True

    @classmethod
    def none(cls) -> "FastPaths":
        """Every fast path disabled — the reference slow path for A/B runs."""
        return cls(**{f.name: False for f in fields(cls)})

    @classmethod
    def only(cls, *names: str) -> "FastPaths":
        """Only the named fast paths enabled (equivalence tests toggle one
        at a time to localise a violation)."""
        known = {f.name for f in fields(cls)}
        unknown = set(names) - known
        if unknown:
            raise ValueError(f"unknown fast paths: {sorted(unknown)}")
        return cls(**{name: name in names for name in known})
