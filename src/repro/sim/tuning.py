"""Per-trial performance tuning: the fast-path flag set.

Every optimization PR 5 added to the per-trial hot path is *exact*: for a
fixed seed a trial produces a bit-identical
:class:`~repro.sim.stats.TrialSummary` with the fast path on or off.  The
flags exist (all defaulting on, like ``use_spatial_index`` from PR 1) for A/B
benchmarking, for the equivalence tests that enforce that contract, and as an
escape hatch if an exotic configuration ever violates a fast path's
assumptions.

The flags, and the exactness argument for each:

``mobility_segments``
    :class:`~repro.sim.mobility.RandomWaypointMobility` keeps a precompiled
    flat segment table (plain float tuples) beside its :class:`Waypoint`
    legs; ``position_at_xy`` binary-searches the table and interpolates with
    expression-for-expression identical float arithmetic.
``reception_memo``
    The channel memoises reception sets per (timestamp, node): positions are
    pure functions of the clock and the membership test is deterministic, so
    two queries at one timestamp for one origin node must return the same
    set.  The memo is dropped whenever the clock advances or a listener
    attaches.
``busy_cache``
    Carrier sense caches a per-node *busy-until* time: when a transmission
    ending at ``t_end`` is within carrier-sense range by more than the node
    could travel before ``t_end`` (``distance + max_speed * (t_end -
    known_t) <= cs_range``), the node is provably inside carrier-sense range
    of an active transmission for every instant before ``t_end``, so polls
    until then answer True without any geometry.
``fast_backoff``
    The MAC draws backoff and jitter slots via ``Random._randbelow`` — the
    exact primitive ``Random.randint`` bottoms out in, consuming the
    identical underlying ``getrandbits`` draws — and reuses one poll closure
    per (frame, attempt) instead of allocating a lambda per defer.  Draw
    sequence, event times, priorities and scheduling order are unchanged.
``frame_pool``
    :class:`~repro.sim.packet.Frame` and the channel's internal reception
    records are recycled through free lists once the engine is provably done
    with them (after the end-of-air-time completion at the same timestamp
    has run).  No routing decision ever reads object identity.
``airtime_memo``
    Frame air time is a pure function of the packet size, so the channel
    memoises ``PhyConfig.transmission_time`` per distinct size.
``grid_prefilter``
    Reception-set queries first decide each candidate from the grid's own
    snapshot coordinates: a node has drifted at most the snapshot's
    staleness slack, so a snapshot distance at least ``slack`` inside
    (outside) the reception range proves membership (non-membership)
    without any per-node lookup.  The staleness budget is tightened so the
    undecided band stays narrow; membership is identical because the
    bounds are conservative and the band falls through to the exact path.
``batch_receptions``
    ``Channel.transmit`` processes the whole reception set in fissioned
    passes (fault filter, half-duplex flags, overlap marking, record
    materialisation) instead of one interleaved per-receiver loop, and the
    end-of-air-time completion removes reception records by swap-remove
    instead of ``list.remove``.  Exact: the fault draws keep their
    reception-loop order, half-duplex reads no state the other passes
    mutate, overlap marking is order-insensitive (every overlapping pair is
    marked regardless of traversal order), and the active-reception lists
    are only ever consumed by order-insensitive overlap scans.

OLSR's incremental routing-table maintenance is the same kind of exact fast
path but lives in :class:`~repro.protocols.olsr.OlsrConfig`
(``incremental_routes``) because protocol instances are built by the protocol
factory, not by ``build_network``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Tuple

__all__ = [
    "FastPaths",
    "EngineTuning",
    "EVENT_QUEUES",
    "MAC_MODELS",
    "ENGINE_BACKENDS",
    "EVENT_QUEUE_ENV",
    "MAC_MODEL_ENV",
    "ENGINE_BACKEND_ENV",
    "SHARD_COUNT_ENV",
]


@dataclass(frozen=True, slots=True)
class FastPaths:
    """Which exact hot-path optimizations a trial runs with (default: all)."""

    mobility_segments: bool = True
    reception_memo: bool = True
    busy_cache: bool = True
    fast_backoff: bool = True
    frame_pool: bool = True
    airtime_memo: bool = True
    grid_prefilter: bool = True
    batch_receptions: bool = True

    @classmethod
    def none(cls) -> "FastPaths":
        """Every fast path disabled — the reference slow path for A/B runs."""
        return cls(**{f.name: False for f in fields(cls)})

    @classmethod
    def only(cls, *names: str) -> "FastPaths":
        """Only the named fast paths enabled (equivalence tests toggle one
        at a time to localise a violation)."""
        known = {f.name for f in fields(cls)}
        unknown = set(names) - known
        if unknown:
            raise ValueError(f"unknown fast paths: {sorted(unknown)}")
        return cls(**{name: name in names for name in known})


#: Recognised event-queue implementations (see :mod:`repro.sim.engine`).
EVENT_QUEUES: Tuple[str, ...] = ("heap", "calendar")

#: Recognised MAC backoff models (see :mod:`repro.sim.mac`).
MAC_MODELS: Tuple[str, ...] = ("poll", "frozen")

#: Recognised engine backends (see :mod:`repro.sim.pdes`).
ENGINE_BACKENDS: Tuple[str, ...] = ("serial", "sharded", "processes")

#: Environment overrides consulted by :meth:`EngineTuning.from_env` — the
#: seam the CI ``mac-model-gate`` / ``pdes-smoke`` jobs (and any A/B sweep)
#: use to run the stock sweep CLI under a different engine configuration
#: without new flags.
EVENT_QUEUE_ENV = "REPRO_EVENT_QUEUE"
MAC_MODEL_ENV = "REPRO_MAC_MODEL"
ENGINE_BACKEND_ENV = "REPRO_ENGINE_BACKEND"
SHARD_COUNT_ENV = "REPRO_SHARD_COUNT"


@dataclass(frozen=True, slots=True)
class EngineTuning:
    """Engine-level configuration of one trial: event queue and MAC model.

    Unlike :class:`FastPaths`, the two knobs here carry *different*
    contracts:

    ``event_queue``
        ``"calendar"`` (default) or ``"heap"``.  **Exact**: pop order is
        totally determined by ``(time, priority, sequence)``, so a trial is
        bit-identical under either queue — same contract as every FastPaths
        flag, enforced by the queue-flag equivalence matrix in
        ``tests/sim/test_eventq.py``.

    ``mac_model``
        ``"poll"`` (default) or ``"frozen"``.  A **model** change: the
        frozen-backoff MAC replaces the poll-the-medium backoff loop with an
        event-driven freeze/resume countdown, eliminating the backoff poll
        storm (~85% of all events in a saturated trial) at the cost of a
        *different* — not bit-identical — but physically equivalent
        contention process.  Its contract is the science gate (the full
        paper and faults invariant registries) plus the A/B metric
        trajectory in EXPERIMENTS.md, not bit-identity.  The default stays
        ``"poll"`` so committed stores, nightly artifacts and the clean
        bit-identity matrix are undisturbed; CI enforces the frozen model's
        gate on every PR via the ``mac-model-gate`` job.

    ``engine_backend`` / ``shard_count``
        ``"serial"`` (default), ``"sharded"`` or ``"processes"``.
        ``"sharded"`` is the spatially sharded conservative PDES backend
        (:mod:`repro.sim.pdes`).  **Exact**: the sharded backend's K-way
        merge pops the identical globally ordered event sequence for any
        shard count, so a sharded trial is bit-identical to a serial one
        (enforced by the shard-invariance matrix in
        ``tests/sim/test_pdes.py`` and the ``pdes-smoke`` CI job).
        ``"processes"`` runs the trial through
        :func:`repro.sim.pdes.run_trial_sharded_processes` — exact group
        fan-out under the default PHY, the windowed barrier-exchange model
        under a finite propagation delay; it is a *run*-level backend
        (dispatched where a whole trial is launched, e.g. the sweep
        executor), not a drop-in simulator, so ``build_network`` rejects
        it.  ``shard_count=0`` (auto) resolves from the host's cores — at
        least 2 so "sharded" always means sharded, capped at 4 where the
        strip decomposition stops paying.
    """

    event_queue: str = "calendar"
    mac_model: str = "poll"
    engine_backend: str = "serial"
    shard_count: int = 0

    def __post_init__(self) -> None:
        if self.event_queue not in EVENT_QUEUES:
            raise ValueError(
                f"unknown event queue {self.event_queue!r}; "
                f"expected one of {EVENT_QUEUES}"
            )
        if self.mac_model not in MAC_MODELS:
            raise ValueError(
                f"unknown MAC model {self.mac_model!r}; "
                f"expected one of {MAC_MODELS}"
            )
        if self.engine_backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.engine_backend!r}; "
                f"expected one of {ENGINE_BACKENDS}"
            )
        if self.shard_count < 0:
            raise ValueError(
                f"shard count must be >= 0 (0 = auto), got {self.shard_count}"
            )

    def resolved_shard_count(self) -> int:
        """The effective shard count: the explicit value, or the auto rule."""
        if self.shard_count > 0:
            return self.shard_count
        return min(4, max(2, os.cpu_count() or 1))

    @classmethod
    def from_env(cls) -> "EngineTuning":
        """Defaults, overridden by ``$REPRO_EVENT_QUEUE`` / ``$REPRO_MAC_MODEL``.

        ``build_network`` resolves its default tuning through this, so a
        whole sweep — CLI, process pools, distributed workers — can be
        flipped to the frozen MAC or the reference heap from the
        environment.  A store written under ``REPRO_MAC_MODEL=frozen``
        holds frozen-model results under the same content keys as a poll
        store (tuning is not part of a scenario's identity); keep such
        stores separate, exactly like FastPaths A/B runs.
        """
        kwargs = {}
        queue = os.environ.get(EVENT_QUEUE_ENV)
        if queue:
            kwargs["event_queue"] = queue
        mac = os.environ.get(MAC_MODEL_ENV)
        if mac:
            kwargs["mac_model"] = mac
        backend = os.environ.get(ENGINE_BACKEND_ENV)
        if backend:
            kwargs["engine_backend"] = backend
        shards = os.environ.get(SHARD_COUNT_ENV)
        if shards:
            try:
                kwargs["shard_count"] = int(shards)
            except ValueError:
                raise ValueError(
                    f"${SHARD_COUNT_ENV} must be an integer, got {shards!r}"
                ) from None
        return cls(**kwargs)
