"""Discrete-event wireless network simulator (the GloMoSim stand-in).

Building blocks:

* :mod:`repro.sim.engine` — event scheduler and simulation clock.
* :mod:`repro.sim.rng` — named deterministic random streams per trial.
* :mod:`repro.sim.space`, :mod:`repro.sim.mobility` — terrain and
  random-waypoint mobility.
* :mod:`repro.sim.phy`, :mod:`repro.sim.channel`, :mod:`repro.sim.mac` —
  radio timing, the shared unit-disk channel with collisions, and a
  CSMA/CA-style MAC with retries and loss reporting.
* :mod:`repro.sim.packet`, :mod:`repro.sim.node`, :mod:`repro.sim.network` —
  packets, nodes and trial assembly.
* :mod:`repro.sim.stats` — the trial metrics the paper reports.
* :mod:`repro.sim.monitor` — run-time loop-freedom auditing.
* :mod:`repro.sim.tuning` — the exact (bit-identical) hot-path fast paths.
"""

from .channel import Channel, ChannelStats
from .engine import Event, SimulationError, Simulator
from .mac import Mac, MacStats
from .mobility import MobilityModel, RandomWaypointMobility, StaticMobility, Waypoint
from .monitor import LoopFreedomMonitor, LoopViolation
from .network import Network, build_network, run_trial
from .node import Node
from .packet import BROADCAST, Frame, Packet, PacketKind
from .phy import PhyConfig
from .rng import RngStreams, derive_seed
from .space import Position, Terrain
from .spatial import SpatialGrid
from .stats import TrialStats, TrialSummary
from .tuning import FastPaths

__all__ = [
    "FastPaths",
    "Channel",
    "ChannelStats",
    "Event",
    "SimulationError",
    "Simulator",
    "Mac",
    "MacStats",
    "MobilityModel",
    "RandomWaypointMobility",
    "StaticMobility",
    "Waypoint",
    "LoopFreedomMonitor",
    "LoopViolation",
    "Network",
    "build_network",
    "run_trial",
    "Node",
    "BROADCAST",
    "Frame",
    "Packet",
    "PacketKind",
    "PhyConfig",
    "RngStreams",
    "derive_seed",
    "Position",
    "Terrain",
    "SpatialGrid",
    "TrialStats",
    "TrialSummary",
]
