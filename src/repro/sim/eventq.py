"""A calendar/ladder event queue with O(1) amortized push and pop.

The :class:`~repro.sim.engine.Simulator` orders events by the tuple
``(time, priority, sequence)``; the sequence number is unique, so the order
is *total* and any correct priority queue pops the exact same sequence of
entries.  That totality is what makes this queue an **exact** drop-in for
the binary heap: the bit-identity tests in ``tests/sim/test_eventq.py``
compare the two structures entry-for-entry under randomized workloads, and
the whole-trial equivalence tests do the same for complete simulations.

Structure (R. Brown's calendar queue, with a heap-ladder overflow):

* ``nbuckets`` **buckets** (a power of two) cover a sliding window of
  ``nbuckets * width`` seconds starting at the *current* bucket.  A pushed
  entry whose time falls inside the window is appended — unsorted, O(1) —
  to the bucket indexed by ``int(time / width) & (nbuckets - 1)``.
* The **active list** holds the entries of the bucket currently being
  drained, as a small binary heap: a visited bucket is heapified once
  (O(k) for k entries) and popped in order; same-window pushes that land
  at or before the cursor go straight into it.  Because bucket windows
  partition time and ``int(time / width)`` is monotone in ``time``, the
  minimum of the active heap is the global minimum — entries in later
  buckets and in the ladder are provably later.
* The **ladder** (``far``) is a heap holding everything beyond the window
  — long protocol timers, flow-end events.  Each time the cursor exposes
  a new bucket, admissible ladder entries are moved into their buckets;
  pushes to the far future are O(log F) for the small F of long timers
  instead of churning the main structure.

**Adaptive width.**  The calendar is O(1) only while buckets hold O(1)
entries each, so the queue resizes itself — rebucketing every entry, an
O(n) operation amortized over the ≥ n/2 pushes that triggered it — when
the in-window population outgrows ``2 * nbuckets`` or collapses below
``nbuckets / 8``.  The new width is estimated classically: the mean gap
between distinct times in a sample of queued entries, times a small
spread factor, clamps buckets to ~1–2 entries for the observed event
density.  Resizing moves entries between buckets but never reorders them
(order lives in the tuples), so exactness is untouched.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import List, Optional, Tuple

__all__ = ["CalendarQueue"]

#: One queue entry, exactly the engine's heap entry shape.
_Entry = Tuple[float, int, int, object]

#: Bucket-count bounds.  The floor keeps tiny queues from thrashing the
#: resize logic; the ceiling bounds rebuild cost and empty-bucket scans.
_MIN_BUCKETS = 64
_MAX_BUCKETS = 1 << 15

#: Entries sampled for the width estimate at each resize.
_WIDTH_SAMPLE = 256

#: Bucket width = spread factor x mean inter-event gap: a little over one
#: expected entry per bucket, trading a few empty-bucket skips (cheap) for
#: short per-bucket heaps (the expensive part).
_SPREAD = 2.0


class CalendarQueue:
    """Bucketed calendar queue over ``(time, priority, seq, payload)`` tuples."""

    __slots__ = (
        "_width",
        "_inv_width",
        "_nbuckets",
        "_mask",
        "_buckets",
        "_cur",
        "_limit",
        "_count",
        "_active",
        "_far",
        "_grow_at",
        "_shrink_at",
    )

    def __init__(self, *, width: float = 1e-3, nbuckets: int = _MIN_BUCKETS) -> None:
        if width <= 0.0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        if nbuckets < 1 or nbuckets & (nbuckets - 1):
            raise ValueError(f"bucket count must be a power of two, got {nbuckets}")
        self._setup(width, nbuckets, cur=-1)
        #: Entries currently being drained (the visited bucket), as a heap.
        #: The engine's run loop reads this attribute directly and pops it
        #: with C-level ``heappop``, falling into :meth:`_advance` only when
        #: it is empty — keeping the per-event cost at heap parity.
        self._active: List[_Entry] = []
        #: Overflow ladder: entries at or beyond the window end.
        self._far: List[_Entry] = []

    def _setup(self, width: float, nbuckets: int, *, cur: int) -> None:
        """(Re)initialise the bucket array and cursor geometry."""
        self._width = width
        self._inv_width = 1.0 / width
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._buckets: List[List[_Entry]] = [[] for _ in range(nbuckets)]
        #: Absolute index (``int(time / width)``) of the bucket the cursor
        #: is on; entries at or before it belong to the active heap.
        self._cur = cur
        #: One past the last admissible absolute index: entries with
        #: ``int(time / width) >= _limit`` go to the ladder.
        self._limit = cur + nbuckets
        #: Entries held in ``_buckets`` (excludes active and ladder).
        self._count = 0
        self._grow_at = 2 * nbuckets
        self._shrink_at = nbuckets >> 3 if nbuckets > _MIN_BUCKETS else -1

    def __len__(self) -> int:
        return self._count + len(self._active) + len(self._far)

    def __bool__(self) -> bool:
        return bool(self._count or self._active or self._far)

    # -- core operations ---------------------------------------------------------

    def push(self, entry: _Entry) -> None:
        """Insert ``entry``; O(1) amortized."""
        i = int(entry[0] * self._inv_width)
        if i <= self._cur:
            # At or before the bucket being drained (a zero/short delay, or
            # an `until` push-back): joins the active heap so it is still
            # popped in exact order.
            heappush(self._active, entry)
        elif i < self._limit:
            self._buckets[i & self._mask].append(entry)
            count = self._count + 1
            self._count = count
            if count > self._grow_at:
                self._resize()
        else:
            heappush(self._far, entry)

    def pop(self) -> Optional[_Entry]:
        """Remove and return the least entry, or ``None`` when empty."""
        active = self._active
        if active:
            return heappop(active)
        return self._advance()

    def peek(self) -> Optional[_Entry]:
        """The least entry without removing it, or ``None`` when empty.

        The sharded backend's K-way merge peeks every shard and pops only
        the winner.  When the active heap is empty the next entry is
        materialised via :meth:`_advance` and pushed straight back: the
        cursor has already reached its bucket, so the re-push lands in the
        (freshly rebound) active heap and the subsequent :meth:`pop`
        returns exactly this entry.
        """
        active = self._active
        if active:
            return active[0]
        entry = self._advance()
        if entry is None:
            return None
        heappush(self._active, entry)
        return entry

    def _advance(self) -> Optional[_Entry]:
        """Walk the cursor to the next populated bucket and pop its head.

        Called only with the active heap empty; returns ``None`` when the
        whole queue is empty.  The engine's calendar run loop calls this
        directly after a C-level ``heappop`` of :attr:`_active` fails, so
        the method-call overhead is paid once per *bucket*, not per event.
        """
        if not self._count and not self._far:
            return None
        if self._count <= self._shrink_at:
            self._resize()
        buckets = self._buckets
        mask = self._mask
        inv_width = self._inv_width
        far = self._far
        cur = self._cur
        limit = self._limit
        count = self._count
        while True:
            if not count:
                if not far:
                    # Everything drained while walking (cannot happen: the
                    # emptiness check above covers it) — stay consistent.
                    self._cur = cur
                    self._limit = limit
                    self._count = count
                    return None
                # Sparse region: jump the cursor straight to the ladder
                # head's bucket instead of sweeping empty years.
                cur = int(far[0][0] * inv_width) - 1
                limit = cur + self._nbuckets
            cur += 1
            limit += 1
            # Admit ladder entries that now fall inside the window.  The
            # admissibility test recomputes the bucket index with the same
            # expression push uses, so boundary rounding is consistent.
            while far and int(far[0][0] * inv_width) < limit:
                entry = heappop(far)
                buckets[int(entry[0] * inv_width) & mask].append(entry)
                count += 1
            bucket = buckets[cur & mask]
            if bucket:
                buckets[cur & mask] = []
                count -= len(bucket)
                heapify(bucket)
                self._active = bucket
                self._cur = cur
                self._limit = limit
                self._count = count
                return heappop(bucket)

    # -- adaptive sizing -----------------------------------------------------------

    def _drain(self) -> List[_Entry]:
        """Every queued entry, in no particular order."""
        entries = list(self._active)
        for bucket in self._buckets:
            entries.extend(bucket)
        entries.extend(self._far)
        return entries

    def _resize(self) -> None:
        """Re-bucket everything with a width fit to the observed density."""
        entries = self._drain()
        width = self._estimate_width(entries)
        n = len(entries)
        nbuckets = _MIN_BUCKETS
        while nbuckets < n and nbuckets < _MAX_BUCKETS:
            nbuckets <<= 1
        if entries:
            first = min(entries)
            cur = int(first[0] / width) - 1
        else:
            cur = -1
        self._setup(width, nbuckets, cur=cur)
        # With the bucket count clamped at the ceiling, the population can
        # legitimately exceed the usual grow threshold; lift it past the
        # current size so the re-push loop below cannot re-enter _resize.
        if self._grow_at <= n:
            self._grow_at = 2 * n
        self._active = []
        self._far = []
        for entry in entries:
            self.push(entry)

    def _estimate_width(self, entries: List[_Entry]) -> float:
        """Spread factor x mean gap between distinct sampled times."""
        if len(entries) < 2:
            return self._width
        step = max(len(entries) // _WIDTH_SAMPLE, 1)
        times = sorted({entry[0] for entry in entries[::step]})
        if len(times) < 2:
            return self._width
        mean_gap = (times[-1] - times[0]) / (len(times) - 1)
        if mean_gap <= 0.0:
            return self._width
        return mean_gap * _SPREAD
