"""Deterministic random-number streams.

The paper runs 10 trials per data point, each with off-line generated mobility
and traffic scripts shared by every protocol in that trial, so protocol
differences are not confounded with random-draw differences.  We achieve the
same by deriving *named* child streams from a single trial seed: the mobility
stream, the traffic stream and each protocol's jitter stream are independent
``random.Random`` instances whose seeds depend only on ``(trial_seed, name)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngStreams", "derive_seed"]


def derive_seed(base_seed: int, name: str) -> int:
    """A stable 64-bit seed derived from ``base_seed`` and a stream name."""
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A family of independent, reproducible random streams.

    ``streams.get("mobility")`` always returns the same generator object for a
    given instance, and generators created from equal ``(base_seed, name)``
    pairs produce identical sequences across runs and platforms.
    """

    def __init__(self, base_seed: int) -> None:
        self._base_seed = base_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def base_seed(self) -> int:
        """The trial-level seed all streams derive from."""
        return self._base_seed

    def get(self, name: str) -> random.Random:
        """The named stream, created on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self._base_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """A child family whose streams are independent of this family's."""
        return RngStreams(derive_seed(self._base_seed, f"spawn:{name}"))
